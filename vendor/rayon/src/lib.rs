//! Offline stand-in for `rayon` (1.x API subset).
//!
//! Backs `into_par_iter()` on index ranges and vectors with
//! `std::thread::scope` fan-out. The chunking is deterministic for a
//! fixed thread count, so seeded Monte-Carlo campaigns reproduce
//! exactly within a process (`ea-sim` relies on this).
//!
//! Surface: `IntoParallelIterator` for `Range<usize>` / `Vec<T>`, with
//! `fold(..).reduce(..)`, `map(..)`, `for_each`, `sum`, and `collect`.

use std::ops::Range;

/// Number of worker threads: `RAYON_NUM_THREADS` or the hardware count.
fn num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Splits `items` into at most [`num_threads`] contiguous chunks and maps
/// each chunk on its own scoped thread, preserving chunk order.
fn scatter<T, A, F>(items: Vec<T>, work: F) -> Vec<A>
where
    T: Send,
    A: Send,
    F: Fn(Vec<T>) -> A + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = num_threads().min(n);
    if threads == 1 {
        return vec![work(items)];
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || work(c)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// Conversion into a parallel iterator (the entry point of the prelude).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A minimal parallel iterator: a materialised item list plus adapters.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Materialises the items (adapters are applied eagerly on `reduce`).
    fn items(self) -> Vec<Self::Item>;

    /// Parallel fold: produces one accumulator per chunk; combine the
    /// partials with a subsequent [`ParallelIterator::reduce`].
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<T>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, Self::Item) -> T + Sync,
    {
        let partials = scatter(self.items(), |chunk| {
            chunk.into_iter().fold(identity(), &fold_op)
        });
        Fold { partials }
    }

    /// Parallel map (eager).
    fn map<B, F>(self, op: F) -> VecParIter<B>
    where
        B: Send,
        F: Fn(Self::Item) -> B + Sync,
    {
        let mapped = scatter(self.items(), |chunk| {
            chunk.into_iter().map(&op).collect::<Vec<_>>()
        });
        VecParIter { items: mapped.into_iter().flatten().collect() }
    }

    /// Parallel for-each.
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        scatter(self.items(), |chunk| chunk.into_iter().for_each(&op));
    }

    /// Parallel sum.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        self.items().into_iter().sum()
    }

    /// Collects into a container.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.items().into_iter().collect()
    }

    /// Reduces all items directly.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let partials = scatter(self.items(), |chunk| {
            chunk.into_iter().fold(identity(), |a, b| op(a, b))
        });
        partials.into_iter().fold(identity(), op)
    }
}

/// The partial accumulators produced by [`ParallelIterator::fold`]; itself
/// a parallel iterator over the chunk accumulators, as in rayon.
pub struct Fold<T> {
    partials: Vec<T>,
}

impl<T: Send> ParallelIterator for Fold<T> {
    type Item = T;
    fn items(self) -> Vec<T> {
        self.partials
    }
}

/// Parallel iterator over a materialised vector.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn items(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// Parallel iterator over an index range; folds chunk sub-ranges
/// arithmetically, so no index vector is ever materialised.
pub struct RangeParIter<T> {
    range: Range<T>,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;
            fn into_par_iter(self) -> RangeParIter<$t> {
                RangeParIter { range: self }
            }
        }

        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;

            fn items(self) -> Vec<$t> {
                self.range.collect()
            }

            fn fold<T2, ID, F>(self, identity: ID, fold_op: F) -> Fold<T2>
            where
                T2: Send,
                ID: Fn() -> T2 + Sync,
                F: Fn(T2, $t) -> T2 + Sync,
            {
                let Range { start, end } = self.range;
                let n = end.saturating_sub(start) as usize;
                if n == 0 {
                    return Fold { partials: Vec::new() };
                }
                let threads = num_threads().min(n);
                let chunk = n.div_ceil(threads) as $t;
                let bounds: Vec<Range<$t>> = (0..threads as $t)
                    .map(|i| {
                        let lo = start + i * chunk;
                        lo..(lo + chunk).min(end)
                    })
                    .collect();
                let identity = &identity;
                let fold_op = &fold_op;
                let partials = std::thread::scope(|scope| {
                    let handles: Vec<_> = bounds
                        .into_iter()
                        .map(|r| scope.spawn(move || r.fold(identity(), fold_op)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect::<Vec<_>>()
                });
                Fold { partials }
            }
        }
    )*};
}

impl_range_par_iter!(usize, u64);

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join worker panicked"))
    })
}

/// The usual glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_counts() {
        let total = (0..1000usize)
            .into_par_iter()
            .fold(|| 0usize, |acc, x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_float_fold() {
        let run = || {
            (0..10_000usize)
                .into_par_iter()
                .fold(|| 0.0f64, |acc, x| acc + (x as f64).sqrt())
                .reduce(|| 0.0, |a, b| a + b)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }
}
