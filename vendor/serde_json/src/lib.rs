//! Offline stand-in for `serde_json` (subset).
//!
//! Renders and parses JSON against the vendored `serde` crate's
//! [`Content`] data model. Public surface: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and the [`Value`] alias.

use serde::{Content, Deserialize, Serialize};

/// JSON value — an alias for the shared data model.
pub type Value = Content;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    /// 1-based line/column of a parse error (0 for semantic errors).
    line: usize,
    column: usize,
}

impl Error {
    fn semantic(msg: impl std::fmt::Display) -> Self {
        Error { msg: msg.to_string(), line: 0, column: 0 }
    }

    fn syntax(msg: impl std::fmt::Display, line: usize, column: usize) -> Self {
        Error { msg: msg.to_string(), line, column }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {} column {}", self.msg, self.line, self.column)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some("  "), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = parse(s)?;
    T::from_content(&content).map_err(Error::semantic)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_content())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_content(value).map_err(Error::semantic)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<&str>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i, ind, d| {
                write_content(&items[i], out, ind, d);
            });
        }
        Content::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i, ind, d| {
                let (k, v) = &entries[i];
                write_escaped(k, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_content(v, out, ind, d);
            });
        }
    }
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize, Option<&str>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(ind) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(ind);
            }
        }
        item(out, i, indent, depth + 1);
    }
    if let Some(ind) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(ind);
        }
    }
    out.push(close);
}

/// Writes a finite float in round-trippable form (`1` → `1.0`); non-finite
/// values become `null`, as in serde_json.
fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Content> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::syntax(msg, line, col)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Content::Null),
            Some(b't') => self.eat_literal("true", Content::Bool(true)),
            Some(b'f') => self.eat_literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn seq(&mut self) -> Result<Content> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Content> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(
                                &self.bytes[self.pos + 1..self.pos + 5],
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .or_else(|_| text.parse::<f64>().map(Content::F64))
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .or_else(|_| text.parse::<f64>().map(Content::F64))
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&42usize).unwrap(), "42");
        let x: f64 = from_str("1.0").unwrap();
        assert_eq!(x, 1.0);
        let y: f64 = from_str("1").unwrap();
        assert_eq!(y, 1.0);
    }

    #[test]
    fn round_trip_nested() {
        let v: Vec<(usize, f64)> = vec![(0, 1.25), (7, -2.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[0,1.25],[7,-2.5]]");
        let back: Vec<(usize, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_shape() {
        let v = vec![1u64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = from_str::<f64>("[1,").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
