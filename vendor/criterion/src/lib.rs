//! Offline stand-in for `criterion` (subset).
//!
//! Provides the structural API the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`, and
//! [`Bencher::iter`] — with a simple mean-of-samples measurement loop
//! instead of upstream's statistical analysis. Reports `ns/iter` to
//! stdout; there is no HTML report, baseline storage, or outlier
//! rejection. A benchmark-name filter passed on the command line is
//! honoured, as is `--quick` (one sample).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Top-level handle; owns CLI options shared by every group.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [filter...]`.
        let mut filter = None;
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" => {}
                "--quick" => quick = true,
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, quick }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Identifies one benchmark: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// An id with only a parameter part.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }

    fn render(&self, group: &str) -> String {
        match (self.function.is_empty(), self.parameter.is_empty()) {
            (false, false) => format!("{group}/{}/{}", self.function, self.parameter),
            (false, true) => format!("{group}/{}", self.function),
            (true, false) => format!("{group}/{}", self.parameter),
            (true, true) => group.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function: s.to_string(), parameter: String::new() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function: s, parameter: String::new() }
    }
}

/// A set of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into().render(&self.name);
        self.run(&label, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().render(&self.name);
        self.run(&label, |b| f(b));
        self
    }

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.criterion.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.criterion.quick { 1 } else { self.sample_size };

        // Warm-up: repeat until the warm-up budget is spent (once minimum).
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
        let warm_up_start = Instant::now();
        loop {
            f(&mut bencher);
            if warm_up_start.elapsed() >= self.warm_up_time || self.criterion.quick {
                break;
            }
        }

        // Measurement: `samples` calls, stopping early at the time budget.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let start = Instant::now();
        for _ in 0..samples {
            bencher.elapsed = Duration::ZERO;
            bencher.iters = 0;
            f(&mut bencher);
            total += bencher.elapsed;
            iters += bencher.iters;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        if iters == 0 {
            println!("{label:<50} (no iterations recorded)");
            return;
        }
        let per_iter = total.as_nanos() as f64 / iters as f64;
        println!("{label:<50} {:>12.1} ns/iter ({iters} iters)", per_iter);
    }

    /// Ends the group (upstream emits summaries here; we print per-bench).
    pub fn finish(self) {}
}

/// Times closures for one benchmark sample.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` in a timed loop, accumulating elapsed time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: one untimed call decides the batch size.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        let batch = if once >= Duration::from_millis(10) {
            1
        } else {
            let per = once.as_nanos().max(100) as u64;
            (10_000_000 / per).clamp(1, 10_000)
        };
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += batch;
    }

    /// Like `iter`, but takes the measurement from the closure's own timing.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let iters = 10;
        self.elapsed += f(iters);
        self.iters += iters;
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::new("sum", 8usize), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.bench_function("plain", |b| b.iter(|| 2 + 2));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 3).render("g"), "g/f/3");
        assert_eq!(BenchmarkId::from_parameter(3).render("g"), "g/3");
        assert_eq!(BenchmarkId::from("f").render("g"), "g/f");
    }
}
