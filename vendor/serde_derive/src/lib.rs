//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` with no
//! `syn`/`quote` dependency: the item is parsed directly off the
//! `proc_macro::TokenStream` and the impl is emitted as source text.
//!
//! Supported shapes (everything this workspace derives):
//! * named structs, tuple/newtype structs, unit structs,
//! * enums with named-field, tuple/newtype, and unit variants,
//! * generic parameters without bounds or where-clauses (e.g. `<'a>`).
//!
//! Encodings match serde's defaults (externally tagged enums, structs as
//! maps); the runtime side lives in the vendored `serde` crate's
//! `Content` model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed form of the deriving item.
struct Item {
    name: String,
    /// Generics as written, e.g. `<'a, T>` (empty when absent).
    generics: String,
    /// Generic parameter names only, e.g. `<'a, T>` with bounds stripped.
    ty_generics: String,
    kind: Kind,
}

enum Kind {
    /// Named struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: arity.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: variants in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// Derives `serde::Serialize` via the `Content` data model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from({f:?}), ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Content::Map(vec![{entries}])")
        }
        Kind::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Content::Seq(vec![{items}])")
        }
        Kind::Unit => "::serde::Content::Null".to_string(),
        Kind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| serialize_arm(&item.name, v))
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    let Item { name, generics, ty_generics, .. } = &item;
    format!(
        "impl{generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

fn serialize_arm(ty: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => format!(
            "{ty}::{vname} => ::serde::Content::Str(String::from({vname:?})),"
        ),
        Shape::Tuple(1) => format!(
            "{ty}::{vname}(x0) => ::serde::Content::Map(vec![(String::from({vname:?}), \
             ::serde::Serialize::to_content(x0))]),"
        ),
        Shape::Tuple(n) => {
            let binds = (0..*n).map(|i| format!("x{i}")).collect::<Vec<_>>().join(", ");
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(x{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{ty}::{vname}({binds}) => ::serde::Content::Map(vec![(String::from({vname:?}), \
                 ::serde::Content::Seq(vec![{items}]))]),"
            )
        }
        Shape::Named(fields) => {
            let binds = fields.join(", ");
            let entries = fields
                .iter()
                .map(|f| {
                    format!("(String::from({f:?}), ::serde::Serialize::to_content({f}))")
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{ty}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![(String::from({vname:?}), \
                 ::serde::Content::Map(vec![{entries}]))]),"
            )
        }
    }
}

/// Derives `serde::Deserialize` via the `Content` data model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__c, {f:?})?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "match __c {{\n\
                     ::serde::Content::Map(_) => Ok({name} {{ {inits} }}),\n\
                     other => Err(::serde::DeError::expected(\"map for struct {name}\", other)),\n\
                 }}"
            )
        }
        Kind::Tuple(1) => {
            format!("::serde::Deserialize::from_content(__c).map({name})")
        }
        Kind::Tuple(n) => {
            let inits = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "match __c {{\n\
                     ::serde::Content::Seq(__items) if __items.len() == {n} => \
                         Ok({name}({inits})),\n\
                     other => Err(::serde::DeError::expected(\"sequence of length {n}\", other)),\n\
                 }}"
            )
        }
        Kind::Unit => format!("{{ let _ = __c; Ok({name}) }}"),
        Kind::Enum(variants) => deserialize_enum(name, variants),
    };
    let Item { generics, ty_generics, .. } = &item;
    format!(
        "impl{generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_content(__c: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("{0:?} => Ok({name}::{0}),", v.name))
        .collect::<Vec<_>>()
        .join("\n");
    let tagged_arms = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .map(|v| {
            let vname = &v.name;
            match &v.shape {
                Shape::Unit => unreachable!(),
                Shape::Tuple(1) => format!(
                    "{vname:?} => ::serde::Deserialize::from_content(__inner).map({name}::{vname}),"
                ),
                Shape::Tuple(n) => {
                    let inits = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "{vname:?} => match __inner {{\n\
                             ::serde::Content::Seq(__items) if __items.len() == {n} => \
                                 Ok({name}::{vname}({inits})),\n\
                             other => Err(::serde::DeError::expected(\
                                 \"sequence of length {n} for variant {vname}\", other)),\n\
                         }},"
                    )
                }
                Shape::Named(fields) => {
                    let inits = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(__inner, {f:?})?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("{vname:?} => Ok({name}::{vname} {{ {inits} }}),")
                }
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    format!(
        "match __c {{\n\
             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::DeError::custom(\
                     format!(\"unknown unit variant `{{other}}` of {name}\"))),\n\
             }},\n\
             ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\n\
                     other => Err(::serde::DeError::custom(\
                         format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
             }}\n\
             other => Err(::serde::DeError::expected(\"enum {name}\", other)),\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Leading attributes (`#[...]`, including expanded doc comments) and
    // the visibility qualifier.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };

    // Optional generics: capture raw tokens between `<` and the matching `>`.
    let mut generics = String::new();
    let mut ty_generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut raw: Vec<TokenTree> = Vec::new();
            for tt in tokens.by_ref() {
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                raw.push(tt);
            }
            // Re-collect through TokenStream so joint tokens (`'a`) print
            // without an interior space.
            let full = raw.iter().cloned().collect::<TokenStream>().to_string();
            generics = format!("<{full}>");
            ty_generics = format!("<{}>", strip_bounds(&raw));
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Kind::Unit, // `struct Name;`
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, got {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };

    Item { name, generics, ty_generics, kind }
}

/// Drops bounds from generic params: `'a: 'b, T: Clone` → `'a, T`.
fn strip_bounds(raw: &[TokenTree]) -> String {
    let flush = |current: &mut Vec<TokenTree>, out: &mut Vec<String>| {
        if !current.is_empty() {
            out.push(std::mem::take(current).into_iter().collect::<TokenStream>().to_string());
        }
    };
    let mut out: Vec<String> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut in_bounds = false;
    let mut depth = 0usize;
    for tt in raw {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' | '(' => depth += 1,
                '>' | ')' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    flush(&mut current, &mut out);
                    in_bounds = false;
                    continue;
                }
                ':' if depth == 0 => {
                    in_bounds = true;
                    continue;
                }
                _ => {}
            }
        }
        if !in_bounds {
            current.push(tt.clone());
        }
    }
    flush(&mut current, &mut out);
    out.join(", ")
}

/// Extracts field names from a named-field body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.next() else {
            break;
        };
        fields.push(field.to_string());
        // Skip `: Type` up to the field-separating comma (depth-aware:
        // commas may appear inside generics `<...>` or nested groups).
        let mut angle_depth = 0usize;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Counts top-level fields of a tuple body (`(f64, Vec<(f64, f64)>)` → 2).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0usize;
    let mut pending = false;
    for tt in stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    count += 1;
                    pending = false;
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending || (saw_tokens && count == 0) {
        count += 1;
    }
    count
}

/// Parses enum variants.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(vname)) = tokens.next() else {
            break;
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                Shape::Tuple(arity)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name: vname.to_string(), shape });
        // Skip to the next comma (handles explicit discriminants).
        while let Some(tt) = tokens.next() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}
