//! Offline stand-in for `serde` (subset).
//!
//! Instead of upstream's visitor-based serializer/deserializer traits,
//! this vendored core uses a concrete JSON-shaped data model,
//! [`Content`]: `Serialize` lowers a value into a `Content` tree and
//! `Deserialize` rebuilds the value from one. `serde_json` then renders
//! and parses `Content`. Encodings follow serde's defaults:
//!
//! * structs → maps keyed by field name,
//! * enums → externally tagged (`{"Variant": …}`, unit variants as strings),
//! * `Option` → `null` / inner value, tuples and `Vec` → sequences.
//!
//! The derive macros are re-exported from the vendored `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model shared by all (de)serializers.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a [`Content::Map`].
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// A short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError { msg: msg.to_string() }
    }

    /// Type-mismatch helper.
    pub fn expected(what: &str, found: &Content) -> Self {
        DeError::custom(format!("expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Lowers `self` into the [`Content`] data model.
pub trait Serialize {
    /// Returns the `Content` representation of `self`.
    fn to_content(&self) -> Content;
}

/// Rebuilds `Self` from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Parses `Self` out of `content`.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Reads a struct field from a map, treating a missing key as `null`
/// (so `Option` fields tolerate omission). Used by the derive macro.
pub fn field<T: Deserialize>(map: &Content, name: &str) -> Result<T, DeError> {
    match map.get(name) {
        Some(v) => T::from_content(v)
            .map_err(|e| DeError::custom(format!("field `{name}`: {e}"))),
        None => T::from_content(&Content::Null)
            .map_err(|_| DeError::custom(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

/// `Content` is its own representation (mirrors `serde_json::Value`
/// serializing as itself).
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

/// `Content` deserializes from any value verbatim (mirrors
/// `serde_json::Value`).
impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
    )*};
}
impl_ser_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let out = match content {
                    Content::U64(v) => <$t>::try_from(*v).ok(),
                    Content::I64(v) => <$t>::try_from(*v).ok(),
                    Content::F64(v) if v.fract() == 0.0 => {
                        let i = *v as i64;
                        <$t>::try_from(i).ok()
                    }
                    _ => None,
                };
                out.ok_or_else(|| DeError::expected(stringify!($t), content))
            }
        }
    )*};
}
impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_de_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_de_float!(f32, f64);

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

macro_rules! impl_de_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("sequence of length ", stringify!($len)),
                        other,
                    )),
                }
            }
        }
    )*};
}
impl_de_tuple! {
    (A: 0; 1)
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(usize::from_content(&7usize.to_content()).unwrap(), 7);
        assert_eq!(i64::from_content(&(-3i64).to_content()).unwrap(), -3);
        assert_eq!(bool::from_content(&true.to_content()).unwrap(), true);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(usize, f64)> = vec![(1, 2.0), (3, 4.5)];
        let c = v.to_content();
        assert_eq!(Vec::<(usize, f64)>::from_content(&c).unwrap(), v);

        let o: Option<u64> = None;
        assert_eq!(o.to_content(), Content::Null);
        assert_eq!(Option::<u64>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn missing_option_field_defaults_to_none() {
        let map = Content::Map(vec![("present".into(), Content::U64(1))]);
        let got: Option<u64> = field(&map, "absent").unwrap();
        assert_eq!(got, None);
        let present: u64 = field(&map, "present").unwrap();
        assert_eq!(present, 1);
        assert!(field::<u64>(&map, "absent").is_err());
    }
}
