//! Offline stand-in for `proptest` (subset).
//!
//! Supports the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * numeric range strategies (`0u64..10_000`, `0.1f64..2.0`, `1usize..6`,
//!   inclusive variants) plus [`Just`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Differences from upstream: sampling is deterministic (seeded from the
//! test path and case index, so failures reproduce exactly) and there is
//! no shrinking — the failing inputs are printed instead. The
//! `PROPTEST_CASES` environment variable overrides every configured case
//! count, which CI uses to trade coverage for wall-clock time.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-suite configuration (subset of upstream's fields).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Maximum rejections tolerated (kept for API compatibility).
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 1024 }
    }
}

/// Resolves the case count: `PROPTEST_CASES` env var wins over the config.
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(config.cases)
}

/// Deterministic per-case RNG: seeded from the test path and case index.
pub fn test_rng(test_path: &str, case: u32) -> StdRng {
    // FNV-1a over the test path, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Records a failure with the given message.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError { msg: msg.to_string() }
    }

    /// Alias used by upstream's `Reject` path; treated as failure here.
    pub fn reject(msg: impl std::fmt::Display) -> Self {
        TestCaseError::fail(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of one property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. Upstream strategies also shrink; this one samples.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;
    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f64, f32);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Defines property tests over sampled inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..100, y in 0.0f64..1.0) { prop_assert!(x as f64 * y < 100.0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = $crate::effective_cases(&__config);
            let __path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cases {
                let mut __rng = $crate::test_rng(__path, __case);
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let __result: $crate::TestCaseResult = (move || {
                    $body
                    Ok(())
                })();
                if let Err(e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                        __path, __case, __cases, e, __inputs
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// The usual glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 1usize..6, seed in 0u64..10_000, x in 0.25f64..4.0) {
            prop_assert!((1..6).contains(&n));
            prop_assert!(seed < 10_000);
            prop_assert!((0.25..4.0).contains(&x));
        }

        #[test]
        fn eq_and_ne_macros(a in 3u64..4) {
            prop_assert_eq!(a, 3);
            prop_assert_ne!(a, 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0i32..10) {
            prop_assert!(v >= 0);
        }
    }

    #[test]
    fn deterministic_rng() {
        use crate::Strategy;
        let s = 0u64..1_000_000;
        let a = s.new_value(&mut crate::test_rng("t", 5));
        let b = s.new_value(&mut crate::test_rng("t", 5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u64..1) {
                prop_assert!(x > 100, "x too small");
            }
        }
        always_fails();
    }
}
