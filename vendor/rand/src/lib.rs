//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Implements exactly the surface this workspace uses:
//!
//! * [`rngs::StdRng`] — a seedable xoshiro256++ generator,
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 state expansion,
//! * [`Rng::random_range`] over integer and float ranges,
//! * [`Rng::random_bool`] — Bernoulli draw.
//!
//! The generator is a faithful xoshiro256++ (Blackman & Vigna), so the
//! Monte-Carlo statistics in `ea-sim` are sound; only the trait surface
//! is reduced relative to upstream.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value from the "standard" distribution: `f64` in `[0, 1)`.
    fn random(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a double in `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw in `[0, span)` for `1 ≤ span ≤ u64::MAX` via Lemire's
/// widening-multiply rejection method (unbiased).
#[inline]
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span >= 1 && span <= u64::MAX as u128);
    let mut m = rng.next_u64() as u128 * span;
    let mut lo = m as u64 as u128;
    if lo < span {
        let t = (u64::MAX as u128 + 1 - span) % span;
        while lo < t {
            m = rng.next_u64() as u128 * span;
            lo = m as u64 as u128;
        }
    }
    (m >> 64) as u64
}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128)
                    & (u64::MAX as u128);
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                // Span computed in u128, so `hi == MAX` cannot overflow.
                let span = ((hi as u128).wrapping_sub(lo as u128) & (u64::MAX as u128)) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full domain
                }
                lo.wrapping_add(sample_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding onto the excluded endpoint.
                if v >= self.end {
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility with upstream `rand`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(2usize..=4);
            assert!((2..=4).contains(&y));
            let f = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn unit_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
