//! Golden-output regression suite: pinned `bicrit::solve` results for a
//! fixed set of seeded instances across all four speed models.
//!
//! Each case snapshots energy, makespan, lower bound, and the per-task
//! speed profiles to fixed precision in `tests/golden/<case>.json`. A
//! drifting solver fails with the offending field named; intentional
//! changes regenerate the snapshots with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! The warm-start and Pareto machinery keeps evolving around the same
//! hot paths — this suite is what makes that refactoring safe.

use energy_aware_scheduling::core::bicrit::{self, SolveOptions, SpeedProfile};
use energy_aware_scheduling::engine::{DagSpec, Scenario};
use energy_aware_scheduling::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Decimal places pinned by the snapshots. Solves are deterministic, so
/// this guards against formatting jitter, not solver noise — failures at
/// this precision are real numeric drift.
const PRECISION: i32 = 9;

fn round(x: f64) -> f64 {
    let scale = 10f64.powi(PRECISION);
    (x * scale).round() / scale
}

/// One pinned case: a scenario plus the platform it is mapped onto.
struct Case {
    name: String,
    dag: &'static str,
    model_name: &'static str,
    model: SpeedModel,
    seed: u64,
    mult: f64,
    procs: usize,
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();
    let models: [(&'static str, SpeedModel); 4] = [
        ("continuous", SpeedModel::continuous(1.0, 2.0)),
        ("vdd", SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0])),
        ("discrete", SpeedModel::discrete(vec![1.0, 1.5, 2.0])),
        ("incremental", SpeedModel::incremental(1.0, 2.0, 0.25)),
    ];
    let instances: [(&'static str, &'static str, u64, f64, usize); 3] = [
        ("chain8", "chain:8", 1, 1.4, 2),
        ("layered4x3", "layered:4x3", 7, 1.6, 2),
        ("fork6", "fork:6", 3, 1.5, 3),
    ];
    for (mname, model) in &models {
        for &(iname, dag, seed, mult, procs) in &instances {
            out.push(Case {
                name: format!("{mname}_{iname}"),
                dag,
                model_name: mname,
                model: model.clone(),
                seed,
                mult,
                procs,
            });
        }
    }
    out
}

/// The snapshot schema: everything rounded to [`PRECISION`] decimals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Golden {
    case: String,
    dag: String,
    model: String,
    seed: u64,
    mult: f64,
    procs: usize,
    n_tasks: usize,
    deadline: f64,
    energy: f64,
    makespan: f64,
    lower_bound: Option<f64>,
    /// Per-task profiles: each task is a list of `(speed, time)` segments
    /// (constant profiles become one segment with the full duration).
    profiles: Vec<Vec<(f64, f64)>>,
}

fn snapshot(case: &Case) -> Golden {
    let scenario = Scenario {
        dag: DagSpec::parse(case.dag).expect("valid dag spec"),
        model: case.model.clone(),
        deadline_mult: case.mult,
        seed: case.seed,
    };
    let inst = scenario.instantiate(case.procs).expect("instantiates");
    let sol = bicrit::solve(&inst, &case.model, &SolveOptions::default()).expect("solves");
    let weights = inst.dag.weights();
    let profiles = sol
        .profiles
        .iter()
        .zip(weights)
        .map(|(p, &w)| match p {
            SpeedProfile::Constant(f) => vec![(round(*f), round(w / f))],
            SpeedProfile::Segments(segs) => {
                segs.iter().map(|&(f, t)| (round(f), round(t))).collect()
            }
        })
        .collect();
    Golden {
        case: case.name.clone(),
        dag: case.dag.to_string(),
        model: case.model_name.to_string(),
        seed: case.seed,
        mult: case.mult,
        procs: case.procs,
        n_tasks: inst.n_tasks(),
        deadline: round(inst.deadline),
        energy: round(sol.energy),
        makespan: round(sol.makespan),
        lower_bound: sol.lower_bound.map(round),
        profiles,
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn updating() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Compares field by field so a failure names exactly what drifted.
fn diff(case: &str, want: &Golden, got: &Golden) -> Vec<String> {
    let mut out = Vec::new();
    let mut field = |name: &str, want: String, got: String| {
        if want != got {
            out.push(format!(
                "{case}: field `{name}` drifted: golden {want}, recomputed {got}"
            ));
        }
    };
    field("dag", want.dag.clone(), got.dag.clone());
    field("model", want.model.clone(), got.model.clone());
    field("seed", want.seed.to_string(), got.seed.to_string());
    field("mult", want.mult.to_string(), got.mult.to_string());
    field("procs", want.procs.to_string(), got.procs.to_string());
    field("n_tasks", want.n_tasks.to_string(), got.n_tasks.to_string());
    field(
        "deadline",
        format!("{}", want.deadline),
        format!("{}", got.deadline),
    );
    field(
        "energy",
        format!("{}", want.energy),
        format!("{}", got.energy),
    );
    field(
        "makespan",
        format!("{}", want.makespan),
        format!("{}", got.makespan),
    );
    field(
        "lower_bound",
        format!("{:?}", want.lower_bound),
        format!("{:?}", got.lower_bound),
    );
    if want.profiles.len() != got.profiles.len() {
        field(
            "profiles.len",
            want.profiles.len().to_string(),
            got.profiles.len().to_string(),
        );
    } else {
        for (t, (w, g)) in want.profiles.iter().zip(&got.profiles).enumerate() {
            if w != g {
                field(
                    &format!("profiles[task {t}]"),
                    format!("{w:?}"),
                    format!("{g:?}"),
                );
            }
        }
    }
    out
}

#[test]
fn golden_outputs_are_pinned() {
    let dir = golden_dir();
    if updating() {
        std::fs::create_dir_all(&dir).expect("golden dir creatable");
    }
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for case in cases() {
        let got = snapshot(&case);
        let path = dir.join(format!("{}.json", case.name));
        if updating() {
            let json = serde_json::to_string_pretty(&got).expect("snapshot serialises");
            std::fs::write(&path, json + "\n").expect("snapshot writable");
            checked += 1;
            continue;
        }
        let raw = match std::fs::read_to_string(&path) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!(
                    "{}: missing golden file {} ({e})",
                    case.name,
                    path.display()
                ));
                continue;
            }
        };
        let want: Golden = match serde_json::from_str(&raw) {
            Ok(w) => w,
            Err(e) => {
                failures.push(format!("{}: unparseable golden file: {e}", case.name));
                continue;
            }
        };
        failures.extend(diff(&case.name, &want, &got));
        checked += 1;
    }
    assert!(
        failures.is_empty(),
        "golden drift in {} case(s):\n{}\n\nIf intentional, regenerate with UPDATE_GOLDEN=1 cargo test --test golden",
        failures.len(),
        failures.join("\n")
    );
    assert_eq!(checked, 12, "all four models × three instances are pinned");
}

/// The snapshots themselves stay honest: every pinned solution respects
/// its own deadline and model admissibility at the pinned precision.
#[test]
fn golden_files_are_self_consistent() {
    let dir = golden_dir();
    for case in cases() {
        let path = dir.join(format!("{}.json", case.name));
        let Ok(raw) = std::fs::read_to_string(&path) else {
            // `golden_outputs_are_pinned` reports missing files with the
            // regeneration hint; don't double-report here.
            continue;
        };
        let g: Golden = serde_json::from_str(&raw).expect("golden parses");
        assert!(
            g.makespan <= g.deadline * (1.0 + 1e-6),
            "{}: pinned makespan {} exceeds deadline {}",
            case.name,
            g.makespan,
            g.deadline
        );
        assert_eq!(g.profiles.len(), g.n_tasks, "{}", case.name);
        for (t, segs) in g.profiles.iter().enumerate() {
            assert!(!segs.is_empty(), "{}: task {t} has no segments", case.name);
            for &(f, dur) in segs {
                // Rounded speeds sit within a hair of an admissible speed.
                assert!(
                    case.model.round_up(f - 1e-6).is_some(),
                    "{}: task {t} pinned at inadmissible speed {f}",
                    case.name
                );
                assert!(
                    dur > 0.0,
                    "{}: task {t} has a zero-length segment",
                    case.name
                );
            }
        }
        if let Some(lb) = g.lower_bound {
            assert!(
                lb <= g.energy * (1.0 + 1e-6),
                "{}: pinned lower bound {lb} exceeds energy {}",
                case.name,
                g.energy
            );
        }
    }
}
