//! CLI contract tests for `easched`: argument validation exits with a
//! usage error (code 1) instead of panicking deep in a solver, feasible
//! runs exit 0, infeasible deadlines exit 2, and batch mode emits a JSON
//! report.

use std::process::{Command, Output};

fn easched(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_easched"))
        .args(args)
        .output()
        .expect("easched spawns")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn rejects_zero_procs_with_usage_error() {
    let out = easched(&["--dag", "chain:4", "--procs", "0"]);
    assert_eq!(code(&out), 1, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("--procs"), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("usage:"), "usage must be printed");
}

#[test]
fn rejects_non_finite_and_non_positive_speed_knobs() {
    for args in [
        ["--fmin", "nan"],
        ["--fmin", "-1"],
        ["--fmax", "inf"],
        ["--fmax", "0"],
        ["--delta", "0"],
        ["--delta", "nan"],
        ["--mult", "-2"],
    ] {
        let out = easched(&["--dag", "chain:4", args[0], args[1]]);
        assert_eq!(
            code(&out),
            1,
            "{args:?} must be a usage error: {}",
            stderr(&out)
        );
        assert!(
            stderr(&out).contains(args[0]),
            "{args:?}: stderr should name the flag: {}",
            stderr(&out)
        );
    }
}

#[test]
fn rejects_inverted_speed_range_and_bad_modes() {
    let out = easched(&["--fmin", "3", "--fmax", "2"]);
    assert_eq!(code(&out), 1);
    let out = easched(&["--model", "vdd", "--modes", "1,-2"]);
    assert_eq!(
        code(&out),
        1,
        "negative mode must be rejected: {}",
        stderr(&out)
    );
}

#[test]
fn solves_every_model_through_the_dispatcher() {
    for model in ["continuous", "vdd", "discrete", "incremental"] {
        let out = easched(&["--dag", "chain:5", "--model", model, "--mult", "1.6"]);
        assert_eq!(code(&out), 0, "{model}: {}", stderr(&out));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(stdout.contains("energy"), "{model}: {stdout}");
    }
}

#[test]
fn infeasible_deadline_exits_2() {
    let out = easched(&["--dag", "chain:5", "--model", "continuous", "--mult", "0.3"]);
    assert_eq!(code(&out), 2, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("infeasible"));
}

#[test]
fn batch_mode_emits_a_json_report() {
    let out = easched(&[
        "--batch",
        "--scenarios",
        "chain:6,fork:4",
        "--models",
        "continuous,vdd",
        "--mults",
        "1.3,1.7",
        "--seeds",
        "2",
        "--json",
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("\"results\""), "{stdout}");
    assert!(
        stdout.contains("\"scenarios\": 16"),
        "2×2×2×2 grid: {stdout}"
    );
}

#[test]
fn batch_mode_rejects_bad_scenario_specs() {
    let out = easched(&["--batch", "--scenarios", "ring:5"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("unknown dag kind"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn batch_mode_reports_empty_grid_clearly() {
    // "--mults ," parses to zero values: the grid is empty and the error
    // must say so (naming the flag), not panic or print an empty report.
    for args in [
        ["--batch", "--mults", ","],
        ["--batch", "--scenarios", ","],
        ["--batch", "--models", ","],
        ["--front", "--scenarios", ","],
        ["--front", "--models", ","],
    ] {
        let out = easched(&args);
        assert_eq!(code(&out), 1, "{args:?}: {}", stderr(&out));
        assert!(
            stderr(&out).contains("scenario grid is empty"),
            "{args:?}: {}",
            stderr(&out)
        );
        assert!(
            stderr(&out).contains(args[1]),
            "{args:?}: error must name the flag: {}",
            stderr(&out)
        );
    }
}

#[test]
fn front_mode_emits_a_json_report() {
    let out = easched(&[
        "--front",
        "--scenarios",
        "chain:5",
        "--models",
        "continuous,discrete",
        "--seeds",
        "1",
        "--front-points",
        "4",
        "--json",
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("\"points\""), "{stdout}");
    assert!(stdout.contains("\"scenarios\": 2"), "{stdout}");
}

#[test]
fn front_mode_emits_csv() {
    let out = easched(&[
        "--front",
        "--scenarios",
        "chain:4",
        "--models",
        "vdd",
        "--seeds",
        "1",
        "--front-points",
        "4",
        "--csv",
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let mut lines = stdout.lines();
    assert_eq!(
        lines.next(),
        Some("dag,model,seed,deadline,energy,lower_bound,source")
    );
    assert!(lines
        .next()
        .unwrap_or("")
        .starts_with("chain:4,vdd-hopping,0,"));
}

#[test]
fn front_mode_rejects_bad_knobs() {
    let out = easched(&["--front", "--front-points", "1"]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("--front-points"), "{}", stderr(&out));
    let out = easched(&["--front", "--front-tol", "0"]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("--front-tol"), "{}", stderr(&out));
    let out = easched(&["--front", "--batch"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("mutually exclusive"),
        "{}",
        stderr(&out)
    );
    let out = easched(&["--front", "--csv", "--json"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--csv and --json"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn serve_mode_rejects_other_modes_and_foreign_flags() {
    // --serve is a mode of its own: grid modes conflict, and both the
    // single-solve and grid flags are rejected, not ignored.
    let out = easched(&["--serve", "--batch"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("mutually exclusive"),
        "{}",
        stderr(&out)
    );
    let out = easched(&["--serve", "--front"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("mutually exclusive"),
        "{}",
        stderr(&out)
    );
    let out = easched(&["--serve", "--mult", "1.5"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--mult applies to single-solve mode"),
        "{}",
        stderr(&out)
    );
    let out = easched(&["--serve", "--scenarios", "chain:4"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--scenarios requires --batch or --front"),
        "{}",
        stderr(&out)
    );
    let out = easched(&["--serve", "--procs", "3"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--procs does not apply to --serve"),
        "{}",
        stderr(&out)
    );
    let out = easched(&["--serve", "--json"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--json does not apply to --serve"),
        "{}",
        stderr(&out)
    );
    // Serve-only flags outside --serve are rejected the same way.
    let out = easched(&["--workers", "2"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--workers requires --serve"),
        "{}",
        stderr(&out)
    );
    let out = easched(&["--batch", "--port", "7878"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--port requires --serve"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn serve_mode_rejects_bad_port_and_zero_workers() {
    let out = easched(&["--serve", "--workers", "0"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--workers must be ≥ 1"),
        "{}",
        stderr(&out)
    );
    let out = easched(&["--serve", "--port", "99999999"]);
    assert_eq!(code(&out), 1, "port exceeding u16 is a usage error");
    assert!(stderr(&out).contains("--port"), "{}", stderr(&out));
    let out = easched(&["--serve", "--port", "not-a-port"]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("--port"), "{}", stderr(&out));
    let out = easched(&["--serve", "--queue-cap", "0"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--queue-cap must be ≥ 1"),
        "{}",
        stderr(&out)
    );
    let out = easched(&["--serve", "--cache-cap", "0"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--cache-cap must be ≥ 1"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn serve_mode_round_trip() {
    use std::io::{BufRead, BufReader, Write};

    // Ephemeral port: the daemon prints the bound address on stdout.
    let mut child = Command::new(env!("CARGO_BIN_EXE_easched"))
        .args(["--serve", "--port", "0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout);
    let mut banner = String::new();
    lines.read_line(&mut banner).expect("banner printed");
    let addr = banner
        .split_whitespace()
        .find(|w| w.starts_with("127.0.0.1:"))
        .unwrap_or_else(|| panic!("no address in banner: {banner}"))
        .to_string();

    let stream = std::net::TcpStream::connect(&addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    writeln!(
        writer,
        r#"{{"cmd":"solve","dag":"chain:5","model":"continuous","mult":1.5,"seed":1}}"#
    )
    .expect("writes");
    reader.read_line(&mut line).expect("reads");
    assert!(line.contains(r#""status":"ok""#), "{line}");
    assert!(line.contains(r#""energy""#), "{line}");

    line.clear();
    writeln!(writer, r#"{{"cmd":"shutdown"}}"#).expect("writes");
    reader.read_line(&mut line).expect("reads ack");
    assert!(line.contains(r#""shutting_down":true"#), "{line}");
    drop((reader, writer));

    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status: {status:?}");
}

#[test]
fn mode_exclusive_flags_are_rejected_not_ignored() {
    let out = easched(&["--batch", "--scenarios", "chain:4", "--csv"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--csv requires --front"),
        "{}",
        stderr(&out)
    );
    let out = easched(&["--front", "--mults", "1.2"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--mults requires --batch"),
        "{}",
        stderr(&out)
    );
    let out = easched(&["--front-points", "4"]); // single-solve mode
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--front-points requires --front"),
        "{}",
        stderr(&out)
    );
    // Grid flags without a grid mode, and single-solve flags under one,
    // are errors too — never silently ignored.
    let out = easched(&["--scenarios", "chain:50", "--models", "discrete"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--scenarios requires --batch or --front"),
        "{}",
        stderr(&out)
    );
    let out = easched(&["--batch", "--mult", "3.0"]);
    assert_eq!(code(&out), 1);
    assert!(
        stderr(&out).contains("--mult applies to single-solve mode"),
        "{}",
        stderr(&out)
    );
}
