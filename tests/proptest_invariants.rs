//! Property-based cross-solver invariants (proptest).

use energy_aware_scheduling::core::bicrit::continuous;
use energy_aware_scheduling::core::reliability::ReliabilityModel;
use energy_aware_scheduling::core::tricrit;
use energy_aware_scheduling::lp::{Cmp, LpOutcome, LpProblem};
use energy_aware_scheduling::taskgraph::{analysis, generators, SpTree};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The SP equivalent-weight algebra agrees with the convex solver on
    /// random series-parallel structures.
    #[test]
    fn sp_algebra_matches_convex(n in 2usize..12, seed in 0u64..500, mult in 1.2f64..4.0) {
        let tree = generators::random_sp_tree(n, 0.5, 2.0, seed);
        let dag = tree.to_dag();
        let d = mult * analysis::critical_path_length(&dag, dag.weights());
        let (_, e_closed) = continuous::sp_optimal(&tree, d);
        let num = continuous::solve_general(&dag, d, 1e-6, 1e6, &Default::default())
            .expect("unbounded speed box is always feasible");
        prop_assert!((num.energy - e_closed).abs() <= 5e-3 * e_closed,
            "closed {} vs convex {}", e_closed, num.energy);
    }

    /// The fork theorem is the SP algebra specialised to forks.
    #[test]
    fn fork_theorem_is_sp_special_case(
        n in 1usize..8,
        seed in 0u64..500,
        w0 in 0.5f64..3.0,
        mult in 1.1f64..5.0,
    ) {
        let ws = generators::random_weights(n, 0.5, 2.5, seed);
        let cube: f64 = ws.iter().map(|w| w.powi(3)).sum();
        let d = mult * (w0 + cube.cbrt());
        let closed = continuous::fork_theorem(w0, &ws, d, 1e-9, 1e9).expect("feasible");
        let tree = SpTree::series(vec![
            SpTree::leaf(w0),
            SpTree::parallel(ws.iter().map(|&w| SpTree::leaf(w)).collect()),
        ]);
        let (_, e_sp) = continuous::sp_optimal(&tree, d);
        prop_assert!((closed.energy - e_sp).abs() <= 1e-9 * e_sp);
    }

    /// Optimal BI-CRIT energy scales as 1/D² (CONTINUOUS, no clamping):
    /// doubling the deadline quarters the energy.
    #[test]
    fn energy_scales_inverse_square_in_deadline(n in 2usize..10, seed in 0u64..200) {
        let tree = generators::random_sp_tree(n, 0.5, 2.0, seed);
        let d1 = 2.0 * tree.equivalent_weight();
        let (_, e1) = continuous::sp_optimal(&tree, d1);
        let (_, e2) = continuous::sp_optimal(&tree, 2.0 * d1);
        prop_assert!((e2 - e1 / 4.0).abs() <= 1e-9 * e1);
    }

    /// Simplex solutions are feasible for their LP and never beat the
    /// known analytic optimum of a transportation-style program.
    #[test]
    fn simplex_feasibility(c0 in 0.1f64..5.0, c1 in 0.1f64..5.0, cap in 1.0f64..10.0) {
        // min c0·x + c1·y  s.t. x + y ≥ cap, x ≤ cap, y ≤ cap
        let mut lp = LpProblem::new(2);
        lp.set_objective(0, c0);
        lp.set_objective(1, c1);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Ge, cap);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, cap);
        lp.add_constraint(&[(1, 1.0)], Cmp::Le, cap);
        match lp.solve() {
            LpOutcome::Optimal(s) => {
                prop_assert!(lp.max_violation(&s.x) <= 1e-7);
                let analytic = c0.min(c1) * cap;
                prop_assert!((s.objective - analytic).abs() <= 1e-6 * analytic.max(1.0));
            }
            other => prop_assert!(false, "must be solvable: {other:?}"),
        }
    }

    /// TRI-CRIT chain: the greedy solution always satisfies all three
    /// criteria and is at least as good as the all-singles baseline.
    #[test]
    fn chain_greedy_feasible_and_no_worse_than_baseline(
        n in 1usize..10,
        seed in 0u64..300,
        mult in 1.1f64..5.0,
    ) {
        let rel = ReliabilityModel::typical(1.0, 2.0, 1.8);
        let w = generators::random_weights(n, 0.3, 2.0, seed);
        let d = mult * w.iter().sum::<f64>() / rel.fmax;
        let sol = tricrit::chain::solve_greedy(&w, d, &rel).expect("mult > 1 is feasible");
        let dag = generators::chain(&w);
        prop_assert!(sol.schedule.reliability_ok(&dag, &rel));
        let time: f64 = sol.schedule.durations(&dag).iter().sum();
        prop_assert!(time <= d * (1.0 + 1e-9));
        let baseline = tricrit::chain::evaluate_subset(&w, d, &rel, &vec![false; n])
            .expect("baseline feasible").1;
        prop_assert!(sol.energy <= baseline * (1.0 + 1e-9));
    }

    /// Round-up never violates the deadline: rounding speeds upward can
    /// only shrink durations.
    #[test]
    fn round_up_preserves_deadline(seed in 0u64..300, mult in 1.2f64..3.0) {
        use energy_aware_scheduling::core::speed::SpeedModel;
        let w = generators::random_weights(6, 0.5, 2.0, seed);
        let d = mult * w.iter().sum::<f64>() / 2.0;
        let model = SpeedModel::incremental(1.0, 2.0, 0.25);
        let f_cont = (w.iter().sum::<f64>() / d).clamp(1.0, 2.0);
        let f_rounded = model.round_up(f_cont).expect("within grid");
        prop_assert!(f_rounded >= f_cont - 1e-9);
        let time: f64 = w.iter().map(|wi| wi / f_rounded).sum();
        prop_assert!(time <= d * (1.0 + 1e-9));
    }
}
