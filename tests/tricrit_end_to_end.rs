//! TRI-CRIT integration: chain and fork algorithms, general-DAG
//! heuristics, the VDD adaptation and the fault-injection simulator, all
//! composed end-to-end.

use energy_aware_scheduling::core::reliability::ReliabilityModel;
use energy_aware_scheduling::core::speed::SpeedModel;
use energy_aware_scheduling::core::tricrit::{self, heuristics};
use energy_aware_scheduling::prelude::*;
use energy_aware_scheduling::sim::run_monte_carlo;
use energy_aware_scheduling::taskgraph::generators;

fn rel() -> ReliabilityModel {
    ReliabilityModel::typical(1.0, 2.0, 1.8)
}

#[test]
fn chain_then_adapt_then_simulate() {
    let rel = rel();
    let w = generators::random_weights(10, 0.5, 2.0, 17);
    let d = 2.5 * w.iter().sum::<f64>() / rel.fmax;
    let dag = generators::chain(&w);
    let mapping = Mapping::single_processor((0..w.len()).collect());

    // 1. Continuous TRI-CRIT.
    let cont = tricrit::chain::solve_greedy(&w, d, &rel).expect("feasible");
    assert!(cont.schedule.reliability_ok(&dag, &rel));

    // 2. Adapt to a 6-mode VDD platform.
    let model = SpeedModel::vdd_hopping(vec![1.0, 1.2, 1.4, 1.6, 1.8, 2.0]);
    let adapted = tricrit::vdd::adapt(&dag, &cont, &rel, &model).expect("adaptable");
    adapted
        .schedule
        .validate(&dag, &model, &mapping, Some(d))
        .expect("adapted schedule valid");
    assert!(adapted.schedule.reliability_ok(&dag, &rel));
    assert!(adapted.loss_factor >= 1.0 - 1e-9);

    // 3. Simulate with a hot fault model scaled from the same parameters:
    //    empirical per-task failure rates must sit near the analytic ones.
    let hot = ReliabilityModel::new(0.01, rel.d, rel.fmin, rel.fmax, rel.frel);
    let stats = run_monte_carlo(&dag, &mapping, &adapted.schedule, &hot, 20_000, 5);
    let expected = energy_aware_scheduling::sim::montecarlo::expected_failure_probs(
        &dag,
        &adapted.schedule,
        &hot,
    );
    for (t, (&emp, &ana)) in stats.task_failure_rate.iter().zip(&expected).enumerate() {
        let tol = 4.0 * (ana.max(1e-4) / 20_000.0).sqrt() + 2e-3;
        assert!(
            (emp - ana.min(1.0)).abs() < tol,
            "task {t}: empirical {emp} vs analytic {ana}"
        );
    }
}

#[test]
fn fork_poly_beats_or_matches_singles_baseline() {
    let rel = rel();
    for seed in 0..5 {
        let ws = generators::random_weights(7, 0.5, 2.0, seed);
        let base = 1.0 / rel.fmax + ws.iter().fold(0.0f64, |m, &w| m.max(w / rel.fmax));
        let d = 3.0 * base;
        let sol = tricrit::fork::solve(1.0, &ws, d, &rel).expect("feasible");
        // Baseline: everything once at the minimum reliable speed that
        // fits: speed max(w/t, frel) with the theorem-less split t = D − w0/frel.
        let t = d - 1.0 / rel.frel;
        let baseline: f64 = 1.0 * rel.frel * rel.frel
            + ws.iter()
                .map(|&w| {
                    let f = (w / t).max(rel.frel);
                    w * f * f
                })
                .sum::<f64>();
        assert!(
            sol.energy <= baseline * (1.0 + 1e-9),
            "seed {seed}: fork algorithm {} vs baseline {}",
            sol.energy,
            baseline
        );
    }
}

#[test]
fn heuristics_complementarity_shape() {
    // The paper's qualitative claim: H-A is the right tool on chains, H-B
    // on forks. Verify on one clean instance of each.
    let rel = rel();

    let w = generators::random_weights(20, 0.5, 2.0, 23);
    let d = 1.7 * w.iter().sum::<f64>() / rel.fmax;
    let chain_inst = Instance::single_chain(&w, d).expect("valid");
    let a = heuristics::heuristic_a(&chain_inst, &rel).expect("feasible");
    let b = heuristics::heuristic_b(&chain_inst, &rel).expect("feasible");
    assert!(
        a.energy <= b.energy * (1.0 + 1e-9),
        "chain: H-A {} should win over H-B {}",
        a.energy,
        b.energy
    );

    let ws = generators::random_weights(16, 0.5, 2.0, 29);
    let base = 1.0 / rel.fmax + ws.iter().fold(0.0f64, |m, &w| m.max(w / rel.fmax));
    let fork_inst = Instance::fork(1.0, &ws, 2.2 * base).expect("valid");
    let (best, _) = heuristics::best_of(&fork_inst, &rel).expect("feasible");
    let ms = best
        .schedule
        .makespan(&fork_inst.dag, &fork_inst.mapping)
        .expect("valid");
    assert!(ms <= fork_inst.deadline * (1.0 + 1e-6));
    assert!(best.schedule.reliability_ok(&fork_inst.dag, &rel));
}

#[test]
fn heuristics_on_application_dags() {
    let rel = rel();
    for (label, dag) in [
        ("stencil", generators::stencil_wavefront(4, 4, 1.0)),
        ("fft", generators::fft_butterfly(3, 1.0)),
        ("gauss", generators::gaussian_elimination(4, 1.0)),
    ] {
        let inst = Instance::mapped_by_list_scheduling(dag, Platform::new(4), rel.fmax, f64::MAX)
            .expect("mapping succeeds");
        let d = 2.0 * inst.makespan_at_uniform_speed(rel.fmax);
        let inst = inst.with_deadline(d).expect("positive deadline");
        let (best, _) = heuristics::best_of(&inst, &rel).expect("feasible");
        let ms = best
            .schedule
            .makespan(&inst.dag, &inst.mapping)
            .expect("valid");
        assert!(ms <= d * (1.0 + 1e-6), "{label}: makespan {ms} > {d}");
        assert!(best.schedule.reliability_ok(&inst.dag, &rel), "{label}");
        // Re-execution must actually be exploited somewhere given 2× slack.
        let all_frel: f64 = inst
            .dag
            .weights()
            .iter()
            .map(|w| w * rel.frel * rel.frel)
            .sum();
        assert!(
            best.energy <= all_frel * (1.0 + 1e-9),
            "{label}: best-of {} must not exceed the frel baseline {all_frel}",
            best.energy
        );
    }
}

#[test]
fn exhaustive_confirms_greedy_on_tiny_instances() {
    let rel = rel();
    for seed in 0..6 {
        let w = generators::random_weights(8, 0.5, 2.0, seed + 100);
        let d = 2.0 * w.iter().sum::<f64>() / rel.fmax;
        let greedy = tricrit::chain::solve_greedy(&w, d, &rel).expect("feasible");
        let exact = tricrit::chain::solve_exhaustive(&w, d, &rel).expect("feasible");
        assert!(
            greedy.energy <= exact.energy * 1.05 + 1e-9,
            "seed {seed}: greedy {} vs exact {}",
            greedy.energy,
            exact.energy
        );
        assert!(
            exact.energy <= greedy.energy * (1.0 + 1e-9),
            "exact is a lower bound"
        );
    }
}
