//! End-to-end integration: workload generation → list-scheduling mapping →
//! BI-CRIT solvers under every speed model → schedule validation →
//! fault-injection simulation. Spans every crate in the workspace.

use energy_aware_scheduling::core::bicrit::{continuous, discrete, incremental, vdd};
use energy_aware_scheduling::core::reliability::ReliabilityModel;
use energy_aware_scheduling::core::schedule::Schedule;
use energy_aware_scheduling::core::speed::SpeedModel;
use energy_aware_scheduling::prelude::*;
use energy_aware_scheduling::sim::run_monte_carlo;
use energy_aware_scheduling::taskgraph::generators;

const FMIN: f64 = 1.0;
const FMAX: f64 = 2.0;

fn mapped_instance(seed: u64, mult: f64) -> Instance {
    let dag = generators::random_layered(4, 3, 0.4, 0.5, 2.0, seed);
    let inst = Instance::mapped_by_list_scheduling(dag, Platform::new(3), FMAX, f64::MAX)
        .expect("mapping succeeds");
    let d = mult * inst.makespan_at_uniform_speed(FMAX);
    inst.with_deadline(d).expect("positive deadline")
}

#[test]
fn continuous_pipeline_validates_and_saves_energy() {
    for seed in 0..5 {
        let inst = mapped_instance(seed, 1.6);
        let sol = continuous::solve(&inst, FMIN, FMAX, &Default::default()).expect("feasible");
        let sched = Schedule::from_speeds(&sol.speeds);
        sched
            .validate(
                &inst.dag,
                &SpeedModel::continuous(FMIN, FMAX),
                &inst.mapping,
                Some(inst.deadline),
            )
            .expect("valid schedule");
        let all_fmax: f64 = inst.dag.weights().iter().map(|w| w * FMAX * FMAX).sum();
        assert!(sol.energy < all_fmax, "DVFS must save energy given slack");
        assert!(sol.energy >= sol.lower_bound - 1e-9);
    }
}

#[test]
fn vdd_pipeline_validates() {
    let modes = vec![1.0, 1.25, 1.5, 1.75, 2.0];
    for seed in 0..5 {
        let inst = mapped_instance(seed, 1.6);
        let sol = vdd::solve(inst.augmented_dag(), inst.deadline, &modes).expect("feasible");
        let sched = sol.to_schedule();
        sched
            .validate(
                &inst.dag,
                &SpeedModel::vdd_hopping(modes.clone()),
                &inst.mapping,
                Some(inst.deadline),
            )
            .expect("valid VDD schedule");
        assert!(sol.max_modes_per_task() <= 2, "optimal basic solutions use ≤ 2 speeds");
        assert!(sol.speeds_adjacent(&modes), "and the two speeds are adjacent");
    }
}

#[test]
fn model_refinement_ordering_holds() {
    // CONTINUOUS relaxes VDD-HOPPING relaxes DISCRETE: energies must be
    // ordered accordingly on the same instance.
    let modes = vec![1.0, 1.5, 2.0];
    for seed in 0..4 {
        let inst = mapped_instance(seed, 1.5);
        let aug = inst.augmented_dag();
        let cont = continuous::solve_general(aug, inst.deadline, FMIN, FMAX, &Default::default())
            .expect("feasible");
        let hop = vdd::solve(aug, inst.deadline, &modes).expect("feasible");
        let disc = discrete::solve_bnb(aug, inst.deadline, &modes, discrete::BnbBound::Simple)
            .expect("feasible");
        assert!(
            cont.lower_bound <= hop.energy * (1.0 + 1e-6),
            "seed {seed}: continuous LB {} vs VDD {}",
            cont.lower_bound,
            hop.energy
        );
        assert!(
            hop.energy <= disc.energy * (1.0 + 1e-6),
            "seed {seed}: VDD {} vs DISCRETE {}",
            hop.energy,
            disc.energy
        );
    }
}

#[test]
fn incremental_pipeline_respects_bound_and_validates() {
    for seed in 0..3 {
        let inst = mapped_instance(seed, 1.7);
        let sol = incremental::solve(inst.augmented_dag(), inst.deadline, FMIN, FMAX, 0.2, 20)
            .expect("feasible");
        assert!(sol.ratio <= sol.proven_factor + 1e-9, "seed {seed}");
        let sched = Schedule::from_speeds(&sol.speeds);
        sched
            .validate(
                &inst.dag,
                &SpeedModel::incremental(FMIN, FMAX, 0.2),
                &inst.mapping,
                Some(inst.deadline),
            )
            .expect("valid incremental schedule");
    }
}

#[test]
fn simulation_agrees_with_schedule_accounting() {
    // With a near-zero fault rate the simulator must reproduce the
    // schedule's energy and makespan exactly.
    let rel = ReliabilityModel::new(1e-300, 3.0, FMIN, FMAX, 1.8);
    let inst = mapped_instance(1, 1.6);
    let sol = continuous::solve(&inst, FMIN, FMAX, &Default::default()).expect("feasible");
    let sched = Schedule::from_speeds(&sol.speeds);
    let stats = run_monte_carlo(&inst.dag, &inst.mapping, &sched, &rel, 50, 3);
    assert!((stats.app_success_rate - 1.0).abs() < 1e-12);
    let e = sched.energy(&inst.dag);
    assert!((stats.mean_energy - e).abs() < 1e-9 * e);
    let ms = sched.makespan(&inst.dag, &inst.mapping).expect("valid");
    assert!(stats.max_makespan <= ms * (1.0 + 1e-9));
}

#[test]
fn infeasible_deadlines_rejected_by_every_solver() {
    let inst = Instance::single_chain(&[10.0, 10.0], 1.0).expect("instance builds");
    let aug = inst.augmented_dag();
    assert!(continuous::solve_general(aug, 1.0, FMIN, FMAX, &Default::default()).is_err());
    assert!(vdd::solve(aug, 1.0, &[1.0, 2.0]).is_err());
    assert!(discrete::solve_bnb(aug, 1.0, &[1.0, 2.0], discrete::BnbBound::Simple).is_err());
    assert!(incremental::solve(aug, 1.0, FMIN, FMAX, 0.25, 5).is_err());
}
