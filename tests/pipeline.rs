//! End-to-end integration: workload generation → list-scheduling mapping →
//! BI-CRIT solvers under every speed model (through the unified
//! `bicrit::solve` dispatcher) → schedule validation → fault-injection
//! simulation. Spans every crate in the workspace.

use energy_aware_scheduling::core::bicrit::{self, SolveOptions};
use energy_aware_scheduling::core::reliability::ReliabilityModel;
use energy_aware_scheduling::prelude::*;
use energy_aware_scheduling::sim::run_monte_carlo;
use energy_aware_scheduling::taskgraph::generators;

const FMIN: f64 = 1.0;
const FMAX: f64 = 2.0;

fn mapped_instance(seed: u64, mult: f64) -> Instance {
    let dag = generators::random_layered(4, 3, 0.4, 0.5, 2.0, seed);
    let inst = Instance::mapped_by_list_scheduling(dag, Platform::new(3), FMAX, f64::MAX)
        .expect("mapping succeeds");
    let d = mult * inst.makespan_at_uniform_speed(FMAX);
    inst.with_deadline(d).expect("positive deadline")
}

#[test]
fn continuous_pipeline_validates_and_saves_energy() {
    let model = SpeedModel::continuous(FMIN, FMAX);
    for seed in 0..5 {
        let inst = mapped_instance(seed, 1.6);
        let sol = bicrit::solve(&inst, &model, &SolveOptions::default()).expect("feasible");
        sol.to_schedule()
            .validate(&inst.dag, &model, &inst.mapping, Some(inst.deadline))
            .expect("valid schedule");
        let all_fmax: f64 = inst.dag.weights().iter().map(|w| w * FMAX * FMAX).sum();
        assert!(sol.energy < all_fmax, "DVFS must save energy given slack");
        assert!(sol.energy >= sol.lower_bound.expect("continuous certifies") - 1e-9);
    }
}

#[test]
fn vdd_pipeline_validates() {
    let modes = vec![1.0, 1.25, 1.5, 1.75, 2.0];
    let model = SpeedModel::vdd_hopping(modes.clone());
    for seed in 0..5 {
        let inst = mapped_instance(seed, 1.6);
        let sol = bicrit::solve(&inst, &model, &SolveOptions::default()).expect("feasible");
        sol.to_schedule()
            .validate(&inst.dag, &model, &inst.mapping, Some(inst.deadline))
            .expect("valid VDD schedule");
        let max_modes = sol
            .profiles
            .iter()
            .map(|p| match p {
                SpeedProfile::Constant(_) => 1,
                SpeedProfile::Segments(segs) => segs.len(),
            })
            .max()
            .expect("non-empty");
        assert!(max_modes <= 2, "optimal basic solutions use ≤ 2 speeds");
        assert!(sol.stats.lp_pivots.expect("pivot count") > 0);
    }
}

#[test]
fn model_refinement_ordering_holds() {
    // CONTINUOUS relaxes VDD-HOPPING relaxes DISCRETE: energies must be
    // ordered accordingly on the same instance, via the dispatcher alone.
    let modes = vec![1.0, 1.5, 2.0];
    let opts = SolveOptions::default();
    for seed in 0..4 {
        let inst = mapped_instance(seed, 1.5);
        let cont =
            bicrit::solve(&inst, &SpeedModel::continuous(FMIN, FMAX), &opts).expect("feasible");
        let hop =
            bicrit::solve(&inst, &SpeedModel::vdd_hopping(modes.clone()), &opts).expect("feasible");
        let disc =
            bicrit::solve(&inst, &SpeedModel::discrete(modes.clone()), &opts).expect("feasible");
        let cont_lb = cont.lower_bound.expect("continuous certifies");
        assert!(
            cont_lb <= hop.energy * (1.0 + 1e-6),
            "seed {seed}: continuous LB {} vs VDD {}",
            cont_lb,
            hop.energy
        );
        assert!(
            hop.energy <= disc.energy * (1.0 + 1e-6),
            "seed {seed}: VDD {} vs DISCRETE {}",
            hop.energy,
            disc.energy
        );
    }
}

#[test]
fn incremental_pipeline_respects_bound_and_validates() {
    let model = SpeedModel::incremental(FMIN, FMAX, 0.2);
    let opts = SolveOptions::default().with_accuracy_k(20);
    for seed in 0..3 {
        let inst = mapped_instance(seed, 1.7);
        let sol = bicrit::solve(&inst, &model, &opts).expect("feasible");
        let ratio = sol.stats.approx_ratio.expect("measured ratio");
        let bound = sol.stats.proven_factor.expect("proven factor");
        assert!(ratio <= bound + 1e-9, "seed {seed}");
        sol.to_schedule()
            .validate(&inst.dag, &model, &inst.mapping, Some(inst.deadline))
            .expect("valid incremental schedule");
    }
}

#[test]
fn simulation_agrees_with_schedule_accounting() {
    // With a near-zero fault rate the simulator must reproduce the
    // schedule's energy and makespan exactly.
    let rel = ReliabilityModel::new(1e-300, 3.0, FMIN, FMAX, 1.8);
    let inst = mapped_instance(1, 1.6);
    let sol = bicrit::solve(
        &inst,
        &SpeedModel::continuous(FMIN, FMAX),
        &SolveOptions::default(),
    )
    .expect("feasible");
    let sched = sol.to_schedule();
    let stats = run_monte_carlo(&inst.dag, &inst.mapping, &sched, &rel, 50, 3);
    assert!((stats.app_success_rate - 1.0).abs() < 1e-12);
    let e = sched.energy(&inst.dag);
    assert!((stats.mean_energy - e).abs() < 1e-9 * e);
    assert!(
        (sol.energy - e).abs() < 1e-9 * e,
        "Solution energy = schedule energy"
    );
    let ms = sched.makespan(&inst.dag, &inst.mapping).expect("valid");
    assert!(stats.max_makespan <= ms * (1.0 + 1e-9));
    assert!(
        (sol.makespan - ms).abs() < 1e-9 * ms,
        "Solution makespan = schedule makespan"
    );
}

#[test]
fn infeasible_deadlines_rejected_by_every_solver() {
    let inst = Instance::single_chain(&[10.0, 10.0], 1.0).expect("instance builds");
    let opts = SolveOptions::default();
    let models = [
        SpeedModel::continuous(FMIN, FMAX),
        SpeedModel::vdd_hopping(vec![1.0, 2.0]),
        SpeedModel::discrete(vec![1.0, 2.0]),
        SpeedModel::incremental(FMIN, FMAX, 0.25),
    ];
    for model in &models {
        assert!(bicrit::solve(&inst, model, &opts).is_err(), "{model:?}");
    }
}
