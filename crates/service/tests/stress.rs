//! Concurrency stress test for the solve daemon: many client threads
//! hammering a mix of duplicate and distinct requests must each receive
//! the exact cold-solve answer, the cache stats must add up, the
//! single-flight guarantee must hold (one underlying solve per canonical
//! digest), and shutdown must drain without dropping accepted requests.

use ea_core::bicrit::{self, Solution, SolveOptions};
use ea_core::speed::SpeedModel;
use ea_engine::{DagSpec, Scenario};
use ea_service::server::{serve, ServeOptions};
use ea_service::ServiceStats;
use serde::Deserialize;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// The wire shape of a solve response (ignoring fields we don't assert).
#[derive(Debug, Deserialize)]
struct SolveResponse {
    status: String,
    cached: Option<bool>,
    digest: Option<String>,
    solution: Option<Solution>,
    error: Option<String>,
}

#[derive(Debug, Deserialize)]
struct StatsResponse {
    status: String,
    stats: Option<ServiceStats>,
}

/// The six distinct request shapes of the stress mix: two DAG families
/// under three models, everything else defaulted.
fn distinct_requests() -> Vec<(String, Scenario)> {
    let mk = |dag: &str, model: &str, modes: &str, seed: u64| -> (String, Scenario) {
        let line = format!(
            r#"{{"cmd":"solve","dag":"{dag}","model":"{model}"{modes},"mult":1.5,"seed":{seed},"procs":2}}"#
        );
        let spec = DagSpec::parse(dag).expect("valid spec");
        let m = match model {
            "continuous" => SpeedModel::continuous(1.0, 2.0),
            "vdd" => SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]),
            "discrete" => SpeedModel::discrete(vec![1.0, 1.5, 2.0]),
            "incremental" => SpeedModel::incremental(1.0, 2.0, 0.25),
            other => panic!("unknown model {other}"),
        };
        (
            line,
            Scenario {
                dag: spec,
                model: m,
                deadline_mult: 1.5,
                seed,
            },
        )
    };
    let modes = r#","modes":[1,1.5,2]"#;
    vec![
        mk("chain:6", "continuous", "", 1),
        mk("chain:6", "discrete", modes, 1),
        mk("chain:6", "vdd", modes, 1),
        mk("fork:4", "continuous", "", 2),
        mk("fork:4", "incremental", "", 2),
        mk("layered:3x2", "discrete", modes, 3),
    ]
}

/// The cold reference answer for one scenario, computed in-process.
fn cold_solve(sc: &Scenario) -> Solution {
    let inst = sc.instantiate(2).expect("instantiates");
    bicrit::solve(&inst, &sc.model, &SolveOptions::default()).expect("feasible")
}

#[test]
fn concurrent_duplicates_solve_once_and_match_cold_solves() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 3; // each client sends every request 3×

    let handle = serve(ServeOptions {
        workers: 4,
        ..ServeOptions::default()
    })
    .expect("binds");
    let addr = handle.addr();

    let requests = distinct_requests();
    let expected: Vec<Solution> = requests.iter().map(|(_, sc)| cold_solve(sc)).collect();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let requests: Vec<String> = requests.iter().map(|(line, _)| line.clone()).collect();
            std::thread::spawn(move || -> Vec<(usize, Solution, bool)> {
                let stream = TcpStream::connect(addr).expect("connects");
                let mut writer = stream.try_clone().expect("clones");
                let mut reader = BufReader::new(stream);
                let mut got = Vec::new();
                for round in 0..ROUNDS {
                    // Each client walks the mix at a different offset, so
                    // distinct keys are in flight concurrently.
                    for k in 0..requests.len() {
                        let idx = (k + c + round) % requests.len();
                        writeln!(writer, "{}", requests[idx]).expect("writes");
                        writer.flush().expect("flushes");
                        let mut line = String::new();
                        reader.read_line(&mut line).expect("reads");
                        let resp: SolveResponse =
                            serde_json::from_str(&line).expect("well-formed response");
                        assert_eq!(resp.status, "ok", "error: {:?}", resp.error);
                        assert!(resp.digest.is_some(), "solve responses carry the digest");
                        got.push((
                            idx,
                            resp.solution.expect("ok responses carry the solution"),
                            resp.cached.expect("ok responses carry the cache flag"),
                        ));
                    }
                }
                got
            })
        })
        .collect();

    let mut total = 0usize;
    let mut served_cached = 0usize;
    let mut digests_by_idx: HashMap<usize, Vec<Solution>> = HashMap::new();
    for client in clients {
        for (idx, sol, cached) in client.join().expect("client thread survives") {
            total += 1;
            served_cached += cached as usize;
            digests_by_idx.entry(idx).or_default().push(sol);
        }
    }
    assert_eq!(total, CLIENTS * ROUNDS * requests.len());

    // Every response bit-matches the cold in-process solve.
    for (idx, sols) in &digests_by_idx {
        let want = &expected[*idx];
        for got in sols {
            assert_eq!(
                got.energy.to_bits(),
                want.energy.to_bits(),
                "request {idx}: served energy {} != cold {}",
                got.energy,
                want.energy
            );
            assert_eq!(
                got.makespan.to_bits(),
                want.makespan.to_bits(),
                "request {idx}: served makespan differs"
            );
            assert_eq!(
                got.profiles, want.profiles,
                "request {idx}: served profiles differ"
            );
        }
    }

    // Single flight: exactly one underlying solve per canonical digest,
    // asserted through the service's own stats.
    let stats = query_stats(addr);
    assert_eq!(
        stats.total_solves(),
        requests.len() as u64,
        "exactly one underlying solve per distinct request: {stats:?}"
    );
    assert_eq!(stats.solves_continuous, 2, "{stats:?}");
    assert_eq!(stats.solves_discrete, 2, "{stats:?}");
    assert_eq!(stats.solves_vdd_hopping, 1, "{stats:?}");
    assert_eq!(stats.solves_incremental, 1, "{stats:?}");

    let cache = stats.cache.expect("stats carry cache counters");
    assert_eq!(cache.misses, requests.len() as u64, "one miss per digest");
    assert_eq!(cache.evictions, 0, "capacity never exceeded");
    // Everything not a miss was served from the cache, one way or the
    // other — and the transport-level `cached` flags agree.
    let expected_cached = (total - requests.len()) as u64;
    assert_eq!(cache.served_without_compute(), expected_cached, "{cache:?}");
    assert_eq!(served_cached as u64, expected_cached);

    // +1 for the stats connection itself.
    assert_eq!(stats.connections, CLIENTS as u64 + 1, "{stats:?}");
    assert_eq!(stats.rejected, 0, "queue never overflowed: {stats:?}");

    // Graceful shutdown: ack, then join — the daemon exits on its own.
    shutdown(addr);
    handle.join();
}

/// Shutdown must drain the queue: requests written *before* the shutdown
/// command on other connections are all answered.
#[test]
fn shutdown_drains_in_flight_connections() {
    let handle = serve(ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    })
    .expect("binds");
    let addr = handle.addr();

    // Open several connections and write one request on each (without
    // reading yet), so work is queued when the shutdown lands.
    let mut pending: Vec<(BufReader<TcpStream>, TcpStream)> = (0..4)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connects");
            let reader = BufReader::new(s.try_clone().expect("clones"));
            (reader, s)
        })
        .collect();
    for (i, (_, w)) in pending.iter_mut().enumerate() {
        writeln!(
            w,
            r#"{{"cmd":"solve","dag":"chain:5","model":"continuous","mult":1.5,"seed":{i}}}"#
        )
        .expect("writes");
        w.flush().expect("flushes");
    }

    shutdown(addr);

    // Every accepted request is still answered after the shutdown ack.
    for (i, (reader, _)) in pending.iter_mut().enumerate() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads");
        let resp: SolveResponse = serde_json::from_str(&line).expect("parses");
        assert_eq!(resp.status, "ok", "connection {i} dropped: {line}");
        assert!(resp.solution.is_some(), "connection {i} got no solution");
    }
    drop(pending);
    handle.join();
}

fn query_stats(addr: std::net::SocketAddr) -> ServiceStats {
    let stream = TcpStream::connect(addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = BufReader::new(stream);
    writeln!(writer, r#"{{"cmd":"stats"}}"#).expect("writes");
    writer.flush().expect("flushes");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reads");
    let resp: StatsResponse = serde_json::from_str(&line).expect("parses");
    assert_eq!(resp.status, "ok");
    resp.stats.expect("stats payload present")
}

fn shutdown(addr: std::net::SocketAddr) {
    let stream = TcpStream::connect(addr).expect("connects");
    let mut writer = stream.try_clone().expect("clones");
    let mut reader = BufReader::new(stream);
    writeln!(writer, r#"{{"cmd":"shutdown"}}"#).expect("writes");
    writer.flush().expect("flushes");
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("reads ack");
    assert!(ack.contains(r#""shutting_down":true"#), "{ack}");
}
