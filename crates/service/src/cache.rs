//! Sharded, single-flight LRU solution cache.
//!
//! The cache is keyed by the canonical request digest
//! ([`ea_core::digest::solve_request_digest`]). Two properties matter for
//! a concurrent serving layer:
//!
//! * **Sharding** — the key space is split across independent mutexes by
//!   hash prefix (the digest's high bits), so concurrent clients touching
//!   different keys never serialise on one lock.
//! * **Single flight** — when several clients ask for the *same* key at
//!   once, exactly one computes; the rest block on the shard's condvar and
//!   receive the finished value. This is what makes "one underlying solve
//!   per canonical digest" hold under load, not just on a warm cache.
//!
//! Eviction is LRU per shard over *ready* entries (in-flight computations
//! are never evicted), with capacities split evenly across shards.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Point-in-time counters of a [`ShardedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Requests answered from a ready entry on first look.
    pub hits: u64,
    /// Requests that initiated a compute (== distinct digests solved,
    /// minus any recomputes forced by eviction).
    pub misses: u64,
    /// Requests that arrived while the same key was being computed and
    /// waited for it instead of recomputing.
    pub coalesced: u64,
    /// Ready entries discarded to stay within capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Requests served without running a compute (`hits + coalesced`).
    pub fn served_without_compute(&self) -> u64 {
        self.hits + self.coalesced
    }
}

enum Entry<T> {
    /// Finished value plus its last-use tick for LRU eviction.
    Ready { value: T, last_used: u64 },
    /// A compute is in flight on some worker; waiters block on the shard
    /// condvar until it lands.
    Pending,
}

struct ShardState<T> {
    map: HashMap<u64, Entry<T>>,
    /// Monotone use counter driving LRU.
    tick: u64,
}

struct Shard<T> {
    state: Mutex<ShardState<T>>,
    cv: Condvar,
}

/// Removes the `Pending` marker if the computing closure unwinds, so
/// waiters error out instead of blocking forever.
struct PendingGuard<'a, T> {
    shard: &'a Shard<T>,
    key: u64,
    armed: bool,
}

impl<T> Drop for PendingGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            let mut st = self.shard.state.lock().unwrap_or_else(|e| e.into_inner());
            st.map.remove(&self.key);
            self.shard.cv.notify_all();
        }
    }
}

/// A sharded single-flight LRU cache from `u64` digests to clonable
/// values.
///
/// ```
/// use ea_service::cache::ShardedCache;
///
/// let cache: ShardedCache<String> = ShardedCache::new(8, 64);
/// let (v, cached) = cache.get_or_compute(42, || "answer".to_string());
/// assert_eq!((v.as_str(), cached), ("answer", false));
/// let (v, cached) = cache.get_or_compute(42, || unreachable!("cached"));
/// assert_eq!((v.as_str(), cached), ("answer", true));
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct ShardedCache<T> {
    shards: Vec<Shard<T>>,
    /// log2 of the shard count — the shard index is the digest's top bits.
    shard_bits: u32,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

impl<T: Clone> ShardedCache<T> {
    /// A cache with `shards` shards (rounded up to a power of two, min 1)
    /// holding at most `capacity` ready entries in total (split evenly,
    /// at least one per shard).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        map: HashMap::new(),
                        tick: 0,
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            shard_bits: shards.trailing_zeros(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: u64) -> &Shard<T> {
        // Hash-prefix sharding: the digest's high bits pick the shard
        // (`>> 64` is not a valid shift, so a single shard short-circuits).
        let idx = if self.shard_bits == 0 {
            0
        } else {
            (key >> (64 - self.shard_bits)) as usize
        };
        &self.shards[idx]
    }

    /// Returns the cached value for `key`, or computes it with `f` —
    /// exactly once per key even under concurrent callers. The second
    /// element is `true` when the value came from the cache (either a
    /// ready entry or a coalesced in-flight compute).
    pub fn get_or_compute<F: FnOnce() -> T>(&self, key: u64, f: F) -> (T, bool) {
        let shard = self.shard_of(key);
        let mut waited = false;
        let mut st = shard.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match st.map.get(&key) {
                Some(Entry::Ready { .. }) => {
                    st.tick += 1;
                    let tick = st.tick;
                    let Some(Entry::Ready { value, last_used }) = st.map.get_mut(&key) else {
                        unreachable!("entry just observed under the same lock");
                    };
                    *last_used = tick;
                    let v = value.clone();
                    if waited {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return (v, true);
                }
                Some(Entry::Pending) => {
                    waited = true;
                    st = shard.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                None => {
                    // Either first caller for the key, or the compute we
                    // waited on unwound — compute it ourselves.
                    st.map.insert(key, Entry::Pending);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    drop(st);

                    let mut guard = PendingGuard {
                        shard,
                        key,
                        armed: true,
                    };
                    let value = f();
                    guard.armed = false;

                    let mut st = shard.state.lock().unwrap_or_else(|e| e.into_inner());
                    st.tick += 1;
                    let tick = st.tick;
                    st.map.insert(
                        key,
                        Entry::Ready {
                            value: value.clone(),
                            last_used: tick,
                        },
                    );
                    self.evict_over_capacity(&mut st);
                    drop(st);
                    shard.cv.notify_all();
                    return (value, false);
                }
            }
        }
    }

    /// Evicts least-recently-used ready entries until the shard is within
    /// capacity (pending entries don't count and are never evicted).
    fn evict_over_capacity(&self, st: &mut ShardState<T>) {
        loop {
            let ready = st
                .map
                .iter()
                .filter(|(_, e)| matches!(e, Entry::Ready { .. }))
                .count();
            if ready <= self.per_shard_capacity {
                return;
            }
            let victim = st
                .map
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { last_used, .. } => Some((*last_used, *k)),
                    Entry::Pending => None,
                })
                .min()
                .map(|(_, k)| k);
            if let Some(k) = victim {
                st.map.remove(&k);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                return;
            }
        }
    }

    /// Ready entries currently held, across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.state
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .map
                    .values()
                    .filter(|e| matches!(e, Entry::Ready { .. }))
                    .count()
            })
            .sum()
    }

    /// True when no ready entry is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn hit_after_miss() {
        let cache: ShardedCache<u32> = ShardedCache::new(4, 16);
        let (v, cached) = cache.get_or_compute(1, || 10);
        assert_eq!((v, cached), (10, false));
        let (v, cached) = cache.get_or_compute(1, || panic!("must be cached"));
        assert_eq!((v, cached), (10, true));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.coalesced, s.evictions), (1, 1, 0, 0));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c: ShardedCache<u8> = ShardedCache::new(5, 16);
        assert_eq!(c.shard_count(), 8);
        let c: ShardedCache<u8> = ShardedCache::new(0, 16);
        assert_eq!(c.shard_count(), 1);
        c.get_or_compute(u64::MAX, || 1); // single shard: shift guard path
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_prefers_least_recently_used() {
        // One shard, capacity 2: insert a, b; touch a; insert c → b evicted.
        let cache: ShardedCache<&'static str> = ShardedCache::new(1, 2);
        cache.get_or_compute(1, || "a");
        cache.get_or_compute(2, || "b");
        cache.get_or_compute(1, || unreachable!()); // refresh a
        cache.get_or_compute(3, || "c");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        let (_, cached) = cache.get_or_compute(1, || "a2");
        assert!(cached, "a survived");
        let (_, cached) = cache.get_or_compute(2, || "b2");
        assert!(!cached, "b was the LRU victim");
    }

    #[test]
    fn concurrent_duplicates_compute_once() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new(8, 64));
        let computes = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                std::thread::spawn(move || {
                    for round in 0..50u64 {
                        let key = round % 5;
                        let (v, _) = cache.get_or_compute(key, || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_micros(200));
                            key * 100
                        });
                        assert_eq!(v, key * 100);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panics");
        }
        assert_eq!(computes.load(Ordering::SeqCst), 5, "one compute per key");
        let s = cache.stats();
        assert_eq!(s.misses, 5);
        assert_eq!(s.hits + s.coalesced + s.misses, 8 * 50);
    }

    #[test]
    fn panicked_compute_releases_waiters() {
        let cache: Arc<ShardedCache<u32>> = Arc::new(ShardedCache::new(1, 4));
        let c2 = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(7, || panic!("compute failed"));
            }));
        });
        panicker.join().expect("catch_unwind absorbed the panic");
        // The pending marker is gone: a later caller computes fresh.
        let (v, cached) = cache.get_or_compute(7, || 99);
        assert_eq!((v, cached), (99, false));
    }
}
