//! The solve daemon: TCP accept loop, bounded connection queue, fixed
//! worker pool, sharded solution cache, graceful shutdown.
//!
//! Threading model (std::net + std::thread only):
//!
//! * one **accept thread** polls a non-blocking listener and pushes
//!   accepted connections onto a bounded queue — when the queue is full
//!   the client gets a one-line `busy` error instead of unbounded memory
//!   growth (backpressure by rejection, not by silent buffering);
//! * `workers` **worker threads** pop connections and serve them
//!   request-line by request-line; every solve goes through the shared
//!   [`ShardedCache`] keyed by
//!   [`ea_core::digest::solve_request_digest`], so identical requests —
//!   even concurrent ones — run exactly one underlying solve;
//! * a `shutdown` request flips the shutdown flag: the accept thread
//!   stops accepting, workers drain the queue (every accepted connection
//!   is still served), idle keep-alive connections are closed at the
//!   next read-timeout tick, and [`ServerHandle::join`] returns.

use crate::cache::ShardedCache;
use crate::protocol::{cached_line, error_line, ok_line, parse_request, Request, ServiceStats};
use ea_core::bicrit::pareto::{trace_front, FrontOptions, ParetoFront};
use ea_core::bicrit::{self, Solution, SolveOptions};
use ea_core::digest::{solve_request_digest, Hasher64};
use ea_core::speed::SpeedModel;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Knobs of a daemon instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Interface to bind (loopback by default — the daemon speaks an
    /// unauthenticated protocol).
    pub host: String,
    /// TCP port; 0 picks an ephemeral port (read it back from
    /// [`ServerHandle::addr`]).
    pub port: u16,
    /// Worker threads serving connections (≥ 1).
    pub workers: usize,
    /// Bounded connection-queue capacity; a full queue answers `busy`.
    pub queue_cap: usize,
    /// Total ready entries the solution cache may hold.
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Solver options applied to every solve (part of the cache key).
    pub solve: SolveOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            host: "127.0.0.1".into(),
            port: 0,
            workers: 4,
            queue_cap: 64,
            cache_capacity: 1024,
            cache_shards: 16,
            solve: SolveOptions::default(),
        }
    }
}

/// What the cache stores per digest: the solve (or trace) outcome.
/// Errors are cached too — an infeasible deadline is as deterministic as
/// a feasible solve, and recomputing it per duplicate would defeat the
/// single-flight guarantee.
#[derive(Debug)]
enum Outcome {
    Solution(Solution),
    Front(ParetoFront),
    Error(String),
}

struct Counters {
    connections: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    solves_continuous: AtomicU64,
    solves_discrete: AtomicU64,
    solves_vdd_hopping: AtomicU64,
    solves_incremental: AtomicU64,
    front_traces: AtomicU64,
}

/// The worker-pool connection queue, in two tiers: `fresh` connections
/// from the accept loop are bounded by `queue_cap` (the backpressure
/// limit on *pending* work), while `parked` holds idle keep-alive
/// connections rotated out by workers — those were already accepted, so
/// they must not eat capacity and cause spurious `busy` rejections.
#[derive(Default)]
struct ConnQueue {
    fresh: VecDeque<TcpStream>,
    parked: VecDeque<TcpStream>,
}

impl ConnQueue {
    /// Fresh work first, then rotated keep-alive connections.
    fn pop(&mut self) -> Option<TcpStream> {
        self.fresh.pop_front().or_else(|| self.parked.pop_front())
    }

    fn is_empty(&self) -> bool {
        self.fresh.is_empty() && self.parked.is_empty()
    }
}

struct Shared {
    cache: ShardedCache<Arc<Outcome>>,
    queue: Mutex<ConnQueue>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    opts: ServeOptions,
}

impl Shared {
    fn count_solve(&self, model: &SpeedModel) {
        let c = match model {
            SpeedModel::Continuous { .. } => &self.counters.solves_continuous,
            SpeedModel::Discrete { .. } => &self.counters.solves_discrete,
            SpeedModel::VddHopping { .. } => &self.counters.solves_vdd_hopping,
            SpeedModel::Incremental { .. } => &self.counters.solves_incremental,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> ServiceStats {
        let (queue_depth, parked) = {
            let q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            (q.fresh.len() as u64, q.parked.len() as u64)
        };
        ServiceStats {
            cache: Some(self.cache.stats()),
            cached_entries: self.cache.len() as u64,
            queue_depth,
            parked_connections: parked,
            connections: self.counters.connections.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            solves_continuous: self.counters.solves_continuous.load(Ordering::Relaxed),
            solves_discrete: self.counters.solves_discrete.load(Ordering::Relaxed),
            solves_vdd_hopping: self.counters.solves_vdd_hopping.load(Ordering::Relaxed),
            solves_incremental: self.counters.solves_incremental.load(Ordering::Relaxed),
            front_traces: self.counters.front_traces.load(Ordering::Relaxed),
            shutting_down: self.shutdown.load(Ordering::SeqCst),
            workers: self.opts.workers as u64,
        }
    }
}

/// A running daemon: its bound address and the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown programmatically (same effect as a `shutdown`
    /// request line).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Point-in-time service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Blocks until the accept loop and every worker have exited (i.e.
    /// shutdown was requested and the queue drained).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Binds the listener and spawns the accept loop plus the worker pool.
/// Returns immediately; the daemon runs until a `shutdown` request (or
/// [`ServerHandle::shutdown`]) followed by [`ServerHandle::join`].
pub fn serve(opts: ServeOptions) -> std::io::Result<ServerHandle> {
    if opts.workers == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "workers must be ≥ 1",
        ));
    }
    if opts.queue_cap == 0 {
        // A zero-capacity queue would answer `busy` to every connection —
        // including shutdown requests — leaving the daemon unstoppable
        // over TCP.
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "queue_cap must be ≥ 1",
        ));
    }
    if opts.cache_capacity == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "cache_capacity must be ≥ 1",
        ));
    }
    let listener = TcpListener::bind((opts.host.as_str(), opts.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        cache: ShardedCache::new(opts.cache_shards, opts.cache_capacity),
        queue: Mutex::new(ConnQueue::default()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        counters: Counters {
            connections: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            solves_continuous: AtomicU64::new(0),
            solves_discrete: AtomicU64::new(0),
            solves_vdd_hopping: AtomicU64::new(0),
            solves_incremental: AtomicU64::new(0),
            front_traces: AtomicU64::new(0),
        },
        opts: opts.clone(),
    });

    let mut threads = Vec::with_capacity(opts.workers + 1);
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("ea-accept".into())
                .spawn(move || accept_loop(listener, &shared))?,
        );
    }
    for w in 0..opts.workers {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ea-worker-{w}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                if q.fresh.len() >= shared.opts.queue_cap {
                    drop(q);
                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    let _ = writeln!(
                        stream,
                        "{}",
                        error_line("server busy: connection queue full, retry later")
                    );
                } else {
                    q.fresh.push_back(stream);
                    drop(q);
                    shared.queue_cv.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Wake every worker so they can observe the shutdown flag.
    shared.queue_cv.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(c) = q.pop() {
                    break Some(c);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        match conn {
            Some(stream) => {
                if let Some(idle) = serve_connection(stream, shared) {
                    // The connection went idle while others were waiting:
                    // park it so one slow client can never starve queued
                    // work (or a pending shutdown command). Parked
                    // connections don't count against `queue_cap`.
                    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    q.parked.push_back(idle);
                    drop(q);
                    shared.queue_cv.notify_one();
                }
            }
            None => return, // shutting down and the queue is drained
        }
    }
}

/// What one [`read_line_capped`] call produced.
enum LineEvent {
    /// A complete line (or the unterminated final line before EOF) is in
    /// the buffer.
    Line,
    /// Clean EOF with nothing pending.
    Eof,
    /// Read timeout with no (or only partial) data — check flags, retry.
    Idle,
    /// The line exceeded the cap; the connection should be closed.
    TooLong,
}

/// Reads towards the next `\n` into `line`, enforcing `cap` on every
/// buffered chunk — unlike `BufRead::read_line`, a client streaming
/// newline-free bytes at full speed is cut off at `cap`, not buffered
/// until memory runs out. Partial data survives in `line` across `Idle`
/// returns.
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    cap: usize,
) -> std::io::Result<LineEvent> {
    loop {
        let (consumed, complete) = {
            let buf = match reader.fill_buf() {
                Ok(b) => b,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(LineEvent::Idle)
                }
                Err(e) => return Err(e),
            };
            if buf.is_empty() {
                // EOF. Surface a pending unterminated line first; the
                // next call reports the EOF itself.
                return Ok(if line.is_empty() {
                    LineEvent::Eof
                } else {
                    LineEvent::Line
                });
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&buf[..pos]);
                    (pos + 1, true)
                }
                None => {
                    line.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if line.len() > cap {
            return Ok(LineEvent::TooLong);
        }
        if complete {
            return Ok(LineEvent::Line);
        }
    }
}

/// Serves one connection until EOF, an I/O error, or (once shutdown has
/// been requested) the next idle read-timeout tick. Requests already
/// received are always answered — shutdown never drops an accepted
/// request, it only stops waiting for new ones.
///
/// Returns `Some(stream)` when the connection is idle but healthy and
/// other connections are queued — the caller parks it (cooperative
/// round-robin between keep-alive clients and waiting work).
fn serve_connection(stream: TcpStream, shared: &Shared) -> Option<TcpStream> {
    /// Hard cap on one request line — a client streaming bytes with no
    /// newline must not grow the buffer without bound.
    const MAX_LINE_BYTES: usize = 1 << 20;
    /// Idle ticks (at the 100ms read timeout) a *partial* line may keep a
    /// connection open once shutdown has been requested, before the
    /// daemon gives up on the straggler and closes it.
    const SHUTDOWN_GRACE_TICKS: u32 = 20;

    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return None,
    };
    let mut reader = BufReader::new(stream);
    // One persistent line buffer: a read timeout can land mid-line, with
    // the partial bytes already appended — they must survive until the
    // terminating newline arrives on a later read.
    let mut line: Vec<u8> = Vec::new();
    let mut stalled_ticks: u32 = 0;
    // Yield the connection back to the pool when other connections wait
    // and no bytes of a next request are already with this reader —
    // round-robin between keep-alive clients and queued work.
    let yieldable = |line: &[u8], reader: &BufReader<TcpStream>, shared: &Shared| {
        line.is_empty()
            && reader.buffer().is_empty()
            && !shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
    };
    loop {
        match read_line_capped(&mut reader, &mut line, MAX_LINE_BYTES) {
            Ok(LineEvent::Eof) => return None, // client closed
            Ok(LineEvent::TooLong) => {
                let _ = writeln!(writer, "{}", error_line("request line exceeds 1 MiB"));
                return None;
            }
            Ok(LineEvent::Line) => {
                stalled_ticks = 0;
                let text = String::from_utf8_lossy(&line).into_owned();
                if !text.trim().is_empty() {
                    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                    let reply = handle_line(&text, shared);
                    if writeln!(writer, "{reply}")
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return None;
                    }
                }
                line.clear();
                // A continuously-active client must not monopolise its
                // worker: rotate after each answered request when other
                // connections are waiting (a pipelined burst stays — its
                // next request is already in the reader buffer).
                if yieldable(&line, &reader, shared) {
                    return Some(reader.into_inner());
                }
            }
            Ok(LineEvent::Idle) => {
                // Idle tick. Once shutdown is requested: close idle
                // keep-alive connections immediately, and give a partial
                // line a bounded grace period instead of letting one
                // stalled client block the daemon's exit forever.
                if shared.shutdown.load(Ordering::SeqCst) {
                    if line.is_empty() {
                        return None;
                    }
                    stalled_ticks += 1;
                    if stalled_ticks > SHUTDOWN_GRACE_TICKS {
                        return None;
                    }
                }
                if yieldable(&line, &reader, shared) {
                    return Some(reader.into_inner());
                }
            }
            Err(_) => return None,
        }
    }
}

fn handle_line(line: &str, shared: &Shared) -> String {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return error_line(&e),
    };
    match request {
        Request::Stats => ok_line("stats", &shared.stats()),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            ok_line("shutting_down", &true)
        }
        Request::Solve { scenario, procs } => {
            let inst = match scenario.instantiate(procs) {
                Ok(i) => i,
                Err(e) => return error_line(&e.to_string()),
            };
            let digest = solve_request_digest(&inst, &scenario.model, &shared.opts.solve);
            let (outcome, cached) = shared.cache.get_or_compute(digest, || {
                shared.count_solve(&scenario.model);
                match bicrit::solve(&inst, &scenario.model, &shared.opts.solve) {
                    Ok(sol) => Arc::new(Outcome::Solution(sol)),
                    Err(e) => Arc::new(Outcome::Error(e.to_string())),
                }
            });
            match &*outcome {
                Outcome::Solution(sol) => cached_line("solution", digest, cached, sol),
                Outcome::Error(e) => error_line(e),
                Outcome::Front(_) => error_line("internal: digest collided across request kinds"),
            }
        }
        Request::Front {
            scenario,
            procs,
            points,
            tol,
        } => {
            let inst = match scenario.instantiate(procs) {
                Ok(i) => i,
                Err(e) => return error_line(&e.to_string()),
            };
            // The front digest extends the solve digest with the request
            // kind and the front knobs, so a front and a solve over the
            // same instance can never alias.
            let mut h = Hasher64::new();
            h.write_str("front-request-v1");
            h.write_u64(solve_request_digest(
                &inst,
                &scenario.model,
                &shared.opts.solve,
            ));
            h.write_usize(points);
            h.write_f64(tol);
            let digest = h.finish();
            let front_opts = FrontOptions::default()
                .with_initial_points(points)
                .with_max_points(points.saturating_mul(2))
                .with_energy_tol(tol);
            let (outcome, cached) = shared.cache.get_or_compute(digest, || {
                shared.counters.front_traces.fetch_add(1, Ordering::Relaxed);
                match trace_front(&inst, &scenario.model, &front_opts) {
                    Ok(front) => Arc::new(Outcome::Front(front)),
                    Err(e) => Arc::new(Outcome::Error(e.to_string())),
                }
            });
            match &*outcome {
                Outcome::Front(front) => cached_line("front", digest, cached, front),
                Outcome::Error(e) => error_line(e),
                Outcome::Solution(_) => {
                    error_line("internal: digest collided across request kinds")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn connect(handle: &ServerHandle) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(handle.addr()).expect("connects");
        let reader = BufReader::new(stream.try_clone().expect("clones"));
        (reader, stream)
    }

    fn roundtrip(
        reader: &mut BufReader<TcpStream>,
        writer: &mut TcpStream,
        request: &str,
    ) -> String {
        writeln!(writer, "{request}").expect("writes");
        writer.flush().expect("flushes");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads");
        line
    }

    fn small_opts() -> ServeOptions {
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        }
    }

    #[test]
    fn solve_round_trip_and_cache_flag() {
        let handle = serve(small_opts()).expect("binds");
        let (mut r, mut w) = connect(&handle);
        let req = r#"{"cmd":"solve","dag":"chain:5","model":"continuous","mult":1.5,"seed":1}"#;
        let first = roundtrip(&mut r, &mut w, req);
        assert!(first.contains(r#""status":"ok""#), "{first}");
        assert!(first.contains(r#""cached":false"#), "{first}");
        assert!(first.contains(r#""energy""#), "{first}");
        let second = roundtrip(&mut r, &mut w, req);
        assert!(second.contains(r#""cached":true"#), "{second}");
        let stats = handle.stats();
        assert_eq!(stats.total_solves(), 1, "one underlying solve");
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn bad_requests_keep_the_connection_alive() {
        let handle = serve(small_opts()).expect("binds");
        let (mut r, mut w) = connect(&handle);
        let bad = roundtrip(&mut r, &mut w, "this is not json");
        assert!(bad.contains(r#""status":"error""#), "{bad}");
        // The same connection still serves good requests afterwards.
        let good = roundtrip(&mut r, &mut w, r#"{"cmd":"stats"}"#);
        assert!(good.contains(r#""status":"ok""#), "{good}");
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn infeasible_deadline_is_a_clean_error() {
        let handle = serve(small_opts()).expect("binds");
        let (mut r, mut w) = connect(&handle);
        let resp = roundtrip(
            &mut r,
            &mut w,
            r#"{"cmd":"solve","dag":"chain:5","mult":0.3}"#,
        );
        assert!(resp.contains(r#""status":"error""#), "{resp}");
        assert!(resp.contains("infeasible"), "{resp}");
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn front_round_trip() {
        let handle = serve(small_opts()).expect("binds");
        let (mut r, mut w) = connect(&handle);
        let req = r#"{"cmd":"front","dag":"chain:4","model":"discrete","modes":[1,2],"points":4,"seed":2}"#;
        let resp = roundtrip(&mut r, &mut w, req);
        assert!(resp.contains(r#""status":"ok""#), "{resp}");
        assert!(resp.contains(r#""points""#), "{resp}");
        let again = roundtrip(&mut r, &mut w, req);
        assert!(again.contains(r#""cached":true"#), "{again}");
        assert_eq!(handle.stats().front_traces, 1);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn shutdown_request_stops_the_daemon() {
        let handle = serve(small_opts()).expect("binds");
        let addr = handle.addr();
        let (mut r, mut w) = connect(&handle);
        let ack = roundtrip(&mut r, &mut w, r#"{"cmd":"shutdown"}"#);
        assert!(ack.contains(r#""shutting_down":true"#), "{ack}");
        drop((r, w));
        handle.join();
        // The listener is gone: a fresh connect must fail (the OS may
        // accept briefly on some platforms, so allow either failure to
        // connect or an immediate EOF).
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(s) => {
                let mut line = String::new();
                let mut reader = BufReader::new(s);
                let n = reader.read_line(&mut line).unwrap_or(0);
                assert_eq!(n, 0, "daemon still answering after shutdown: {line}");
            }
        }
    }

    #[test]
    fn zero_capacity_options_are_rejected() {
        for opts in [
            ServeOptions {
                workers: 0,
                ..ServeOptions::default()
            },
            ServeOptions {
                queue_cap: 0,
                ..ServeOptions::default()
            },
            ServeOptions {
                cache_capacity: 0,
                ..ServeOptions::default()
            },
        ] {
            assert!(serve(opts).is_err(), "zero-capacity daemon must not bind");
        }
    }

    #[test]
    fn busy_client_cannot_starve_queued_connections() {
        // One worker: a client that keeps its connection active must not
        // monopolise it — a second connection (here: the shutdown
        // command) still gets served via yield-after-request.
        let handle = serve(ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        })
        .expect("binds");
        let (mut busy_r, mut busy_w) = connect(&handle);
        let first = roundtrip(&mut busy_r, &mut busy_w, r#"{"cmd":"stats"}"#);
        assert!(first.contains(r#""status":"ok""#), "{first}");
        let (mut r2, mut w2) = connect(&handle);
        let answered = roundtrip(&mut r2, &mut w2, r#"{"cmd":"stats"}"#);
        assert!(
            answered.contains(r#""status":"ok""#),
            "second connection starved: {answered}"
        );
        let ack = roundtrip(&mut r2, &mut w2, r#"{"cmd":"shutdown"}"#);
        assert!(ack.contains(r#""shutting_down":true"#), "{ack}");
        drop((busy_r, busy_w, r2, w2));
        handle.join();
    }

    #[test]
    fn parked_idle_connections_do_not_consume_queue_capacity() {
        // One worker, tiny queue: several idle keep-alive clients get
        // parked between requests and must not trigger `busy` rejections
        // for new connections.
        let handle = serve(ServeOptions {
            workers: 1,
            queue_cap: 2,
            ..ServeOptions::default()
        })
        .expect("binds");
        let mut idle = Vec::new();
        for _ in 0..4 {
            let (mut r, mut w) = connect(&handle);
            let resp = roundtrip(&mut r, &mut w, r#"{"cmd":"stats"}"#);
            assert!(resp.contains(r#""status":"ok""#), "{resp}");
            idle.push((r, w)); // keep the connection open and idle
        }
        // Give the worker time to rotate the idle connections into the
        // parked tier, then a fresh client must still get through.
        std::thread::sleep(Duration::from_millis(300));
        let (mut r, mut w) = connect(&handle);
        let resp = roundtrip(&mut r, &mut w, r#"{"cmd":"stats"}"#);
        assert!(
            resp.contains(r#""status":"ok""#) && !resp.contains("busy"),
            "fresh client rejected while the daemon is idle: {resp}"
        );
        assert_eq!(handle.stats().rejected, 0);
        let ack = roundtrip(&mut r, &mut w, r#"{"cmd":"shutdown"}"#);
        assert!(ack.contains(r#""shutting_down":true"#), "{ack}");
        drop((idle, r, w));
        handle.join();
    }

    #[test]
    fn partial_line_does_not_block_shutdown_forever() {
        let handle = serve(small_opts()).expect("binds");
        // A stalled client: bytes of a request, no newline, socket held
        // open.
        let mut stalled = TcpStream::connect(handle.addr()).expect("connects");
        stalled
            .write_all(br#"{"cmd":"sol"#)
            .expect("writes partial");
        stalled.flush().expect("flushes");
        std::thread::sleep(Duration::from_millis(150)); // let a worker adopt it
        let (mut r, mut w) = connect(&handle);
        let ack = roundtrip(&mut r, &mut w, r#"{"cmd":"shutdown"}"#);
        assert!(ack.contains(r#""shutting_down":true"#), "{ack}");
        drop((r, w));
        let t0 = std::time::Instant::now();
        handle.join();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "join hung on the stalled client: {:?}",
            t0.elapsed()
        );
        drop(stalled);
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let handle = serve(small_opts()).expect("binds");
        let (mut r, mut w) = connect(&handle);
        let huge = format!(r#"{{"cmd":"solve","dag":"{}"}}"#, "x".repeat(2 << 20));
        let resp = roundtrip(&mut r, &mut w, &huge);
        assert!(resp.contains("exceeds 1 MiB"), "{resp}");
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn stats_reports_queue_and_worker_shape() {
        let handle = serve(ServeOptions {
            workers: 3,
            ..ServeOptions::default()
        })
        .expect("binds");
        let (mut r, mut w) = connect(&handle);
        let resp = roundtrip(&mut r, &mut w, r#"{"cmd":"stats"}"#);
        assert!(resp.contains(r#""workers":3"#), "{resp}");
        assert!(resp.contains(r#""queue_depth""#), "{resp}");
        handle.shutdown();
        handle.join();
    }
}
