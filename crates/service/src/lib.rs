//! # ea-service
//!
//! The serving layer: a long-running solve daemon in front of the four
//! BI-CRIT solvers, turning per-process `easched` invocations into a
//! concurrent request/response service — the ROADMAP's "heavy traffic"
//! step beyond the batch and front engines.
//!
//! * [`server::serve`] — binds a TCP listener and spawns the daemon: one
//!   accept thread, a bounded connection queue with backpressure, and a
//!   fixed worker pool ([`server::ServeOptions`] holds the knobs).
//! * [`protocol`] — the newline-delimited JSON wire format: `solve`,
//!   `front`, `stats`, and `shutdown` commands, answered with the
//!   `Solution`/`ParetoFront` JSON the engine already produces.
//! * [`cache`] — the sharded, single-flight LRU solution cache, keyed by
//!   [`ea_core::digest::solve_request_digest`]: semantically identical
//!   requests (same DAG up to task relabelling, same knobs) are answered
//!   by exactly one underlying solve, even when they arrive concurrently.
//!
//! ```no_run
//! use ea_service::server::{serve, ServeOptions};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let handle = serve(ServeOptions::default()).expect("binds");
//! let mut conn = std::net::TcpStream::connect(handle.addr()).expect("connects");
//! writeln!(conn, r#"{{"cmd":"solve","dag":"chain:10","model":"continuous"}}"#).unwrap();
//! let mut reply = String::new();
//! BufReader::new(conn.try_clone().unwrap()).read_line(&mut reply).unwrap();
//! assert!(reply.contains("\"energy\""));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, ShardedCache};
pub use protocol::{Request, ServiceStats};
pub use server::{serve, ServeOptions, ServerHandle};
