//! The newline-delimited JSON wire protocol of the solve daemon.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Four commands exist, selected by `cmd`:
//!
//! * `solve` — a single BI-CRIT solve, described exactly like an
//!   `easched` single-solve invocation (`dag`, `model`, `mult`, `seed`,
//!   `procs`, plus the model knobs `fmin`/`fmax`/`modes`/`delta`). The
//!   request is mapped through [`ea_engine::Scenario`] — the same
//!   request→instance path as the CLI — and answered with the
//!   [`ea_core::bicrit::Solution`] JSON.
//! * `front` — traces a whole energy/deadline Pareto front for one
//!   scenario (`points`, `tol` knobs), answered with the
//!   [`ea_core::bicrit::pareto::ParetoFront`] JSON.
//! * `stats` — cache and queue counters, per-model solve counts.
//! * `shutdown` — stop accepting, drain, exit.
//!
//! ```text
//! → {"cmd":"solve","dag":"chain:10","model":"continuous","mult":1.5,"seed":42}
//! ← {"status":"ok","cached":false,"digest":"1f0b…","solution":{…}}
//! → {"cmd":"stats"}
//! ← {"status":"ok","stats":{"hits":0,"misses":1,…}}
//! ```

use crate::cache::CacheStats;
use ea_core::speed::SpeedModel;
use ea_engine::{DagSpec, FrontScenario, Scenario};
use serde::{Deserialize, Serialize};

/// Default deadline multiplier when a `solve` request omits `mult`.
pub const DEFAULT_MULT: f64 = 1.5;
/// Default processor count when a request omits `procs`.
pub const DEFAULT_PROCS: usize = 2;
/// Default front grid size when a `front` request omits `points`.
pub const DEFAULT_FRONT_POINTS: usize = 9;
/// Default front refinement tolerance when a `front` request omits `tol`.
pub const DEFAULT_FRONT_TOL: f64 = 0.02;

/// The wire shape of a request line (all knobs optional but `cmd`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RawRequest {
    /// `"solve"`, `"front"`, `"stats"`, or `"shutdown"`.
    pub cmd: String,
    /// DAG-family spec (`chain:10`, `layered:4x3`, …); default `chain:10`.
    pub dag: Option<String>,
    /// Model name (`continuous`, `vdd`, `discrete`, `incremental`);
    /// default `continuous`.
    pub model: Option<String>,
    /// Mode list for `vdd`/`discrete`; default `[1, 1.5, 2]`.
    pub modes: Option<Vec<f64>>,
    /// Range floor for `continuous`/`incremental`; default 1.
    pub fmin: Option<f64>,
    /// Range ceiling for `continuous`/`incremental`; default 2.
    pub fmax: Option<f64>,
    /// Grid spacing for `incremental`; default 0.25.
    pub delta: Option<f64>,
    /// Deadline multiplier over the all-`f_max` makespan (`solve` only).
    pub mult: Option<f64>,
    /// DAG weight seed; default 42.
    pub seed: Option<u64>,
    /// Platform processors; default 2.
    pub procs: Option<usize>,
    /// Initial front grid size (`front` only).
    pub points: Option<usize>,
    /// Front energy tolerance (`front` only).
    pub tol: Option<f64>,
}

/// A parsed, validated request.
#[derive(Debug, Clone)]
pub enum Request {
    /// One BI-CRIT solve.
    Solve {
        /// The scenario to instantiate and solve.
        scenario: Scenario,
        /// Platform processors.
        procs: usize,
    },
    /// One Pareto-front trace.
    Front {
        /// The front scenario to instantiate and trace.
        scenario: FrontScenario,
        /// Platform processors.
        procs: usize,
        /// Initial deadline grid size (≥ 2).
        points: usize,
        /// Energy tolerance driving adaptive refinement.
        tol: f64,
    },
    /// Service counters.
    Stats,
    /// Graceful shutdown.
    Shutdown,
}

fn positive(v: f64, what: &str) -> Result<f64, String> {
    if v.is_finite() && v > 0.0 {
        Ok(v)
    } else {
        Err(format!("{what} must be finite and > 0, got {v}"))
    }
}

/// Builds the [`SpeedModel`] a request denotes: defaults filled in, then
/// the shared name→model mapping ([`ea_engine::build_speed_model`]) the
/// CLI uses too.
fn build_model(raw: &RawRequest) -> Result<SpeedModel, String> {
    let modes = raw.modes.clone().unwrap_or_else(|| vec![1.0, 1.5, 2.0]);
    ea_engine::build_speed_model(
        raw.model.as_deref().unwrap_or("continuous"),
        raw.fmin.unwrap_or(1.0),
        raw.fmax.unwrap_or(2.0),
        raw.delta.unwrap_or(0.25),
        &modes,
    )
}

/// Parses one request line. Returns a client-facing error message on
/// malformed JSON, an unknown command, or invalid knobs.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let raw: RawRequest =
        serde_json::from_str(line.trim()).map_err(|e| format!("bad request JSON: {e}"))?;
    match raw.cmd.as_str() {
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "solve" => {
            let dag = DagSpec::parse(raw.dag.as_deref().unwrap_or("chain:10"))?;
            let model = build_model(&raw)?;
            // Foreign knobs are rejected, not ignored — symmetric with
            // `front` rejecting `mult`.
            if raw.points.is_some() || raw.tol.is_some() {
                return Err("points/tol apply to front requests only".into());
            }
            let mult = positive(raw.mult.unwrap_or(DEFAULT_MULT), "mult")?;
            let procs = raw.procs.unwrap_or(DEFAULT_PROCS);
            if procs == 0 {
                return Err("procs must be ≥ 1".into());
            }
            Ok(Request::Solve {
                scenario: Scenario {
                    dag,
                    model,
                    deadline_mult: mult,
                    seed: raw.seed.unwrap_or(42),
                },
                procs,
            })
        }
        "front" => {
            let dag = DagSpec::parse(raw.dag.as_deref().unwrap_or("chain:10"))?;
            let model = build_model(&raw)?;
            let procs = raw.procs.unwrap_or(DEFAULT_PROCS);
            if procs == 0 {
                return Err("procs must be ≥ 1".into());
            }
            if raw.mult.is_some() {
                return Err("mult applies to solve requests only (a front sweeps it)".into());
            }
            let points = raw.points.unwrap_or(DEFAULT_FRONT_POINTS);
            if points < 2 {
                return Err("points must be ≥ 2".into());
            }
            let tol = positive(raw.tol.unwrap_or(DEFAULT_FRONT_TOL), "tol")?;
            Ok(Request::Front {
                scenario: FrontScenario {
                    dag,
                    model,
                    seed: raw.seed.unwrap_or(42),
                },
                procs,
                points,
                tol,
            })
        }
        "" => Err("missing cmd (expected solve|front|stats|shutdown)".into()),
        other => Err(format!(
            "unknown cmd `{other}` (expected solve|front|stats|shutdown)"
        )),
    }
}

/// Service-wide counters returned by the `stats` command.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Cache counters (hits, misses, coalesced, evictions).
    pub cache: Option<CacheStats>,
    /// Ready entries currently cached.
    pub cached_entries: u64,
    /// Fresh connections currently queued for a worker (the population
    /// bounded by the queue capacity).
    pub queue_depth: u64,
    /// Idle keep-alive connections parked between requests (not counted
    /// against the queue capacity).
    pub parked_connections: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Connections turned away because the queue was full.
    pub rejected: u64,
    /// Request lines answered (any command).
    pub requests: u64,
    /// Underlying CONTINUOUS solves actually run (cache misses only).
    pub solves_continuous: u64,
    /// Underlying DISCRETE solves actually run.
    pub solves_discrete: u64,
    /// Underlying VDD-HOPPING solves actually run.
    pub solves_vdd_hopping: u64,
    /// Underlying INCREMENTAL solves actually run.
    pub solves_incremental: u64,
    /// Underlying front traces actually run.
    pub front_traces: u64,
    /// True once a shutdown request has been accepted.
    pub shutting_down: bool,
    /// Worker threads in the pool.
    pub workers: u64,
}

impl ServiceStats {
    /// Total underlying solves across the four models (front traces not
    /// included).
    pub fn total_solves(&self) -> u64 {
        self.solves_continuous
            + self.solves_discrete
            + self.solves_vdd_hopping
            + self.solves_incremental
    }
}

/// Renders the error response for one request line.
pub fn error_line(msg: &str) -> String {
    #[derive(Serialize)]
    struct Err<'a> {
        status: &'a str,
        error: &'a str,
    }
    serde_json::to_string(&Err {
        status: "error",
        error: msg,
    })
    .expect("error serialises")
}

/// Renders a successful payload under `key`: `{"status":"ok", key: …}`.
/// Used by `stats` and `shutdown`, whose envelopes carry no cache fields.
pub fn ok_line<T: Serialize>(key: &str, payload: &T) -> String {
    let entries = vec![
        ("status".to_string(), serde::Content::Str("ok".into())),
        (key.to_string(), payload.to_content()),
    ];
    serde_json::to_string(&serde::Content::Map(entries)).expect("response serialises")
}

/// Renders a cache-answered payload under `key` with the full envelope:
/// `{"status":"ok","cached":…,"digest":"…", key: …}`.
pub fn cached_line<T: Serialize>(key: &str, digest: u64, cached: bool, payload: &T) -> String {
    let entries = vec![
        ("status".to_string(), serde::Content::Str("ok".into())),
        ("cached".to_string(), serde::Content::Bool(cached)),
        (
            "digest".to_string(),
            serde::Content::Str(format!("{digest:016x}")),
        ),
        (key.to_string(), payload.to_content()),
    ];
    serde_json::to_string(&serde::Content::Map(entries)).expect("response serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_solve() {
        let req = parse_request(r#"{"cmd":"solve"}"#).expect("valid");
        let Request::Solve { scenario, procs } = req else {
            panic!("not a solve")
        };
        assert_eq!(scenario.dag.to_string(), "chain:10");
        assert_eq!(scenario.model.name(), "continuous");
        assert_eq!(scenario.seed, 42);
        assert_eq!(procs, DEFAULT_PROCS);
    }

    #[test]
    fn parses_full_solve() {
        let req = parse_request(
            r#"{"cmd":"solve","dag":"layered:3x2","model":"vdd","modes":[1,2],"mult":1.3,"seed":7,"procs":3}"#,
        )
        .expect("valid");
        let Request::Solve { scenario, procs } = req else {
            panic!("not a solve")
        };
        assert_eq!(scenario.dag.to_string(), "layered:3x2");
        assert_eq!(scenario.model, SpeedModel::vdd_hopping(vec![1.0, 2.0]));
        assert_eq!(scenario.deadline_mult, 1.3);
        assert_eq!((scenario.seed, procs), (7, 3));
    }

    #[test]
    fn parses_front_and_controls() {
        let req = parse_request(r#"{"cmd":"front","model":"discrete","points":5,"tol":0.05}"#)
            .expect("valid");
        let Request::Front { points, tol, .. } = req else {
            panic!("not a front")
        };
        assert_eq!(points, 5);
        assert_eq!(tol, 0.05);
        assert!(matches!(
            parse_request(r#"{"cmd":"stats"}"#),
            Ok(Request::Stats)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("not json", "bad request JSON"),
            (r#"{"cmd":"dance"}"#, "unknown cmd"),
            (r#"{"cmd":"solve","dag":"ring:5"}"#, "unknown dag kind"),
            (r#"{"cmd":"solve","model":"warp"}"#, "unknown model"),
            (r#"{"cmd":"solve","mult":-1}"#, "mult"),
            (r#"{"cmd":"solve","procs":0}"#, "procs"),
            (r#"{"cmd":"solve","model":"vdd","modes":[]}"#, "modes"),
            (r#"{"cmd":"front","points":1}"#, "points"),
            (r#"{"cmd":"front","mult":1.5}"#, "mult applies to solve"),
            (r#"{"cmd":"solve","points":5}"#, "points/tol apply to front"),
            (r#"{"cmd":"solve","tol":0.1}"#, "points/tol apply to front"),
            (r#"{"cmd":"front","tol":0}"#, "tol"),
            (r#"{}"#, "missing field `cmd`"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "`{line}` → `{err}`");
        }
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let line = cached_line("solution", 0xabcd, true, &42u64);
        assert!(!line.contains('\n'));
        assert!(line.contains(r#""status":"ok""#), "{line}");
        assert!(line.contains(r#""cached":true"#), "{line}");
        assert!(line.contains("000000000000abcd"), "{line}");
        let plain = ok_line("stats", &7u64);
        assert!(plain.contains(r#""stats":7"#), "{plain}");
        assert!(!plain.contains("cached"), "{plain}");
        let err = error_line("nope");
        assert!(err.contains(r#""error":"nope""#), "{err}");
    }
}
