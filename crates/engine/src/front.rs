//! Batch Pareto-front tracing: whole energy/deadline trade-off curves
//! over scenario grids, rayon-parallel, with instance caching and
//! duplicate-scenario coalescing.

use crate::scenario::DagSpec;
use ea_core::bicrit::pareto::{trace_front, FrontOptions, ParetoFront};
use ea_core::error::CoreError;
use ea_core::instance::Instance;
use ea_core::platform::Platform;
use ea_core::speed::SpeedModel;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// One front-tracing job: which DAG family, under which speed model,
/// with which random seed. Unlike [`crate::Scenario`] there is no
/// deadline multiplier — a front covers the whole deadline axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontScenario {
    /// The DAG family to instantiate.
    pub dag: DagSpec,
    /// The speed model to trace under.
    pub model: SpeedModel,
    /// Seed for the random DAG weights.
    pub seed: u64,
}

impl FrontScenario {
    /// The cartesian product `specs × models × seeds`, in deterministic
    /// row-major order.
    pub fn grid(specs: &[DagSpec], models: &[SpeedModel], seeds: &[u64]) -> Vec<FrontScenario> {
        let mut out = Vec::with_capacity(specs.len() * models.len() * seeds.len());
        for spec in specs {
            for model in models {
                for &seed in seeds {
                    out.push(FrontScenario {
                        dag: spec.clone(),
                        model: model.clone(),
                        seed,
                    });
                }
            }
        }
        out
    }

    /// A short human-readable label (`chain:10 discrete seed 3`).
    pub fn label(&self) -> String {
        format!("{} {} seed {}", self.dag, self.model.name(), self.seed)
    }

    /// The instance-cache key: scenarios sharing DAG family, seed,
    /// processor count, and mapping reference speed (`f_max`) reduce to
    /// the *same* mapped instance, so the DAG build + list-scheduling +
    /// augmented-DAG work is done once per key.
    fn instance_key(&self, procs: usize) -> (String, u64, usize, u64) {
        (
            self.dag.to_string(),
            self.seed,
            procs,
            self.model.fmax().to_bits(),
        )
    }

    /// Materialises the mapped [`Instance`] (the deadline is a
    /// placeholder — [`trace_front`] derives its own deadline range).
    pub fn instantiate(&self, procs: usize) -> Result<Instance, CoreError> {
        if procs == 0 {
            return Err(CoreError::Infeasible("need at least one processor".into()));
        }
        let fmax = self.model.fmax();
        let dag = self.dag.build(self.seed);
        Instance::mapped_by_list_scheduling(dag, Platform::new(procs), fmax, f64::MAX)
    }
}

/// Knobs of a front batch.
#[derive(Debug, Clone)]
pub struct FrontBatchOptions {
    /// Processors of the platform every scenario is mapped onto
    /// (0 is rejected per scenario).
    pub procs: usize,
    /// Front-tracing options handed to [`trace_front`] unchanged.
    pub front: FrontOptions,
}

/// Defaults matching [`crate::BatchOptions`]: 2 processors, default
/// front options.
impl Default for FrontBatchOptions {
    fn default() -> Self {
        FrontBatchOptions {
            procs: 2,
            front: FrontOptions::default(),
        }
    }
}

impl FrontBatchOptions {
    /// Alias for [`FrontBatchOptions::default`].
    pub fn new() -> Self {
        Self::default()
    }
}

/// Outcome of one front scenario: the traced front, or the failure
/// reason.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontResult {
    /// The scenario traced.
    pub scenario: FrontScenario,
    /// Task count of the materialised DAG (0 when instantiation failed).
    pub n_tasks: usize,
    /// The traced front, when tracing succeeded.
    pub front: Option<ParetoFront>,
    /// Wall-clock milliseconds spent on this scenario (0 for coalesced
    /// duplicates).
    pub trace_ms: f64,
    /// The error rendering, when tracing failed.
    pub error: Option<String>,
    /// Debug id of the OS thread that traced this scenario.
    pub worker: String,
    /// True if this result was copied from an identical scenario earlier
    /// in the batch instead of re-traced.
    pub coalesced: bool,
}

impl FrontResult {
    /// True if the front was traced.
    pub fn traced(&self) -> bool {
        self.error.is_none()
    }
}

/// The report of a front batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontReport {
    /// Scenarios requested.
    pub scenarios: usize,
    /// Scenarios whose front traced.
    pub traced: usize,
    /// Scenarios that failed.
    pub failed: usize,
    /// Scenarios answered from the coalescing cache.
    pub coalesced: usize,
    /// Wall-clock milliseconds of the whole batch.
    pub wall_ms: f64,
    /// Per-scenario outcomes, in input order.
    pub results: Vec<FrontResult>,
}

impl FrontReport {
    /// Pretty-printed JSON rendering of the report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// CSV rendering of all traced front points:
    /// `dag,model,seed,deadline,energy,lower_bound,source` — one row per
    /// point, ready for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("dag,model,seed,deadline,energy,lower_bound,source\n");
        for r in &self.results {
            let Some(front) = &r.front else { continue };
            for p in &front.points {
                let lb = p.lower_bound.map(|v| format!("{v:.6}")).unwrap_or_default();
                out.push_str(&format!(
                    "{},{},{},{:.6},{:.6},{},{:?}\n",
                    r.scenario.dag,
                    r.scenario.model.name(),
                    r.scenario.seed,
                    p.deadline,
                    p.energy,
                    lb,
                    p.source
                ));
            }
        }
        out
    }
}

/// Mapped-instance cache shared by a front batch, keyed by
/// [`FrontScenario::instance_key`].
type InstanceCache = Mutex<HashMap<(String, u64, usize, u64), Instance>>;

fn trace_one(
    scenario: &FrontScenario,
    opts: &FrontBatchOptions,
    cache: &InstanceCache,
) -> FrontResult {
    let t0 = Instant::now();
    let mut out = FrontResult {
        scenario: scenario.clone(),
        n_tasks: 0,
        front: None,
        trace_ms: 0.0,
        error: None,
        worker: format!("{:?}", std::thread::current().id()),
        coalesced: false,
    };
    let key = scenario.instance_key(opts.procs);
    // Instantiate under the lock: building an instance is milliseconds
    // next to tracing its front, and an atomic check-and-build is what
    // makes "work is done once per key" hold when parallel workers hit
    // the same key simultaneously.
    let inst = {
        let mut cache = cache.lock().expect("cache lock");
        match cache.get(&key) {
            Some(i) => Ok(i.clone()),
            None => scenario.instantiate(opts.procs).inspect(|i| {
                cache.insert(key, i.clone());
            }),
        }
    };
    let inst = match inst {
        Ok(i) => i,
        Err(e) => {
            out.error = Some(e.to_string());
            out.trace_ms = t0.elapsed().as_secs_f64() * 1e3;
            return out;
        }
    };
    out.n_tasks = inst.n_tasks();
    match trace_front(&inst, &scenario.model, &opts.front) {
        Ok(front) => out.front = Some(front),
        Err(e) => out.error = Some(e.to_string()),
    }
    out.trace_ms = t0.elapsed().as_secs_f64() * 1e3;
    out
}

/// Traces every scenario's front in parallel (rayon), coalescing
/// duplicate scenarios (a grid whose deadline multipliers were dropped
/// often repeats (dag, model, seed) triples) and caching mapped
/// instances per (dag, seed, procs, `f_max`) so repeated reductions are
/// skipped. Results keep the input order.
pub fn run_front(scenarios: &[FrontScenario], opts: &FrontBatchOptions) -> FrontReport {
    let t0 = Instant::now();
    let n = scenarios.len();

    // Coalesce exact duplicates: trace the first occurrence, copy the rest.
    let mut first_of: HashMap<String, usize> = HashMap::new();
    let mut dup_of: Vec<Option<usize>> = vec![None; n];
    let mut unique: Vec<usize> = Vec::with_capacity(n);
    for (i, s) in scenarios.iter().enumerate() {
        let key = format!("{:?}", s);
        match first_of.get(&key) {
            Some(&j) => dup_of[i] = Some(j),
            None => {
                first_of.insert(key, i);
                unique.push(i);
            }
        }
    }

    // Shared instance cache across the whole batch.
    let cache: InstanceCache = Mutex::new(HashMap::new());

    let traced: Vec<FrontResult> = unique
        .iter()
        .map(|&i| scenarios[i].clone())
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|s| trace_one(&s, opts, &cache))
        .collect();
    let mut results: Vec<Option<FrontResult>> = vec![None; n];
    for (&slot, r) in unique.iter().zip(traced) {
        results[slot] = Some(r);
    }
    for i in 0..n {
        if let Some(j) = dup_of[i] {
            let mut r = results[j].clone().expect("unique traced first");
            r.scenario = scenarios[i].clone();
            r.coalesced = true;
            r.trace_ms = 0.0;
            results[i] = Some(r);
        }
    }
    let results: Vec<FrontResult> = results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect();
    let traced_n = results.iter().filter(|r| r.traced()).count();
    let coalesced = results.iter().filter(|r| r.coalesced).count();
    FrontReport {
        scenarios: n,
        traced: traced_n,
        failed: n - traced_n,
        coalesced,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> FrontBatchOptions {
        let mut o = FrontBatchOptions::new();
        o.front = FrontOptions::default()
            .with_initial_points(5)
            .with_max_points(8);
        o
    }

    #[test]
    fn front_batch_traces_all_models_in_order() {
        let scenarios = FrontScenario::grid(
            &[DagSpec::Chain { n: 5 }, DagSpec::Fork { branches: 3 }],
            &[
                SpeedModel::continuous(1.0, 2.0),
                SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]),
                SpeedModel::discrete(vec![1.0, 1.5, 2.0]),
                SpeedModel::incremental(1.0, 2.0, 0.25),
            ],
            &[0, 1],
        );
        let report = run_front(&scenarios, &opts());
        assert_eq!(report.scenarios, scenarios.len());
        assert_eq!(report.traced, scenarios.len(), "all fronts trace");
        for (r, s) in report.results.iter().zip(&scenarios) {
            assert_eq!(&r.scenario, s, "input order preserved");
            let front = r.front.as_ref().expect("traced");
            assert!(front.is_monotone(), "{}", s.label());
            assert!(front.points.len() >= 2);
        }
    }

    #[test]
    fn duplicate_scenarios_are_coalesced() {
        let one = FrontScenario {
            dag: DagSpec::Chain { n: 6 },
            model: SpeedModel::discrete(vec![1.0, 2.0]),
            seed: 3,
        };
        let scenarios = vec![one.clone(), one.clone(), one];
        let report = run_front(&scenarios, &opts());
        assert_eq!(report.coalesced, 2);
        let energies: Vec<Vec<u64>> = report
            .results
            .iter()
            .map(|r| {
                r.front
                    .as_ref()
                    .expect("traced")
                    .points
                    .iter()
                    .map(|p| p.energy.to_bits())
                    .collect()
            })
            .collect();
        assert_eq!(energies[0], energies[1]);
        assert_eq!(energies[0], energies[2]);
        assert!(report.results[1].coalesced && report.results[2].coalesced);
        assert!(!report.results[0].coalesced);
    }

    #[test]
    fn instance_cache_is_shared_across_models_with_equal_fmax() {
        // Same dag/seed/procs and fmax = 2.0 under two models: the second
        // scenario must reuse the cached instance (observable only through
        // consistency here; the cache itself is internal).
        let scenarios = vec![
            FrontScenario {
                dag: DagSpec::Chain { n: 6 },
                model: SpeedModel::continuous(1.0, 2.0),
                seed: 5,
            },
            FrontScenario {
                dag: DagSpec::Chain { n: 6 },
                model: SpeedModel::discrete(vec![1.0, 2.0]),
                seed: 5,
            },
        ];
        let report = run_front(&scenarios, &opts());
        assert_eq!(report.traced, 2);
        assert_eq!(report.results[0].n_tasks, report.results[1].n_tasks);
    }

    #[test]
    fn failures_are_reported_not_fatal() {
        let scenarios = vec![FrontScenario {
            dag: DagSpec::Chain { n: 4 },
            model: SpeedModel::continuous(1.0, 2.0),
            seed: 0,
        }];
        let mut o = opts();
        o.procs = 0; // rejected per scenario
        let report = run_front(&scenarios, &o);
        assert_eq!(report.failed, 1);
        assert!(report.results[0].error.is_some());
    }

    #[test]
    fn report_serialises_to_json_and_csv() {
        let scenarios = vec![FrontScenario {
            dag: DagSpec::Chain { n: 4 },
            model: SpeedModel::vdd_hopping(vec![1.0, 2.0]),
            seed: 1,
        }];
        let report = run_front(&scenarios, &opts());
        let json = report.to_json();
        let back: FrontReport = serde_json::from_str(&json).expect("roundtrips");
        assert_eq!(back.scenarios, report.scenarios);
        let csv = report.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("dag,model,seed,deadline,energy,lower_bound,source")
        );
        let first = lines.next().expect("at least one point row");
        assert!(first.starts_with("chain:4,vdd-hopping,1,"), "{first}");
    }
}
