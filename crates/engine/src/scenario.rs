//! Scenario grids: DAG-family specifications and their cartesian product
//! with speed models, deadline multipliers, and seeds.

use ea_core::error::CoreError;
use ea_core::instance::Instance;
use ea_core::platform::Platform;
use ea_core::speed::SpeedModel;
use ea_taskgraph::{generators, Dag};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A DAG-family specification, parseable from the `kind:param` strings the
/// `easched` CLI uses (`chain:12`, `fork:8`, `layered:4x3`, `stencil:5x5`,
/// `gauss:4`).
///
/// Random families (`chain`, `fork`, `layered`) draw weights in
/// `[0.5, 2.5)` from the scenario seed; the structured kernels (`stencil`,
/// `gauss`) use unit weights, as in the experiment harness.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DagSpec {
    /// A linear chain of `n` tasks.
    Chain {
        /// Number of tasks.
        n: usize,
    },
    /// A source plus `branches` independent branch tasks.
    Fork {
        /// Number of branches.
        branches: usize,
    },
    /// A random layered DAG (`layers` × `width`, edge density 0.35).
    Layered {
        /// Number of layers.
        layers: usize,
        /// Tasks per layer.
        width: usize,
    },
    /// A 2-D stencil wavefront (`rows` × `cols`).
    Stencil {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// A tiled Gaussian-elimination kernel DAG on `tiles` tiles.
    Gauss {
        /// Tile count `b` (the DAG has `O(b²)` tasks).
        tiles: usize,
    },
}

impl DagSpec {
    /// Parses a `kind:param` specification; returns a usage message on
    /// malformed or non-positive parameters.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, param) = spec
            .split_once(':')
            .ok_or_else(|| format!("dag spec `{spec}` needs kind:param"))?;
        let positive = |s: &str, what: &str| -> Result<usize, String> {
            let v: usize = s.trim().parse().map_err(|e| format!("{what}: {e}"))?;
            if v == 0 {
                return Err(format!("{what} must be ≥ 1"));
            }
            Ok(v)
        };
        let pair = |p: &str, what: &str| -> Result<(usize, usize), String> {
            let (a, b) = p
                .split_once('x')
                .ok_or_else(|| format!("{what} needs AxB, got `{p}`"))?;
            Ok((positive(a, what)?, positive(b, what)?))
        };
        match kind {
            "chain" => Ok(DagSpec::Chain {
                n: positive(param, "chain size")?,
            }),
            "fork" => Ok(DagSpec::Fork {
                branches: positive(param, "fork size")?,
            }),
            "layered" => {
                let (layers, width) = pair(param, "layered dims")?;
                Ok(DagSpec::Layered { layers, width })
            }
            "stencil" => {
                let (rows, cols) = pair(param, "stencil dims")?;
                Ok(DagSpec::Stencil { rows, cols })
            }
            "gauss" => Ok(DagSpec::Gauss {
                tiles: positive(param, "gauss tiles")?,
            }),
            other => Err(format!(
                "unknown dag kind `{other}` (expected chain|fork|layered|stencil|gauss)"
            )),
        }
    }

    /// Materialises the DAG for a given seed.
    pub fn build(&self, seed: u64) -> Dag {
        match *self {
            DagSpec::Chain { n } => {
                generators::chain(&generators::random_weights(n, 0.5, 2.5, seed))
            }
            DagSpec::Fork { branches } => {
                generators::fork(1.5, &generators::random_weights(branches, 0.5, 2.5, seed))
            }
            DagSpec::Layered { layers, width } => {
                generators::random_layered(layers, width, 0.35, 0.5, 2.5, seed)
            }
            DagSpec::Stencil { rows, cols } => generators::stencil_wavefront(rows, cols, 1.0),
            DagSpec::Gauss { tiles } => generators::gaussian_elimination(tiles, 1.0),
        }
    }
}

impl fmt::Display for DagSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DagSpec::Chain { n } => write!(f, "chain:{n}"),
            DagSpec::Fork { branches } => write!(f, "fork:{branches}"),
            DagSpec::Layered { layers, width } => write!(f, "layered:{layers}x{width}"),
            DagSpec::Stencil { rows, cols } => write!(f, "stencil:{rows}x{cols}"),
            DagSpec::Gauss { tiles } => write!(f, "gauss:{tiles}"),
        }
    }
}

impl FromStr for DagSpec {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        DagSpec::parse(s)
    }
}

/// Builds the [`SpeedModel`] a model-name string denotes — the one place
/// a model *name* is interpreted, shared by the `easched` CLI
/// (`--model`/`--models`) and the `ea-service` wire protocol so the two
/// surfaces cannot drift apart.
///
/// `continuous` and `incremental` consume the `fmin`/`fmax` (and
/// `delta`) knobs; `vdd` (alias `vdd-hopping`) and `discrete` consume
/// `modes`. Knobs irrelevant to the named model are ignored.
pub fn build_speed_model(
    name: &str,
    fmin: f64,
    fmax: f64,
    delta: f64,
    modes: &[f64],
) -> Result<SpeedModel, String> {
    let positive = |v: f64, what: &str| -> Result<(), String> {
        if v.is_finite() && v > 0.0 {
            Ok(())
        } else {
            Err(format!("{what} must be finite and > 0, got {v}"))
        }
    };
    let range = || -> Result<(), String> {
        positive(fmin, "fmin")?;
        positive(fmax, "fmax")?;
        if fmin > fmax {
            return Err(format!("fmin {fmin} exceeds fmax {fmax}"));
        }
        Ok(())
    };
    let checked_modes = || -> Result<Vec<f64>, String> {
        if modes.is_empty() || modes.iter().any(|&m| !(m.is_finite() && m > 0.0)) {
            return Err("modes must be a non-empty list of positive finite speeds".into());
        }
        Ok(modes.to_vec())
    };
    match name {
        "continuous" => {
            range()?;
            Ok(SpeedModel::continuous(fmin, fmax))
        }
        "vdd" | "vdd-hopping" => Ok(SpeedModel::vdd_hopping(checked_modes()?)),
        "discrete" => Ok(SpeedModel::discrete(checked_modes()?)),
        "incremental" => {
            range()?;
            positive(delta, "delta")?;
            Ok(SpeedModel::incremental(fmin, fmax, delta))
        }
        other => Err(format!("unknown model {other}")),
    }
}

/// One point of a scenario grid: which DAG family, under which speed
/// model, how tight a deadline, and which random seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The DAG family to instantiate.
    pub dag: DagSpec,
    /// The speed model to solve under.
    pub model: SpeedModel,
    /// Deadline as a multiple of the all-`f_max` makespan (`> 1` leaves
    /// slack for DVFS; `≤ 1` is at or beyond the feasibility edge).
    pub deadline_mult: f64,
    /// Seed for the random DAG weights.
    pub seed: u64,
}

impl Scenario {
    /// The cartesian product `specs × models × mults × seeds`, in
    /// deterministic row-major order.
    pub fn grid(
        specs: &[DagSpec],
        models: &[SpeedModel],
        mults: &[f64],
        seeds: &[u64],
    ) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(specs.len() * models.len() * mults.len() * seeds.len());
        for spec in specs {
            for model in models {
                for &deadline_mult in mults {
                    for &seed in seeds {
                        out.push(Scenario {
                            dag: spec.clone(),
                            model: model.clone(),
                            deadline_mult,
                            seed,
                        });
                    }
                }
            }
        }
        out
    }

    /// A short human-readable label (`chain:10 ×1.5 seed 3`).
    pub fn label(&self) -> String {
        format!("{} ×{} seed {}", self.dag, self.deadline_mult, self.seed)
    }

    /// Builds the mapped [`Instance`]: materialise the DAG, map it with
    /// the critical-path list scheduler at the model's `f_max`, and set
    /// the deadline to `deadline_mult ×` the all-`f_max` makespan.
    pub fn instantiate(&self, procs: usize) -> Result<Instance, CoreError> {
        if procs == 0 {
            return Err(CoreError::Infeasible("need at least one processor".into()));
        }
        if !(self.deadline_mult.is_finite() && self.deadline_mult > 0.0) {
            return Err(CoreError::Infeasible(format!(
                "bad deadline multiplier {}",
                self.deadline_mult
            )));
        }
        let fmax = self.model.fmax();
        let dag = self.dag.build(self.seed);
        let inst = Instance::mapped_by_list_scheduling(dag, Platform::new(procs), fmax, f64::MAX)?;
        let deadline = self.deadline_mult * inst.makespan_at_uniform_speed(fmax);
        inst.with_deadline(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_through_display() {
        for s in [
            "chain:12",
            "fork:8",
            "layered:4x3",
            "stencil:5x5",
            "gauss:4",
        ] {
            let spec = DagSpec::parse(s).expect("valid spec");
            assert_eq!(spec.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for s in [
            "chain",
            "chain:0",
            "chain:-3",
            "layered:4",
            "layered:0x3",
            "ring:5",
        ] {
            assert!(DagSpec::parse(s).is_err(), "`{s}` should be rejected");
        }
    }

    #[test]
    fn grid_is_the_full_product() {
        let specs = [DagSpec::Chain { n: 4 }, DagSpec::Fork { branches: 3 }];
        let models = [
            SpeedModel::continuous(1.0, 2.0),
            SpeedModel::discrete(vec![1.0, 2.0]),
        ];
        let g = Scenario::grid(&specs, &models, &[1.2, 1.6, 2.0], &[0, 1]);
        assert_eq!(g.len(), 2 * 2 * 3 * 2);
        // Deterministic order: first block is the first spec × first model.
        assert_eq!(g[0].dag, specs[0]);
        assert_eq!(g[0].model, models[0]);
    }

    #[test]
    fn instantiate_sets_deadline_from_mult() {
        let sc = Scenario {
            dag: DagSpec::Chain { n: 5 },
            model: SpeedModel::continuous(1.0, 2.0),
            deadline_mult: 1.5,
            seed: 7,
        };
        let inst = sc.instantiate(2).expect("valid");
        let base = inst.makespan_at_uniform_speed(2.0);
        assert!((inst.deadline - 1.5 * base).abs() <= 1e-9 * inst.deadline);
    }

    #[test]
    fn instantiate_rejects_bad_parameters() {
        let sc = Scenario {
            dag: DagSpec::Chain { n: 3 },
            model: SpeedModel::continuous(1.0, 2.0),
            deadline_mult: f64::NAN,
            seed: 0,
        };
        assert!(sc.instantiate(2).is_err());
        let sc2 = Scenario {
            deadline_mult: 1.5,
            ..sc
        };
        assert!(sc2.instantiate(0).is_err());
    }

    #[test]
    fn scenario_serialises_and_roundtrips() {
        let sc = Scenario {
            dag: DagSpec::Layered {
                layers: 4,
                width: 3,
            },
            model: SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]),
            deadline_mult: 1.4,
            seed: 11,
        };
        let json = serde_json::to_string(&sc).expect("serialises");
        let back: Scenario = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, sc);
    }
}
