//! # ea-engine
//!
//! The scenario engine: evaluate the BI-CRIT solvers over *grids* of
//! workloads instead of one instance at a time. This is the batch layer
//! the ROADMAP's production north star builds on — many (DAG family ×
//! speed model × deadline tightness × seed) combinations solved in
//! parallel, each optionally fault-injected by `ea-sim`, aggregated into
//! a serialisable report.
//!
//! * [`DagSpec`] — a parseable DAG-family specification (`chain:12`,
//!   `layered:4x3`, …) shared with the `easched` CLI.
//! * [`Scenario`] — one grid point; [`Scenario::grid`] builds the
//!   cartesian product.
//! * [`run_batch`] — evaluates scenarios in parallel (rayon) through
//!   [`ea_core::bicrit::solve`], returning a [`BatchReport`] with
//!   per-scenario [`ScenarioResult`]s and JSON serialisation.
//! * [`run_front`] — traces whole energy/deadline Pareto fronts
//!   ([`ea_core::bicrit::pareto`]) over a [`FrontScenario`] grid, with
//!   duplicate coalescing and a shared mapped-instance cache, emitting a
//!   [`FrontReport`] (JSON or CSV).
//!
//! ```no_run
//! use ea_engine::{run_batch, BatchOptions, DagSpec, Scenario};
//! use ea_core::speed::SpeedModel;
//!
//! let scenarios = Scenario::grid(
//!     &[DagSpec::parse("chain:10").unwrap(), DagSpec::parse("fork:8").unwrap()],
//!     &[SpeedModel::continuous(1.0, 2.0), SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0])],
//!     &[1.2, 1.6],
//!     &[0, 1, 2],
//! );
//! let report = run_batch(&scenarios, &BatchOptions::default());
//! println!("{}", report.to_json());
//! ```

mod batch;
mod front;
mod scenario;

pub use batch::{run_batch, BatchOptions, BatchReport, FaultStats, ScenarioResult};
pub use front::{run_front, FrontBatchOptions, FrontReport, FrontResult, FrontScenario};
pub use scenario::{build_speed_model, DagSpec, Scenario};
