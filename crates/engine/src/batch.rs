//! Parallel batch evaluation of scenario grids, with optional Monte-Carlo
//! fault injection and a JSON-serialisable report.

use crate::scenario::Scenario;
use ea_core::bicrit::{self, SolveOptions};
use ea_core::reliability::ReliabilityModel;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Knobs of a batch run.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Processors of the platform every scenario is mapped onto.
    pub procs: usize,
    /// Solver options handed to [`bicrit::solve`] unchanged.
    pub solve: SolveOptions,
    /// When set, each solved scenario is fault-injected under this
    /// reliability model by `ea-sim`; `None` skips the Monte-Carlo stage.
    pub reliability: Option<ReliabilityModel>,
    /// Monte-Carlo runs per scenario (when `reliability` is set).
    pub mc_runs: usize,
    /// Base seed of the Monte-Carlo campaigns (offset per scenario).
    pub mc_seed: u64,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            procs: 2,
            solve: SolveOptions::default(),
            reliability: None,
            mc_runs: 1_000,
            mc_seed: 2024,
        }
    }
}

/// Aggregated Monte-Carlo fault statistics of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Monte-Carlo runs performed.
    pub runs: usize,
    /// Fraction of runs where every task succeeded.
    pub app_success_rate: f64,
    /// Mean energy actually consumed across runs.
    pub mean_energy: f64,
    /// Mean observed makespan.
    pub mean_makespan: f64,
    /// Worst per-task empirical failure rate.
    pub worst_task_failure_rate: f64,
    /// Mean number of injected faults per run.
    pub mean_faults: f64,
}

/// Outcome of one scenario: the solved metrics, or the failure reason.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The scenario evaluated.
    pub scenario: Scenario,
    /// Task count of the materialised DAG (0 when instantiation failed).
    pub n_tasks: usize,
    /// The absolute deadline derived from the multiplier (`None` when
    /// instantiation failed).
    pub deadline: Option<f64>,
    /// Energy of the solution, when solved.
    pub energy: Option<f64>,
    /// Achieved worst-case makespan, when solved.
    pub makespan: Option<f64>,
    /// Certified lower bound, when the solver produces one.
    pub lower_bound: Option<f64>,
    /// Wall-clock milliseconds spent solving this scenario.
    pub solve_ms: f64,
    /// Monte-Carlo fault statistics (when enabled and solved).
    pub faults: Option<FaultStats>,
    /// The error rendering, when the scenario failed (infeasible deadline,
    /// bad parameters, …).
    pub error: Option<String>,
    /// Debug id of the OS thread that evaluated this scenario — makes the
    /// rayon fan-out of a batch observable in the report.
    pub worker: String,
}

impl ScenarioResult {
    /// True if the scenario solved.
    pub fn solved(&self) -> bool {
        self.error.is_none()
    }
}

/// The report of a batch run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchReport {
    /// Scenarios evaluated.
    pub scenarios: usize,
    /// Scenarios that solved.
    pub solved: usize,
    /// Scenarios that failed (typically: infeasible deadlines).
    pub infeasible: usize,
    /// Sum of the solved scenarios' energies.
    pub total_energy: f64,
    /// Wall-clock milliseconds of the whole batch.
    pub wall_ms: f64,
    /// Per-scenario outcomes, in input order.
    pub results: Vec<ScenarioResult>,
}

impl BatchReport {
    /// Pretty-printed JSON rendering of the report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }
}

/// Evaluates one scenario: instantiate, solve through the unified
/// dispatcher, optionally fault-inject the resulting schedule.
pub fn run_scenario(scenario: &Scenario, opts: &BatchOptions) -> ScenarioResult {
    let t0 = Instant::now();
    let mut out = ScenarioResult {
        scenario: scenario.clone(),
        n_tasks: 0,
        deadline: None,
        energy: None,
        makespan: None,
        lower_bound: None,
        solve_ms: 0.0,
        faults: None,
        error: None,
        worker: format!("{:?}", std::thread::current().id()),
    };
    let inst = match scenario.instantiate(opts.procs) {
        Ok(i) => i,
        Err(e) => {
            out.error = Some(e.to_string());
            out.solve_ms = t0.elapsed().as_secs_f64() * 1e3;
            return out;
        }
    };
    out.n_tasks = inst.n_tasks();
    out.deadline = Some(inst.deadline);
    match bicrit::solve(&inst, &scenario.model, &opts.solve) {
        Ok(sol) => {
            out.energy = Some(sol.energy);
            out.makespan = Some(sol.makespan);
            out.lower_bound = sol.lower_bound;
            if let Some(rel) = &opts.reliability {
                let sched = sol.to_schedule();
                let seed = opts.mc_seed.wrapping_add(scenario.seed.wrapping_mul(7919));
                let stats = ea_sim::run_monte_carlo(
                    &inst.dag,
                    &inst.mapping,
                    &sched,
                    rel,
                    opts.mc_runs,
                    seed,
                );
                out.faults = Some(FaultStats {
                    runs: stats.runs,
                    app_success_rate: stats.app_success_rate,
                    mean_energy: stats.mean_energy,
                    mean_makespan: stats.mean_makespan,
                    worst_task_failure_rate: stats.worst_task_failure_rate(),
                    mean_faults: stats.mean_faults,
                });
            }
        }
        Err(e) => out.error = Some(e.to_string()),
    }
    out.solve_ms = t0.elapsed().as_secs_f64() * 1e3;
    out
}

/// Worker count rayon will use (`RAYON_NUM_THREADS` or the hardware
/// count) — mirrored here to stride the batch across workers.
fn worker_count() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Evaluates every scenario in parallel (rayon fans the batch out over
/// `RAYON_NUM_THREADS` workers) and aggregates a [`BatchReport`]. Results
/// keep the input order, so a batch is deterministic for fixed seeds.
///
/// Scenario grids group expensive models contiguously (the grid is
/// spec-major), and rayon hands each worker a *contiguous* chunk — so the
/// batch is dealt out in strides first, giving every worker a mix of
/// cheap and expensive scenarios, then restored to input order.
pub fn run_batch(scenarios: &[Scenario], opts: &BatchOptions) -> BatchReport {
    let t0 = Instant::now();
    let n = scenarios.len();
    let stride = worker_count().max(1);
    let order: Vec<usize> = (0..stride).flat_map(|c| (c..n).step_by(stride)).collect();
    let strided: Vec<ScenarioResult> = order
        .iter()
        .map(|&i| scenarios[i].clone())
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|s| run_scenario(&s, opts))
        .collect();
    let mut results: Vec<Option<ScenarioResult>> = vec![None; n];
    for (slot, r) in order.into_iter().zip(strided) {
        results[slot] = Some(r);
    }
    let results: Vec<ScenarioResult> = results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect();
    let solved = results.iter().filter(|r| r.solved()).count();
    let total_energy = results.iter().filter_map(|r| r.energy).sum();
    BatchReport {
        scenarios: results.len(),
        solved,
        infeasible: results.len() - solved,
        total_energy,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DagSpec;
    use ea_core::speed::SpeedModel;
    use std::sync::{Mutex, MutexGuard};

    /// `batch_fans_out_over_worker_threads` mutates `RAYON_NUM_THREADS`
    /// while every other batch test reads it (through the vendored rayon);
    /// concurrent setenv/getenv is a data race in glibc, so every test
    /// that runs a batch takes this lock first.
    fn env_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn small_grid() -> Vec<Scenario> {
        Scenario::grid(
            &[DagSpec::Chain { n: 6 }, DagSpec::Fork { branches: 4 }],
            &[
                SpeedModel::continuous(1.0, 2.0),
                SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]),
            ],
            &[1.3, 1.7],
            &[0, 1],
        )
    }

    #[test]
    fn batch_solves_the_grid_in_input_order() {
        let _env = env_lock();
        let scenarios = small_grid();
        let report = run_batch(&scenarios, &BatchOptions::default());
        assert_eq!(report.scenarios, scenarios.len());
        assert_eq!(report.solved, scenarios.len(), "loose deadlines all solve");
        for (r, s) in report.results.iter().zip(&scenarios) {
            assert_eq!(&r.scenario, s, "input order preserved");
            let ms = r.makespan.expect("solved");
            let d = r.deadline.expect("instantiated");
            assert!(ms <= d * (1.0 + 1e-6), "{}: {ms} > {d}", s.label());
        }
        assert!(report.total_energy > 0.0);
    }

    #[test]
    fn batch_is_deterministic() {
        let _env = env_lock();
        let scenarios = small_grid();
        let opts = BatchOptions::default();
        let a = run_batch(&scenarios, &opts);
        let b = run_batch(&scenarios, &opts);
        let energies =
            |r: &BatchReport| -> Vec<Option<f64>> { r.results.iter().map(|x| x.energy).collect() };
        assert_eq!(energies(&a), energies(&b));
    }

    #[test]
    fn infeasible_scenarios_are_reported_not_fatal() {
        let _env = env_lock();
        let mut scenarios = small_grid();
        scenarios.push(Scenario {
            dag: DagSpec::Chain { n: 4 },
            model: SpeedModel::continuous(1.0, 2.0),
            deadline_mult: 0.5, // below the fmax makespan: infeasible
            seed: 0,
        });
        let report = run_batch(&scenarios, &BatchOptions::default());
        assert_eq!(report.infeasible, 1);
        let bad = report.results.last().expect("present");
        assert!(!bad.solved());
        assert!(bad.error.as_deref().expect("reason").contains("infeasible"));
    }

    #[test]
    fn monte_carlo_stage_attaches_fault_stats() {
        let _env = env_lock();
        let scenarios = vec![Scenario {
            dag: DagSpec::Chain { n: 5 },
            model: SpeedModel::continuous(1.0, 2.0),
            deadline_mult: 1.5,
            seed: 3,
        }];
        let opts = BatchOptions {
            reliability: Some(ReliabilityModel::new(0.01, 3.0, 1.0, 2.0, 1.8)),
            mc_runs: 500,
            ..BatchOptions::default()
        };
        let report = run_batch(&scenarios, &opts);
        let stats = report.results[0].faults.clone().expect("MC ran");
        assert_eq!(stats.runs, 500);
        assert!(stats.app_success_rate > 0.0 && stats.app_success_rate <= 1.0);
        assert!(stats.mean_energy <= report.results[0].energy.expect("solved") * (1.0 + 1e-9));
    }

    #[test]
    fn report_serialises_to_json() {
        let _env = env_lock();
        let scenarios = vec![Scenario {
            dag: DagSpec::Chain { n: 4 },
            model: SpeedModel::discrete(vec![1.0, 2.0]),
            deadline_mult: 1.4,
            seed: 1,
        }];
        let report = run_batch(&scenarios, &BatchOptions::default());
        let json = report.to_json();
        assert!(json.contains("\"results\""), "{json}");
        let back: BatchReport = serde_json::from_str(&json).expect("roundtrips");
        assert_eq!(back.scenarios, report.scenarios);
    }

    #[test]
    fn batch_fans_out_over_worker_threads() {
        let _env = env_lock();
        // 32 scenarios with 4 workers requested: the report must show more
        // than one distinct OS thread doing the solving (wall-clock
        // speedup on multi-core hardware is anchored by e11_batch_engine).
        let scenarios = Scenario::grid(
            &[DagSpec::Chain { n: 6 }],
            &[
                SpeedModel::continuous(1.0, 2.0),
                SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]),
            ],
            &[1.3, 1.7],
            &[0, 1, 2, 3, 4, 5, 6, 7],
        );
        assert_eq!(scenarios.len(), 32);
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let report = run_batch(&scenarios, &BatchOptions::default());
        std::env::remove_var("RAYON_NUM_THREADS");
        let workers: std::collections::HashSet<&str> =
            report.results.iter().map(|r| r.worker.as_str()).collect();
        assert!(
            workers.len() > 1,
            "expected parallel fan-out, saw workers: {workers:?}"
        );
        assert_eq!(report.solved, 32);
    }

    #[test]
    fn large_batch_completes_across_models() {
        let _env = env_lock();
        // The acceptance-criteria batch shape: ≥ 32 scenarios spanning all
        // four models (the wall-clock speedup itself is anchored by the
        // e11_batch_engine criterion bench).
        let scenarios = Scenario::grid(
            &[
                DagSpec::Chain { n: 8 },
                DagSpec::Layered {
                    layers: 3,
                    width: 3,
                },
            ],
            &[
                SpeedModel::continuous(1.0, 2.0),
                SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]),
                SpeedModel::discrete(vec![1.0, 1.5, 2.0]),
                SpeedModel::incremental(1.0, 2.0, 0.25),
            ],
            &[1.4, 1.8],
            &[0, 1],
        );
        assert!(scenarios.len() >= 32);
        let report = run_batch(&scenarios, &BatchOptions::default());
        assert_eq!(report.solved, scenarios.len());
    }
}
