//! Property tests for the graph substrate: topological order, critical
//! paths, floats, SP round-trips and the equivalent-weight algebra.

use ea_taskgraph::{analysis, generators, Dag, SpTree};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Topological order puts every edge forward, on random layered DAGs.
    #[test]
    fn topo_order_is_topological(layers in 1usize..6, width in 1usize..5, seed in 0u64..10_000) {
        let g = generators::random_layered(layers, width, 0.4, 0.5, 2.0, seed);
        let order = g.topological_order();
        let mut pos = vec![0usize; g.len()];
        for (i, &t) in order.iter().enumerate() {
            pos[t] = i;
        }
        for &(s, d) in g.edges() {
            prop_assert!(pos[s] < pos[d]);
        }
    }

    /// The critical path length is the max over all sink completion times
    /// and is monotone in every duration.
    #[test]
    fn critical_path_monotone(seed in 0u64..10_000, bump in 0.1f64..2.0) {
        let g = generators::random_layered(4, 3, 0.4, 0.5, 2.0, seed);
        let base = analysis::critical_path_length(&g, g.weights());
        let t = (seed as usize) % g.len();
        let mut durs = g.weights().to_vec();
        durs[t] += bump;
        let bumped = analysis::critical_path_length(&g, &durs);
        prop_assert!(bumped >= base - 1e-12, "bumping a duration cannot shorten the CP");
        prop_assert!(bumped <= base + bump + 1e-12, "CP grows at most by the bump");
    }

    /// Critical tasks have zero float; every float is non-negative.
    #[test]
    fn floats_consistent(seed in 0u64..10_000) {
        let g = generators::random_layered(4, 3, 0.4, 0.5, 2.0, seed);
        let horizon = analysis::critical_path_length(&g, g.weights());
        let fl = analysis::total_float(&g, g.weights(), horizon);
        prop_assert!(fl.iter().all(|&f| f >= -1e-9));
        for &t in &analysis::critical_tasks(&g, g.weights()) {
            prop_assert!(fl[t].abs() <= 1e-6 * horizon.max(1.0));
        }
    }

    /// The walked critical path realises the critical-path length.
    #[test]
    fn critical_path_walk_realises_length(seed in 0u64..10_000) {
        let g = generators::random_layered(4, 3, 0.4, 0.5, 2.0, seed);
        let len = analysis::critical_path_length(&g, g.weights());
        let path = analysis::critical_path(&g, g.weights());
        let sum: f64 = path.iter().map(|&t| g.weight(t)).sum();
        prop_assert!((sum - len).abs() <= 1e-9 * len.max(1.0));
        for pair in path.windows(2) {
            prop_assert!(g.successors(pair[0]).contains(&pair[1]));
        }
    }

    /// SP trees survive the render → recognise round trip with their
    /// equivalent weight intact.
    #[test]
    fn sp_round_trip(n in 1usize..20, seed in 0u64..10_000) {
        let tree = generators::random_sp_tree(n, 0.5, 2.5, seed);
        let dag = tree.to_dag();
        let back = SpTree::from_dag(&dag).expect("rendered SP is recognisable");
        prop_assert_eq!(back.task_count(), n);
        let (a, b) = (tree.equivalent_weight(), back.equivalent_weight());
        prop_assert!((a - b).abs() <= 1e-9 * a.max(1.0));
    }

    /// Equivalent weight bounds: max(critical-path weight, per-branch
    /// balance) ≤ W ≤ total weight (series is the worst case, perfect
    /// parallelism the best).
    #[test]
    fn equivalent_weight_bounds(n in 1usize..20, seed in 0u64..10_000) {
        let tree = generators::random_sp_tree(n, 0.5, 2.5, seed);
        let dag = tree.to_dag();
        let w = tree.equivalent_weight();
        let cp = analysis::critical_path_length(&dag, dag.weights());
        let total = dag.total_weight();
        prop_assert!(w <= total * (1.0 + 1e-9), "W {} > Σw {}", w, total);
        prop_assert!(w >= cp - 1e-9, "W {} < CP {}", w, cp);
    }

    /// Transitive reduction preserves reachability.
    #[test]
    fn transitive_reduction_preserves_reachability(seed in 0u64..5_000) {
        let g = generators::erdos_dag(12, 0.3, 0.5, 2.0, seed);
        let kept = analysis::transitive_reduction(&g);
        let reduced = Dag::from_parts(g.weights().to_vec(), kept).expect("still a DAG");
        for s in 0..g.len() {
            for t in 0..g.len() {
                prop_assert_eq!(g.reaches(s, t), reduced.reaches(s, t),
                    "reachability {} -> {} changed", s, t);
            }
        }
    }

    /// Serde round trip preserves the graph.
    #[test]
    fn serde_round_trip(seed in 0u64..5_000) {
        let g = generators::random_layered(3, 3, 0.5, 0.5, 2.0, seed);
        let json = serde_json::to_string(&g).expect("serialises");
        let back: Dag = serde_json::from_str(&json).expect("deserialises");
        back.validate().expect("valid");
        prop_assert_eq!(back.edges(), g.edges());
        prop_assert_eq!(back.weights(), g.weights());
    }
}
