//! Series-parallel (SP) decomposition trees and SP recognition.
//!
//! The paper's CONTINUOUS BI-CRIT closed forms exist exactly for graph
//! families admitting a series-parallel decomposition (chains, forks, joins,
//! trees, series-parallel graphs). This module provides:
//!
//! * [`SpTree`] — an explicit decomposition: a leaf is a task, a series node
//!   executes children one after the other, a parallel node executes them
//!   concurrently.
//! * [`SpTree::to_dag`] — renders the tree as a node-weighted [`Dag`]
//!   (parallel branches joined all-to-all at series boundaries).
//! * [`SpTree::from_dag`] — recognition by classic series/parallel edge
//!   reductions on the two-terminal split graph: each task node becomes a
//!   labelled edge `v_in → v_out`; precedence edges become neutral edges.
//!   The DAG is (node-)series-parallel iff the multigraph reduces to a
//!   single source→sink edge, whose label is the decomposition tree.
//!
//! The *equivalent weight* algebra used by the closed forms lives here too:
//! `W(leaf w) = w`, `W(series) = Σ W_k`, `W(parallel) = (Σ W_k³)^{1/3}`.
//! The optimal BI-CRIT energy on an SP graph with deadline `D` is then
//! `W³ / D²` (see `ea-core::bicrit::continuous`).

use crate::graph::{Dag, DagError, TaskId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from SP recognition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpError {
    /// The DAG is not series-parallel: reductions got stuck.
    NotSeriesParallel,
    /// The DAG is empty.
    Empty,
}

impl fmt::Display for SpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpError::NotSeriesParallel => write!(f, "graph is not series-parallel"),
            SpError::Empty => write!(f, "empty graph"),
        }
    }
}

impl std::error::Error for SpError {}

/// A series-parallel decomposition tree over weighted tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpTree {
    /// A single task. `task` is the id in the originating [`Dag`] when the
    /// tree was produced by [`SpTree::from_dag`]; generator-built trees
    /// leave it `None` and [`SpTree::to_dag`] assigns DFS-order ids.
    Leaf { weight: f64, task: Option<TaskId> },
    /// Children executed one after another.
    Series(Vec<SpTree>),
    /// Children executed concurrently.
    Parallel(Vec<SpTree>),
}

impl SpTree {
    /// Leaf constructor.
    pub fn leaf(weight: f64) -> Self {
        SpTree::Leaf { weight, task: None }
    }

    /// Leaf bound to an existing task id.
    pub fn leaf_for(task: TaskId, weight: f64) -> Self {
        SpTree::Leaf {
            weight,
            task: Some(task),
        }
    }

    /// Series constructor; flattens nested series and drops empty children.
    pub fn series(children: Vec<SpTree>) -> Self {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                SpTree::Series(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            SpTree::Series(flat)
        }
    }

    /// Parallel constructor; flattens nested parallels.
    pub fn parallel(children: Vec<SpTree>) -> Self {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                SpTree::Parallel(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            SpTree::Parallel(flat)
        }
    }

    /// Number of tasks (leaves).
    pub fn task_count(&self) -> usize {
        match self {
            SpTree::Leaf { .. } => 1,
            SpTree::Series(c) | SpTree::Parallel(c) => c.iter().map(SpTree::task_count).sum(),
        }
    }

    /// The paper's equivalent-weight algebra:
    /// `W(leaf) = w`, `W(series) = Σ W`, `W(parallel) = (Σ W³)^{1/3}`.
    ///
    /// The optimal CONTINUOUS BI-CRIT energy with deadline `D` (one task per
    /// processor in each parallel branch, no `f_max` cap) is `W³ / D²`; for
    /// the fork this specialises to the paper's
    /// `E_fork = ((Σ w_i³)^{1/3} + w_0)³ / D²`.
    pub fn equivalent_weight(&self) -> f64 {
        match self {
            SpTree::Leaf { weight, .. } => *weight,
            SpTree::Series(c) => c.iter().map(SpTree::equivalent_weight).sum(),
            SpTree::Parallel(c) => c
                .iter()
                .map(|t| t.equivalent_weight().powi(3))
                .sum::<f64>()
                .cbrt(),
        }
    }

    /// Leaves in DFS (left-to-right) order as `(bound task id, weight)`.
    pub fn leaves(&self) -> Vec<(Option<TaskId>, f64)> {
        let mut out = Vec::with_capacity(self.task_count());
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<(Option<TaskId>, f64)>) {
        match self {
            SpTree::Leaf { weight, task } => out.push((*task, *weight)),
            SpTree::Series(c) | SpTree::Parallel(c) => {
                for t in c {
                    t.collect_leaves(out);
                }
            }
        }
    }

    /// Effective task id per leaf (DFS order): the bound id when present,
    /// otherwise the DFS index — the ids [`SpTree::to_dag`] assigns.
    pub fn effective_ids(&self) -> Vec<TaskId> {
        self.leaves()
            .iter()
            .enumerate()
            .map(|(i, (t, _))| t.unwrap_or(i))
            .collect()
    }

    /// Renders the decomposition as a node-weighted [`Dag`]. Leaf `k` in
    /// DFS order becomes task `k`; series boundaries join all sinks of the
    /// left part to all sources of the right part.
    pub fn to_dag(&self) -> Dag {
        let mut g = Dag::new();
        self.render(&mut g)
            .expect("SP rendering is acyclic by construction");
        g
    }

    /// Renders into `g`, returning (sources, sinks) of the rendered subgraph.
    fn render(&self, g: &mut Dag) -> Result<(Vec<TaskId>, Vec<TaskId>), DagError> {
        match self {
            SpTree::Leaf { weight, .. } => {
                let t = g.add_task(*weight)?;
                Ok((vec![t], vec![t]))
            }
            SpTree::Series(children) => {
                let mut first_sources: Option<Vec<TaskId>> = None;
                let mut prev_sinks: Vec<TaskId> = Vec::new();
                for c in children {
                    let (srcs, sinks) = c.render(g)?;
                    for &p in &prev_sinks {
                        for &s in &srcs {
                            g.add_edge(p, s)?;
                        }
                    }
                    if first_sources.is_none() {
                        first_sources = Some(srcs);
                    }
                    prev_sinks = sinks;
                }
                Ok((first_sources.unwrap_or_default(), prev_sinks))
            }
            SpTree::Parallel(children) => {
                let mut sources = Vec::new();
                let mut sinks = Vec::new();
                for c in children {
                    let (srcs, snks) = c.render(g)?;
                    sources.extend(srcs);
                    sinks.extend(snks);
                }
                Ok((sources, sinks))
            }
        }
    }

    /// Recognises a series-parallel DAG and recovers a decomposition tree
    /// whose leaves are bound to the DAG's task ids.
    ///
    /// The class recognised is the class of **series-parallel partial
    /// orders** (N-free posets): the decomposition is computed on the
    /// *transitive closure* of the DAG, so redundant (transitive) edges do
    /// not affect the result. Recursively:
    ///
    /// 1. if the comparability graph of the task set is disconnected, the
    ///    components compose in **parallel**;
    /// 2. otherwise, if the set splits into blocks `B_1, …, B_k` such that
    ///    every task of `B_i` precedes every task of `B_j` for `i < j`, the
    ///    blocks compose in **series**;
    /// 3. otherwise the DAG contains an induced "N" and is not SP.
    ///
    /// Complexity is `O(n²)` per recursion level on closure bitmatrices —
    /// comfortably fast for the instance sizes of the paper's experiments.
    pub fn from_dag(dag: &Dag) -> Result<SpTree, SpError> {
        if dag.is_empty() {
            return Err(SpError::Empty);
        }
        let n = dag.len();
        // Transitive closure: closure[u][v] = true iff u strictly precedes v.
        let mut closure = vec![vec![false; n]; n];
        let order = dag.topological_order();
        for &t in order.iter().rev() {
            for &s in dag.successors(t) {
                closure[t][s] = true;
                // Split borrow: copy successor's row into t's row.
                let (a, b) = if t < s {
                    let (lo, hi) = closure.split_at_mut(s);
                    (&mut lo[t], &hi[0])
                } else {
                    let (lo, hi) = closure.split_at_mut(t);
                    (&mut hi[0], &lo[s])
                };
                for v in 0..n {
                    a[v] |= b[v];
                }
            }
        }
        let topo_pos = {
            let mut p = vec![0usize; n];
            for (i, &t) in order.iter().enumerate() {
                p[t] = i;
            }
            p
        };
        let mut set: Vec<TaskId> = (0..n).collect();
        set.sort_by_key(|&t| topo_pos[t]);
        decompose(dag, &closure, set)
    }
}

/// Recursive SP-order decomposition; `set` arrives in topological order.
fn decompose(dag: &Dag, closure: &[Vec<bool>], set: Vec<TaskId>) -> Result<SpTree, SpError> {
    if set.len() == 1 {
        let t = set[0];
        return Ok(SpTree::leaf_for(t, dag.weight(t)));
    }

    // 1. Parallel split: connected components of the comparability graph
    //    (u ~ v iff u precedes v or v precedes u in the closure).
    let comps = comparability_components(closure, &set);
    if comps.len() > 1 {
        let children = comps
            .into_iter()
            .map(|c| decompose(dag, closure, c))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(SpTree::parallel(children));
    }

    // 2. Series split: find the earliest prefix P (in topological order)
    //    such that every task of P precedes every task of the remainder.
    for cut in 1..set.len() {
        let (prefix, rest) = set.split_at(cut);
        let total = prefix.iter().all(|&u| rest.iter().all(|&v| closure[u][v]));
        if total {
            let left = decompose(dag, closure, prefix.to_vec())?;
            let right = decompose(dag, closure, rest.to_vec())?;
            // `series` flattens, so recursing on the whole remainder still
            // yields a flat block list.
            return Ok(SpTree::series(vec![left, right]));
        }
    }

    // 3. Connected, not series-splittable: contains an induced N.
    Err(SpError::NotSeriesParallel)
}

/// Connected components of the comparability relation restricted to `set`,
/// each returned in the same (topological) relative order as `set`.
fn comparability_components(closure: &[Vec<bool>], set: &[TaskId]) -> Vec<Vec<TaskId>> {
    let k = set.len();
    let mut comp_id = vec![usize::MAX; k];
    let mut n_comp = 0;
    for start in 0..k {
        if comp_id[start] != usize::MAX {
            continue;
        }
        let id = n_comp;
        n_comp += 1;
        let mut stack = vec![start];
        comp_id[start] = id;
        while let Some(i) = stack.pop() {
            let u = set[i];
            for j in 0..k {
                if comp_id[j] == usize::MAX {
                    let v = set[j];
                    if closure[u][v] || closure[v][u] {
                        comp_id[j] = id;
                        stack.push(j);
                    }
                }
            }
        }
    }
    let mut comps = vec![Vec::new(); n_comp];
    for (i, &t) in set.iter().enumerate() {
        comps[comp_id[i]].push(t);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
            "{a} vs {b}"
        );
    }

    #[test]
    fn algebra_chain() {
        let t = SpTree::series(vec![
            SpTree::leaf(1.0),
            SpTree::leaf(2.0),
            SpTree::leaf(3.0),
        ]);
        assert_close(t.equivalent_weight(), 6.0);
    }

    #[test]
    fn algebra_parallel() {
        let t = SpTree::parallel(vec![SpTree::leaf(1.0), SpTree::leaf(2.0)]);
        assert_close(t.equivalent_weight(), 9.0f64.cbrt());
    }

    #[test]
    fn algebra_fork_matches_paper_formula() {
        // fork = series(w0, parallel(w_i)) ⇒ W = w0 + (Σ w_i³)^{1/3}
        let w0 = 2.0;
        let ws = [1.0, 3.0, 2.0];
        let t = SpTree::series(vec![
            SpTree::leaf(w0),
            SpTree::parallel(ws.iter().map(|&w| SpTree::leaf(w)).collect()),
        ]);
        let expected = w0 + ws.iter().map(|w| w.powi(3)).sum::<f64>().cbrt();
        assert_close(t.equivalent_weight(), expected);
    }

    #[test]
    fn constructors_flatten() {
        let t = SpTree::series(vec![
            SpTree::series(vec![SpTree::leaf(1.0), SpTree::leaf(2.0)]),
            SpTree::leaf(3.0),
        ]);
        match &t {
            SpTree::Series(c) => assert_eq!(c.len(), 3),
            _ => panic!("expected series"),
        }
        let p = SpTree::parallel(vec![
            SpTree::parallel(vec![SpTree::leaf(1.0)]),
            SpTree::leaf(2.0),
        ]);
        match &p {
            SpTree::Parallel(c) => assert_eq!(c.len(), 2),
            _ => panic!("expected parallel"),
        }
    }

    #[test]
    fn to_dag_chain() {
        let t = SpTree::series(vec![SpTree::leaf(1.0), SpTree::leaf(2.0)]);
        let g = t.to_dag();
        assert_eq!(g.len(), 2);
        assert_eq!(g.edges(), &[(0, 1)]);
    }

    #[test]
    fn to_dag_fork_join() {
        let t = SpTree::series(vec![
            SpTree::leaf(1.0),
            SpTree::parallel(vec![SpTree::leaf(2.0), SpTree::leaf(3.0)]),
            SpTree::leaf(4.0),
        ]);
        let g = t.to_dag();
        assert_eq!(g.len(), 4);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![3]);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn recognise_chain() {
        let g = generators::chain(&[1.0, 2.0, 3.0]);
        let t = SpTree::from_dag(&g).unwrap();
        assert_eq!(t.task_count(), 3);
        assert_close(t.equivalent_weight(), 6.0);
        // ids are bound to the original graph
        let ids: Vec<_> = t.leaves().iter().map(|(id, _)| id.unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn recognise_fork() {
        let g = generators::fork(2.0, &[1.0, 3.0, 2.0]);
        let t = SpTree::from_dag(&g).unwrap();
        let expected = 2.0 + (1.0f64 + 27.0 + 8.0).cbrt();
        assert_close(t.equivalent_weight(), expected);
    }

    #[test]
    fn recognise_join() {
        let g = generators::join(&[1.0, 2.0], 3.0);
        let t = SpTree::from_dag(&g).unwrap();
        assert_close(t.equivalent_weight(), 3.0 + 9.0f64.cbrt());
    }

    #[test]
    fn recognise_out_tree() {
        let g = generators::out_tree(2, 2, 1.0);
        let t = SpTree::from_dag(&g).unwrap();
        assert_eq!(t.task_count(), 7);
        // subtree of a leaf-pair: (1+1)^... W_child = 1 + (1³+1³)^{1/3}
        let w_child = 1.0 + 2.0f64.cbrt();
        let expected = 1.0 + (2.0 * w_child.powi(3)).cbrt();
        assert_close(t.equivalent_weight(), expected);
    }

    #[test]
    fn recognise_rejects_non_sp() {
        // The "N" graph: a->c, a->d, b->d — the canonical non-SP pattern.
        let g = Dag::from_parts(vec![1.0; 4], [(0, 2), (0, 3), (1, 3)]).unwrap();
        assert_eq!(SpTree::from_dag(&g), Err(SpError::NotSeriesParallel));
    }

    #[test]
    fn recognise_handles_transitive_edge() {
        // diamond + shortcut 0->3 is still SP (the shortcut is a neutral
        // parallel branch).
        let g = Dag::from_parts(
            vec![1.0, 2.0, 3.0, 4.0],
            [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)],
        )
        .unwrap();
        let t = SpTree::from_dag(&g).unwrap();
        assert_eq!(t.task_count(), 4);
    }

    #[test]
    fn round_trip_random_sp() {
        for seed in 0..10u64 {
            let tree = generators::random_sp_tree(12, 0.5, 4.0, seed);
            let dag = tree.to_dag();
            let back = SpTree::from_dag(&dag).expect("rendered SP must be recognised");
            assert_eq!(back.task_count(), 12);
            assert_close(back.equivalent_weight(), tree.equivalent_weight());
        }
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(SpTree::from_dag(&Dag::new()), Err(SpError::Empty));
    }
}
