//! # ea-taskgraph
//!
//! Weighted directed acyclic task graphs (DAGs) and the graph machinery used
//! by the energy-aware scheduling library:
//!
//! * [`Dag`] — a node-weighted DAG of tasks `T_1..T_n`, where the weight
//!   `w_i` of a task is its computation requirement (executing `T_i` at speed
//!   `f` takes `w_i / f` time units and consumes `w_i · f²` energy units).
//! * [`generators`] — synthetic workloads: chains, forks, joins, fork-joins,
//!   trees, layered random DAGs, Erdős–Rényi DAGs, series-parallel graphs and
//!   a few application-shaped workflows (stencil wavefronts, FFT butterflies,
//!   Gaussian-elimination DAGs).
//! * [`analysis`] — topological orders, longest paths / critical paths,
//!   earliest/latest start times, slack (float) computation and transitive
//!   reduction.
//! * [`sp`] — series-parallel recognition by series/parallel reductions,
//!   producing an explicit decomposition tree ([`sp::SpTree`]). The
//!   closed-form optimal-speed algebra of the paper operates on this tree.
//!
//! The crate is deliberately free of any scheduling policy: it only models
//! the *application* side of the problem (the DAG `G = (V, E)` of the paper,
//! Section II).

pub mod analysis;
pub mod generators;
pub mod graph;
pub mod sp;

pub use graph::{Dag, DagError, EdgeId, TaskId};
pub use sp::{SpError, SpTree};
