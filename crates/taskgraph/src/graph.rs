//! Node-weighted directed acyclic task graphs.
//!
//! A [`Dag`] stores tasks (nodes) with a positive computation weight `w_i`
//! and precedence edges `T_i → T_j` meaning `T_j` may only start once `T_i`
//! has completed. The structure is append-only: tasks and edges can be added
//! but not removed, which keeps `TaskId`s stable and makes the type cheap to
//! share across solver layers.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Index of a task inside a [`Dag`]. Stable for the lifetime of the graph.
pub type TaskId = usize;

/// Index of an edge inside a [`Dag`], in insertion order.
pub type EdgeId = usize;

/// Errors produced when building or validating a [`Dag`].
#[derive(Debug, Clone, PartialEq)]
pub enum DagError {
    /// An edge endpoint refers to a task that does not exist.
    UnknownTask(TaskId),
    /// Adding the edge would create a cycle.
    WouldCycle { src: TaskId, dst: TaskId },
    /// Self-loops are never allowed in a DAG.
    SelfLoop(TaskId),
    /// A task weight must be strictly positive and finite.
    InvalidWeight { task: TaskId, weight: f64 },
    /// Duplicate edge between the same ordered pair of tasks.
    DuplicateEdge { src: TaskId, dst: TaskId },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownTask(t) => write!(f, "unknown task id {t}"),
            DagError::WouldCycle { src, dst } => {
                write!(f, "edge {src} -> {dst} would create a cycle")
            }
            DagError::SelfLoop(t) => write!(f, "self loop on task {t}"),
            DagError::InvalidWeight { task, weight } => {
                write!(f, "task {task} has invalid weight {weight}")
            }
            DagError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge {src} -> {dst}")
            }
        }
    }
}

impl std::error::Error for DagError {}

/// A node-weighted DAG of tasks.
///
/// Invariants maintained by construction:
/// * weights are strictly positive finite floats,
/// * the edge relation is acyclic and contains no duplicates or self-loops.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dag {
    weights: Vec<f64>,
    /// `succs[i]` = tasks that directly depend on `i`.
    succs: Vec<Vec<TaskId>>,
    /// `preds[i]` = direct prerequisites of `i`.
    preds: Vec<Vec<TaskId>>,
    /// Edge list in insertion order, as `(src, dst)` pairs.
    edges: Vec<(TaskId, TaskId)>,
}

impl Dag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a DAG with `n` tasks of the given uniform weight and no edges.
    pub fn with_uniform_weights(n: usize, weight: f64) -> Self {
        let mut g = Self::new();
        for _ in 0..n {
            g.add_task(weight).expect("uniform weight must be valid");
        }
        g
    }

    /// Creates a DAG from a weight vector and an edge list.
    pub fn from_parts(
        weights: Vec<f64>,
        edges: impl IntoIterator<Item = (TaskId, TaskId)>,
    ) -> Result<Self, DagError> {
        let mut g = Self::new();
        for w in weights {
            g.add_task(w)?;
        }
        for (s, d) in edges {
            g.add_edge(s, d)?;
        }
        Ok(g)
    }

    /// Adds a task with computation weight `w` and returns its id.
    pub fn add_task(&mut self, w: f64) -> Result<TaskId, DagError> {
        if !(w.is_finite() && w > 0.0) {
            return Err(DagError::InvalidWeight {
                task: self.weights.len(),
                weight: w,
            });
        }
        let id = self.weights.len();
        self.weights.push(w);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        Ok(id)
    }

    /// Adds a precedence edge `src → dst`.
    ///
    /// Rejects unknown endpoints, self-loops, duplicates, and edges that
    /// would close a cycle (checked with a reverse reachability walk).
    pub fn add_edge(&mut self, src: TaskId, dst: TaskId) -> Result<EdgeId, DagError> {
        let n = self.len();
        if src >= n {
            return Err(DagError::UnknownTask(src));
        }
        if dst >= n {
            return Err(DagError::UnknownTask(dst));
        }
        if src == dst {
            return Err(DagError::SelfLoop(src));
        }
        if self.succs[src].contains(&dst) {
            return Err(DagError::DuplicateEdge { src, dst });
        }
        if self.reaches(dst, src) {
            return Err(DagError::WouldCycle { src, dst });
        }
        self.succs[src].push(dst);
        self.preds[dst].push(src);
        self.edges.push((src, dst));
        Ok(self.edges.len() - 1)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if the graph holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Number of precedence edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Weight `w_i` of a task.
    pub fn weight(&self, t: TaskId) -> f64 {
        self.weights[t]
    }

    /// All task weights, indexed by [`TaskId`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Overwrites the weight of a task (used by workload perturbation).
    pub fn set_weight(&mut self, t: TaskId, w: f64) -> Result<(), DagError> {
        if !(w.is_finite() && w > 0.0) {
            return Err(DagError::InvalidWeight { task: t, weight: w });
        }
        if t >= self.len() {
            return Err(DagError::UnknownTask(t));
        }
        self.weights[t] = w;
        Ok(())
    }

    /// Sum of all task weights (the sequential work of the application).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Direct successors of `t`.
    pub fn successors(&self, t: TaskId) -> &[TaskId] {
        &self.succs[t]
    }

    /// Direct predecessors of `t`.
    pub fn predecessors(&self, t: TaskId) -> &[TaskId] {
        &self.preds[t]
    }

    /// Edge list in insertion order.
    pub fn edges(&self) -> &[(TaskId, TaskId)] {
        &self.edges
    }

    /// Tasks with no predecessors.
    pub fn sources(&self) -> Vec<TaskId> {
        (0..self.len())
            .filter(|&t| self.preds[t].is_empty())
            .collect()
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> Vec<TaskId> {
        (0..self.len())
            .filter(|&t| self.succs[t].is_empty())
            .collect()
    }

    /// True if `to` is reachable from `from` by following edges forward.
    pub fn reaches(&self, from: TaskId, to: TaskId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(v) = stack.pop() {
            for &s in &self.succs[v] {
                if s == to {
                    return true;
                }
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// A topological order of the tasks (Kahn's algorithm).
    ///
    /// The construction API guarantees acyclicity, so this never fails.
    pub fn topological_order(&self) -> Vec<TaskId> {
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|t| self.preds[t].len()).collect();
        let mut queue: Vec<TaskId> = (0..n).filter(|&t| indeg[t] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &s in &self.succs[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "construction guarantees acyclicity");
        order
    }

    /// Merges another DAG into this one, returning the id offset applied to
    /// the tasks of `other`.
    pub fn append(&mut self, other: &Dag) -> TaskId {
        let offset = self.len();
        for &w in &other.weights {
            self.add_task(w).expect("weights of a valid Dag are valid");
        }
        for &(s, d) in &other.edges {
            self.add_edge(s + offset, d + offset)
                .expect("edges of a valid Dag stay acyclic after offset");
        }
        offset
    }

    /// Renders the DAG in Graphviz DOT format (weights as labels).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph dag {\n  rankdir=LR;\n");
        for t in 0..self.len() {
            let _ = writeln!(
                out,
                "  t{} [label=\"T{} (w={:.3})\"];",
                t, t, self.weights[t]
            );
        }
        for &(s, d) in &self.edges {
            let _ = writeln!(out, "  t{s} -> t{d};");
        }
        out.push_str("}\n");
        out
    }

    /// Checks structural invariants; used by tests and after deserialization.
    pub fn validate(&self) -> Result<(), DagError> {
        let n = self.len();
        if self.succs.len() != n || self.preds.len() != n {
            return Err(DagError::UnknownTask(n));
        }
        for (t, &w) in self.weights.iter().enumerate() {
            if !(w.is_finite() && w > 0.0) {
                return Err(DagError::InvalidWeight { task: t, weight: w });
            }
        }
        let mut seen = HashSet::new();
        for &(s, d) in &self.edges {
            if s >= n {
                return Err(DagError::UnknownTask(s));
            }
            if d >= n {
                return Err(DagError::UnknownTask(d));
            }
            if s == d {
                return Err(DagError::SelfLoop(s));
            }
            if !seen.insert((s, d)) {
                return Err(DagError::DuplicateEdge { src: s, dst: d });
            }
        }
        if self.topological_order().len() != n {
            // Unreachable through the public API; defends against hand-built
            // serialized payloads.
            let &(s, d) = self.edges.last().expect("cycle implies an edge");
            return Err(DagError::WouldCycle { src: s, dst: d });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 -> {1,2} -> 3
        Dag::from_parts(vec![1.0, 2.0, 3.0, 4.0], [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn build_and_query() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.weight(2), 3.0);
        assert_eq!(g.total_weight(), 10.0);
        assert_eq!(g.successors(0), &[1, 2]);
        assert_eq!(g.predecessors(3), &[1, 2]);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![3]);
    }

    #[test]
    fn rejects_bad_weights() {
        let mut g = Dag::new();
        assert!(matches!(
            g.add_task(0.0),
            Err(DagError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_task(-1.0),
            Err(DagError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_task(f64::NAN),
            Err(DagError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_task(f64::INFINITY),
            Err(DagError::InvalidWeight { .. })
        ));
        assert!(g.add_task(1e-9).is_ok());
    }

    #[test]
    fn rejects_cycles_self_loops_duplicates() {
        let mut g = Dag::with_uniform_weights(3, 1.0);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        assert_eq!(
            g.add_edge(2, 0),
            Err(DagError::WouldCycle { src: 2, dst: 0 })
        );
        assert_eq!(g.add_edge(1, 1), Err(DagError::SelfLoop(1)));
        assert_eq!(
            g.add_edge(0, 1),
            Err(DagError::DuplicateEdge { src: 0, dst: 1 })
        );
        assert_eq!(g.add_edge(0, 7), Err(DagError::UnknownTask(7)));
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (i, &t) in order.iter().enumerate() {
                p[t] = i;
            }
            p
        };
        for &(s, d) in g.edges() {
            assert!(pos[s] < pos[d], "edge {s}->{d} out of order");
        }
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert!(g.reaches(0, 3));
        assert!(g.reaches(1, 3));
        assert!(!g.reaches(1, 2));
        assert!(g.reaches(2, 2));
    }

    #[test]
    fn append_offsets_ids() {
        let mut g = diamond();
        let other = Dag::from_parts(vec![5.0, 6.0], [(0, 1)]).unwrap();
        let off = g.append(&other);
        assert_eq!(off, 4);
        assert_eq!(g.len(), 6);
        assert_eq!(g.weight(4), 5.0);
        assert_eq!(g.successors(4), &[5]);
        g.validate().unwrap();
    }

    #[test]
    fn serde_round_trip() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: Dag = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.len(), g.len());
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn dot_output_mentions_all_tasks() {
        let g = diamond();
        let dot = g.to_dot();
        for t in 0..4 {
            assert!(dot.contains(&format!("t{t} ")));
        }
        assert!(dot.contains("t0 -> t1"));
    }

    #[test]
    fn set_weight_updates_and_validates() {
        let mut g = diamond();
        g.set_weight(0, 9.0).unwrap();
        assert_eq!(g.weight(0), 9.0);
        assert!(g.set_weight(0, -3.0).is_err());
        assert!(g.set_weight(99, 1.0).is_err());
    }
}
