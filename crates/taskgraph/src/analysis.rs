//! Temporal analysis of weighted DAGs.
//!
//! All routines take per-task *durations* (`d_i = w_i / f_i` once a speed is
//! chosen) so the same machinery serves both the unit-speed structural
//! analysis and the post-solver schedule analysis.

use crate::graph::{Dag, TaskId};

/// Earliest start times under infinite processors: the classic forward pass.
///
/// `est[i] = max over predecessors j of (est[j] + dur[j])`, sources at 0.
pub fn earliest_start(dag: &Dag, dur: &[f64]) -> Vec<f64> {
    assert_eq!(dur.len(), dag.len(), "one duration per task");
    let mut est = vec![0.0f64; dag.len()];
    for &t in &dag.topological_order() {
        for &p in dag.predecessors(t) {
            est[t] = est[t].max(est[p] + dur[p]);
        }
    }
    est
}

/// Length of the longest (critical) path, measured in duration units.
pub fn critical_path_length(dag: &Dag, dur: &[f64]) -> f64 {
    let est = earliest_start(dag, dur);
    (0..dag.len()).map(|t| est[t] + dur[t]).fold(0.0, f64::max)
}

/// Latest start times given a global deadline `horizon`.
///
/// `lst[i] = min over successors j of lst[j] − dur[i]`, sinks at
/// `horizon − dur[i]`.
pub fn latest_start(dag: &Dag, dur: &[f64], horizon: f64) -> Vec<f64> {
    assert_eq!(dur.len(), dag.len());
    let mut lst = vec![f64::INFINITY; dag.len()];
    let order = dag.topological_order();
    for &t in order.iter().rev() {
        if dag.successors(t).is_empty() {
            lst[t] = horizon - dur[t];
        } else {
            for &s in dag.successors(t) {
                lst[t] = lst[t].min(lst[s] - dur[t]);
            }
        }
    }
    lst
}

/// Total float (slack) of each task w.r.t. a deadline: `lst − est`.
///
/// A task with zero float lies on a critical path; large float means the
/// task is "highly parallelizable" in the sense used by the TRI-CRIT fork
/// strategy (it can be slowed or re-executed without stretching the
/// makespan).
pub fn total_float(dag: &Dag, dur: &[f64], horizon: f64) -> Vec<f64> {
    let est = earliest_start(dag, dur);
    let lst = latest_start(dag, dur, horizon);
    est.iter().zip(&lst).map(|(e, l)| l - e).collect()
}

/// Tasks on some critical path (float ≈ 0 w.r.t. the critical path length).
pub fn critical_tasks(dag: &Dag, dur: &[f64]) -> Vec<TaskId> {
    let horizon = critical_path_length(dag, dur);
    let fl = total_float(dag, dur, horizon);
    let eps = 1e-9 * horizon.max(1.0);
    (0..dag.len()).filter(|&t| fl[t] <= eps).collect()
}

/// One maximal-length path through the DAG, as a task sequence.
pub fn critical_path(dag: &Dag, dur: &[f64]) -> Vec<TaskId> {
    let est = earliest_start(dag, dur);
    // Find the sink with the largest completion time and walk backwards,
    // always through a predecessor that realises the max.
    let mut cur = (0..dag.len())
        .max_by(|&a, &b| {
            (est[a] + dur[a])
                .partial_cmp(&(est[b] + dur[b]))
                .expect("finite times")
        })
        .expect("non-empty DAG");
    let mut path = vec![cur];
    loop {
        let mut next = None;
        for &p in dag.predecessors(cur) {
            if (est[p] + dur[p] - est[cur]).abs() <= 1e-9 * est[cur].max(1.0) {
                next = Some(p);
                break;
            }
        }
        match next {
            Some(p) => {
                path.push(p);
                cur = p;
            }
            None => break,
        }
    }
    path.reverse();
    path
}

/// Assigns each task to a "level": the number of edges on the longest
/// edge-count path from any source. Useful for layered drawings and for the
/// layered workload generators' self-checks.
pub fn levels(dag: &Dag) -> Vec<usize> {
    let mut lv = vec![0usize; dag.len()];
    for &t in &dag.topological_order() {
        for &p in dag.predecessors(t) {
            lv[t] = lv[t].max(lv[p] + 1);
        }
    }
    lv
}

/// Transitive reduction: the minimal sub-DAG with the same reachability.
///
/// Returns the list of edges to keep. O(V·E) — fine for the instance sizes
/// used by the paper's experiments.
pub fn transitive_reduction(dag: &Dag) -> Vec<(TaskId, TaskId)> {
    let mut keep = Vec::new();
    for &(s, d) in dag.edges() {
        // Edge (s,d) is redundant iff d is reachable from s through a path
        // that starts with a *different* successor of s.
        let mut redundant = false;
        for &m in dag.successors(s) {
            if m != d && dag.reaches(m, d) {
                redundant = true;
                break;
            }
        }
        if !redundant {
            keep.push((s, d));
        }
    }
    keep
}

/// Degree of parallelism proxy: maximal number of pairwise-incomparable
/// tasks among `sample` random antichains is expensive; instead we report
/// the maximum number of tasks sharing a level, a cheap standard proxy.
pub fn width_proxy(dag: &Dag) -> usize {
    let lv = levels(dag);
    let max_lv = lv.iter().copied().max().unwrap_or(0);
    let mut count = vec![0usize; max_lv + 1];
    for &l in &lv {
        count[l] += 1;
    }
    count.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn diamond() -> Dag {
        Dag::from_parts(vec![1.0, 2.0, 3.0, 4.0], [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn earliest_start_diamond() {
        let g = diamond();
        let est = earliest_start(&g, g.weights());
        assert_eq!(est, vec![0.0, 1.0, 1.0, 4.0]); // via task 2 (1+3)
    }

    #[test]
    fn critical_path_diamond() {
        let g = diamond();
        assert_eq!(critical_path_length(&g, g.weights()), 8.0); // 0->2->3
        assert_eq!(critical_path(&g, g.weights()), vec![0, 2, 3]);
        assert_eq!(critical_tasks(&g, g.weights()), vec![0, 2, 3]);
    }

    #[test]
    fn floats_diamond() {
        let g = diamond();
        let fl = total_float(&g, g.weights(), 8.0);
        assert!((fl[0]).abs() < 1e-12);
        assert!((fl[1] - 1.0).abs() < 1e-12, "task 1 has one unit of slack");
        assert!((fl[2]).abs() < 1e-12);
        assert!((fl[3]).abs() < 1e-12);
    }

    #[test]
    fn latest_start_respects_horizon() {
        let g = diamond();
        let lst = latest_start(&g, g.weights(), 10.0);
        // Sink: 10 - 4 = 6; task2: 6 - 3 = 3; task1: 6 - 2 = 4; source: 3-1=2.
        assert_eq!(lst, vec![2.0, 4.0, 3.0, 6.0]);
    }

    #[test]
    fn chain_critical_path_is_everything() {
        let g = generators::chain(&[2.0, 3.0, 4.0]);
        assert_eq!(critical_path_length(&g, g.weights()), 9.0);
        assert_eq!(critical_path(&g, g.weights()), vec![0, 1, 2]);
        assert_eq!(width_proxy(&g), 1);
    }

    #[test]
    fn levels_layered() {
        let g = diamond();
        assert_eq!(levels(&g), vec![0, 1, 1, 2]);
    }

    #[test]
    fn transitive_reduction_removes_shortcut() {
        let mut g = diamond();
        g.add_edge(0, 3).unwrap(); // shortcut
        let kept = transitive_reduction(&g);
        assert_eq!(kept.len(), 4);
        assert!(!kept.contains(&(0, 3)));
    }

    #[test]
    fn transitive_reduction_keeps_needed_edges() {
        let g = diamond();
        let kept = transitive_reduction(&g);
        assert_eq!(kept.len(), g.edge_count());
    }

    #[test]
    fn width_of_fork() {
        let g = generators::fork(1.0, &[1.0; 5]);
        assert_eq!(width_proxy(&g), 5);
    }
}
