//! Synthetic workload generators.
//!
//! The paper evaluates its algorithms on structured graphs (chains, forks,
//! trees, series-parallel graphs) and on "wide classes of problem
//! instances". This module provides deterministic constructors for the
//! structured families plus seeded random generators for the instance
//! sweeps, and three application-shaped workflows (stencil wavefront, FFT
//! butterfly, Gaussian elimination) to ground the examples in recognisable
//! HPC kernels.

use crate::graph::{Dag, TaskId};
use crate::sp::SpTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Linear chain `T_0 → T_1 → … → T_{n−1}` with the given weights.
pub fn chain(weights: &[f64]) -> Dag {
    let mut g = Dag::new();
    let mut prev: Option<TaskId> = None;
    for &w in weights {
        let t = g.add_task(w).expect("chain weight");
        if let Some(p) = prev {
            g.add_edge(p, t).expect("chain edge");
        }
        prev = Some(t);
    }
    g
}

/// Fork graph: source `T_0` followed by `n` independent tasks.
///
/// This is the graph of the paper's fork theorem (Section III): task 0 has
/// weight `source_weight`, tasks `1..=n` have the given weights and all
/// depend only on the source.
pub fn fork(source_weight: f64, branch_weights: &[f64]) -> Dag {
    let mut g = Dag::new();
    let src = g.add_task(source_weight).expect("source weight");
    for &w in branch_weights {
        let t = g.add_task(w).expect("branch weight");
        g.add_edge(src, t).expect("fork edge");
    }
    g
}

/// Join graph: `n` independent tasks followed by a sink.
pub fn join(branch_weights: &[f64], sink_weight: f64) -> Dag {
    let mut g = Dag::new();
    let branches: Vec<TaskId> = branch_weights
        .iter()
        .map(|&w| g.add_task(w).expect("branch weight"))
        .collect();
    let sink = g.add_task(sink_weight).expect("sink weight");
    for b in branches {
        g.add_edge(b, sink).expect("join edge");
    }
    g
}

/// Fork-join: source, `n` parallel branches (each a chain of
/// `branch_len` tasks), sink.
pub fn fork_join(source_weight: f64, branches: &[Vec<f64>], sink_weight: f64) -> Dag {
    let mut g = Dag::new();
    let src = g.add_task(source_weight).expect("source");
    let sink_pred: Vec<TaskId> = branches
        .iter()
        .map(|chain_w| {
            let mut prev = src;
            for &w in chain_w {
                let t = g.add_task(w).expect("branch task");
                g.add_edge(prev, t).expect("branch edge");
                prev = t;
            }
            prev
        })
        .collect();
    let sink = g.add_task(sink_weight).expect("sink");
    for p in sink_pred {
        g.add_edge(p, sink).expect("sink edge");
    }
    g
}

/// Complete out-tree of the given depth and branching factor; weights are
/// all `weight`. Node count is `(b^{depth+1} − 1)/(b − 1)` for `b > 1`.
pub fn out_tree(branching: usize, depth: usize, weight: f64) -> Dag {
    assert!(branching >= 1);
    let mut g = Dag::new();
    let root = g.add_task(weight).expect("root");
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * branching);
        for &parent in &frontier {
            for _ in 0..branching {
                let c = g.add_task(weight).expect("child");
                g.add_edge(parent, c).expect("tree edge");
                next.push(c);
            }
        }
        frontier = next;
    }
    g
}

/// Complete in-tree (reduction tree): the mirror image of [`out_tree`].
pub fn in_tree(branching: usize, depth: usize, weight: f64) -> Dag {
    let out = out_tree(branching, depth, weight);
    // Reverse every edge.
    let weights = out.weights().to_vec();
    let edges: Vec<(TaskId, TaskId)> = out.edges().iter().map(|&(s, d)| (d, s)).collect();
    Dag::from_parts(weights, edges).expect("mirrored tree is acyclic")
}

/// Seeded random weights uniform in `[lo, hi)`.
pub fn random_weights(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "weights must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

/// Layered random DAG: `layers` layers of `width` tasks; each task draws
/// edges from the previous layer with probability `p_edge` (at least one is
/// forced so the layer structure is real). Weights uniform in `[w_lo, w_hi)`.
pub fn random_layered(
    layers: usize,
    width: usize,
    p_edge: f64,
    w_lo: f64,
    w_hi: f64,
    seed: u64,
) -> Dag {
    assert!(layers >= 1 && width >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Dag::new();
    let mut prev_layer: Vec<TaskId> = Vec::new();
    for layer in 0..layers {
        let mut cur = Vec::with_capacity(width);
        for _ in 0..width {
            let t = g.add_task(rng.random_range(w_lo..w_hi)).expect("weight");
            if layer > 0 {
                let mut linked = false;
                for &p in &prev_layer {
                    if rng.random_bool(p_edge) {
                        g.add_edge(p, t).expect("layer edge");
                        linked = true;
                    }
                }
                if !linked {
                    let p = prev_layer[rng.random_range(0..prev_layer.len())];
                    g.add_edge(p, t).expect("forced layer edge");
                }
            }
            cur.push(t);
        }
        prev_layer = cur;
    }
    g
}

/// Erdős–Rényi-style random DAG: `n` tasks; for every ordered pair `i < j`
/// an edge with probability `p`. Dense and unstructured — the stress case
/// for the general-DAG solvers.
pub fn erdos_dag(n: usize, p: f64, w_lo: f64, w_hi: f64, seed: u64) -> Dag {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Dag::new();
    for _ in 0..n {
        g.add_task(rng.random_range(w_lo..w_hi)).expect("weight");
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random_bool(p) {
                g.add_edge(i, j).expect("i<j keeps it acyclic");
            }
        }
    }
    g
}

/// Random series-parallel decomposition tree over `n` tasks.
///
/// Recursively splits the task budget: a budget of 1 becomes a leaf; larger
/// budgets become a series or parallel composition of 2–4 random sub-trees.
/// Returned alongside its DAG rendering via [`SpTree::to_dag`].
pub fn random_sp_tree(n: usize, w_lo: f64, w_hi: f64, seed: u64) -> SpTree {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_weight = {
        let mut inner = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        move || inner.random_range(w_lo..w_hi)
    };
    build_sp(n, &mut rng, &mut next_weight, true)
}

fn build_sp(
    n: usize,
    rng: &mut StdRng,
    next_weight: &mut impl FnMut() -> f64,
    allow_parallel: bool,
) -> SpTree {
    if n == 1 {
        return SpTree::leaf(next_weight());
    }
    let k = rng.random_range(2..=4usize.min(n));
    // Partition n into k positive parts.
    let mut parts = vec![1usize; k];
    for _ in 0..(n - k) {
        parts[rng.random_range(0..k)] += 1;
    }
    let series = !allow_parallel || rng.random_bool(0.5);
    let children: Vec<SpTree> = parts
        .into_iter()
        .map(|m| build_sp(m, rng, next_weight, series))
        .collect();
    if series {
        SpTree::series(children)
    } else {
        SpTree::parallel(children)
    }
}

/// 2-D stencil wavefront DAG (`rows × cols` tiles): tile `(i,j)` depends on
/// `(i−1,j)` and `(i,j−1)`. The classic dynamic-programming/wavefront
/// dependence pattern (e.g. Smith-Waterman, LU panels).
pub fn stencil_wavefront(rows: usize, cols: usize, weight: f64) -> Dag {
    assert!(rows >= 1 && cols >= 1);
    let mut g = Dag::new();
    let id = |i: usize, j: usize| i * cols + j;
    for _ in 0..rows * cols {
        g.add_task(weight).expect("tile");
    }
    for i in 0..rows {
        for j in 0..cols {
            if i + 1 < rows {
                g.add_edge(id(i, j), id(i + 1, j)).expect("down edge");
            }
            if j + 1 < cols {
                g.add_edge(id(i, j), id(i, j + 1)).expect("right edge");
            }
        }
    }
    g
}

/// FFT butterfly DAG over `2^log_n` inputs: `log_n` stages of `2^log_n`
/// tasks; stage `s` task `i` depends on stage `s−1` tasks `i` and
/// `i XOR 2^{s−1}`.
pub fn fft_butterfly(log_n: usize, weight: f64) -> Dag {
    let n = 1usize << log_n;
    let mut g = Dag::new();
    let id = |stage: usize, i: usize| stage * n + i;
    for _ in 0..(log_n + 1) * n {
        g.add_task(weight).expect("butterfly task");
    }
    for s in 1..=log_n {
        let half = 1usize << (s - 1);
        for i in 0..n {
            g.add_edge(id(s - 1, i), id(s, i)).expect("straight edge");
            g.add_edge(id(s - 1, i ^ half), id(s, i))
                .expect("cross edge");
        }
    }
    g
}

/// Gaussian-elimination task DAG on a `b × b` tile grid: the triangular
/// dependence pattern of right-looking LU without pivoting. Task count is
/// `b(b+1)(2b+1)/6`-ish; we use the standard kernel set
/// (getrf / trsm row & col / gemm update).
pub fn gaussian_elimination(b: usize, weight: f64) -> Dag {
    assert!(b >= 1);
    let mut g = Dag::new();
    // tasks indexed by (k, i, j): the update of tile (i,j) at step k, where
    // i = j = k is the factorisation, i = k xor j = k are the solves.
    let mut ids = std::collections::HashMap::new();
    for k in 0..b {
        for i in k..b {
            for j in k..b {
                if i == k || j == k || (i > k && j > k) {
                    let t = g.add_task(weight).expect("kernel");
                    ids.insert((k, i, j), t);
                }
            }
        }
    }
    for k in 0..b {
        let fac = ids[&(k, k, k)];
        for i in (k + 1)..b {
            g.add_edge(fac, ids[&(k, i, k)]).expect("panel dep");
            g.add_edge(fac, ids[&(k, k, i)]).expect("row dep");
        }
        for i in (k + 1)..b {
            for j in (k + 1)..b {
                let upd = ids[&(k, i, j)];
                g.add_edge(ids[&(k, i, k)], upd).expect("gemm dep col");
                g.add_edge(ids[&(k, k, j)], upd).expect("gemm dep row");
                // next step reads the updated tile
                let nxt = ids[&(k + 1, i, j)];
                let _ = g.add_edge(upd, nxt);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn chain_shape() {
        let g = chain(&[1.0, 2.0, 3.0]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![2]);
        g.validate().unwrap();
    }

    #[test]
    fn fork_shape() {
        let g = fork(2.0, &[1.0, 1.0, 1.0]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.successors(0).len(), 3);
        assert_eq!(g.sinks().len(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn join_shape() {
        let g = join(&[1.0, 1.0], 3.0);
        assert_eq!(g.sources().len(), 2);
        assert_eq!(g.sinks(), vec![2]);
        g.validate().unwrap();
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(1.0, &[vec![1.0, 1.0], vec![2.0]], 1.0);
        assert_eq!(g.len(), 5);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![4]);
        assert_eq!(analysis::critical_path_length(&g, g.weights()), 4.0);
        g.validate().unwrap();
    }

    #[test]
    fn out_tree_counts() {
        let g = out_tree(2, 3, 1.0);
        assert_eq!(g.len(), 15);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 8);
        g.validate().unwrap();
    }

    #[test]
    fn in_tree_counts() {
        let g = in_tree(2, 3, 1.0);
        assert_eq!(g.len(), 15);
        assert_eq!(g.sources().len(), 8);
        assert_eq!(g.sinks().len(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn random_layered_is_layered() {
        let g = random_layered(5, 4, 0.4, 1.0, 2.0, 42);
        assert_eq!(g.len(), 20);
        g.validate().unwrap();
        let lv = analysis::levels(&g);
        // every non-source has level exactly one more than some predecessor
        for t in 0..g.len() {
            if !g.predecessors(t).is_empty() {
                assert!(g.predecessors(t).iter().any(|&p| lv[p] + 1 == lv[t]));
            }
        }
    }

    #[test]
    fn random_layered_deterministic() {
        let a = random_layered(4, 3, 0.5, 1.0, 2.0, 7);
        let b = random_layered(4, 3, 0.5, 1.0, 2.0, 7);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn erdos_dag_valid() {
        let g = erdos_dag(30, 0.2, 0.5, 5.0, 3);
        assert_eq!(g.len(), 30);
        g.validate().unwrap();
    }

    #[test]
    fn random_sp_tree_counts_tasks() {
        for n in [1usize, 2, 5, 17, 60] {
            let t = random_sp_tree(n, 1.0, 2.0, 11);
            assert_eq!(t.task_count(), n, "n={n}");
            let dag = t.to_dag();
            dag.validate().unwrap();
            assert_eq!(dag.len(), n);
        }
    }

    #[test]
    fn stencil_shape() {
        let g = stencil_wavefront(3, 4, 1.0);
        assert_eq!(g.len(), 12);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![11]);
        // critical path = rows + cols - 1 tiles
        assert_eq!(analysis::critical_path_length(&g, g.weights()), 6.0);
    }

    #[test]
    fn fft_shape() {
        let g = fft_butterfly(3, 1.0);
        assert_eq!(g.len(), 4 * 8);
        g.validate().unwrap();
        assert_eq!(analysis::critical_path_length(&g, g.weights()), 4.0);
        assert_eq!(analysis::width_proxy(&g), 8);
    }

    #[test]
    fn gaussian_elimination_valid() {
        let g = gaussian_elimination(4, 1.0);
        g.validate().unwrap();
        assert!(g.len() > 20);
        assert_eq!(g.sources(), vec![0]); // first getrf dominates
    }

    #[test]
    fn random_weights_in_range() {
        let ws = random_weights(100, 0.5, 2.5, 9);
        assert!(ws.iter().all(|&w| (0.5..2.5).contains(&w)));
    }
}
