//! Executable NP-hardness gadgets.
//!
//! The paper proves DISCRETE (hence INCREMENTAL) BI-CRIT NP-complete by
//! reduction from 2-PARTITION. This module makes that reduction
//! *executable*: [`two_partition_gadget`] maps a 2-PARTITION instance to a
//! DISCRETE BI-CRIT instance whose optimal energy equals a closed-form
//! threshold **iff** a perfect partition exists. The tests (and experiment
//! E4) verify the equivalence with the exact solvers on yes- and
//! no-instances.
//!
//! Gadget (single processor, modes `{1, 2}`): given positive integers
//! `a_1..a_n` with `Σ a_i = 2S`, create `n` independent tasks of weight
//! `w_i = a_i` serialized on one processor with deadline `D = 3S/2`.
//! Running task `i` at speed 1 takes `a_i` (energy `a_i`); at speed 2 it
//! takes `a_i/2` (energy `4·a_i`). If `X` is the total weight run fast,
//! the makespan is `2S − X/2 ≤ 3S/2 ⇔ X ≥ S` and the energy is
//! `(2S − X) + 4X = 2S + 3X`, minimised by the smallest achievable
//! `X ≥ S`. Hence `OPT = 5S ⇔` some subset sums to exactly `S`.

use crate::error::CoreError;
use crate::instance::Instance;

/// A 2-PARTITION ↪ DISCRETE BI-CRIT gadget instance.
#[derive(Debug, Clone)]
pub struct TwoPartitionGadget {
    /// The BI-CRIT instance (single processor, independent tasks).
    pub instance: Instance,
    /// The two modes `{1, 2}`.
    pub modes: Vec<f64>,
    /// Half of the total weight (`S`).
    pub half_sum: f64,
    /// Optimal energy iff a perfect partition exists: `5S`.
    pub yes_energy: f64,
}

/// Builds the gadget from the 2-PARTITION integers `a`.
pub fn two_partition_gadget(a: &[u64]) -> Result<TwoPartitionGadget, CoreError> {
    assert!(!a.is_empty(), "need at least one integer");
    assert!(
        a.iter().all(|&x| x > 0),
        "2-PARTITION integers must be positive"
    );
    let total: u64 = a.iter().sum();
    let s = total as f64 / 2.0;
    let weights: Vec<f64> = a.iter().map(|&x| x as f64).collect();
    // Independent tasks serialized on one processor: the chain order is
    // irrelevant (no precedence edges), so use the identity order.
    let dag = ea_taskgraph::Dag::from_parts(weights, [])?;
    let mapping = crate::platform::Mapping::single_processor((0..a.len()).collect());
    let deadline = 1.5 * s;
    let instance = Instance::new(dag, crate::platform::Platform::single(), mapping, deadline)?;
    Ok(TwoPartitionGadget {
        instance,
        modes: vec![1.0, 2.0],
        half_sum: s,
        yes_energy: 5.0 * s,
    })
}

impl From<ea_taskgraph::DagError> for CoreError {
    fn from(e: ea_taskgraph::DagError) -> Self {
        CoreError::InvalidSchedule(e.to_string())
    }
}

impl TwoPartitionGadget {
    /// Decides 2-PARTITION through the energy optimum: returns true iff
    /// the optimal BI-CRIT energy equals `5S` (within float tolerance).
    pub fn decide_via_energy(&self, optimal_energy: f64) -> bool {
        (optimal_energy - self.yes_energy).abs() <= 1e-6 * self.yes_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicrit::discrete::{self, BnbBound};

    fn solve(g: &TwoPartitionGadget) -> f64 {
        discrete::solve_bnb(
            g.instance.augmented_dag(),
            g.instance.deadline,
            &g.modes,
            BnbBound::Simple,
        )
        .expect("gadget instances are feasible")
        .energy
    }

    #[test]
    fn yes_instance_hits_threshold() {
        // {3, 5, 8} partitions into {3,5} / {8}: S = 8.
        let g = two_partition_gadget(&[3, 5, 8]).unwrap();
        let e = solve(&g);
        assert!(
            g.decide_via_energy(e),
            "expected 5S = {}, got {e}",
            g.yes_energy
        );
    }

    #[test]
    fn no_instance_exceeds_threshold() {
        // {2, 3, 4} sums to 9 (odd): no perfect partition; S = 4.5.
        let g = two_partition_gadget(&[2, 3, 4]).unwrap();
        let e = solve(&g);
        assert!(!g.decide_via_energy(e));
        assert!(e > g.yes_energy);
    }

    #[test]
    fn balanced_pairs_always_yes() {
        let g = two_partition_gadget(&[7, 7]).unwrap();
        assert!(g.decide_via_energy(solve(&g)));
    }

    #[test]
    fn classic_no_instance() {
        // {1, 1, 1, 9}: total 12, S = 6, but max element 9 > 6.
        let g = two_partition_gadget(&[1, 1, 1, 9]).unwrap();
        let e = solve(&g);
        assert!(!g.decide_via_energy(e));
    }

    #[test]
    fn matches_dp_on_gadget() {
        // The pseudo-polynomial DP agrees with B&B on the gadget family
        // (durations are integral after scaling by 2).
        let a = [4u64, 5, 6, 7];
        let g = two_partition_gadget(&a).unwrap();
        let e_bnb = solve(&g);
        let durations: Vec<Vec<u64>> = a.iter().map(|&x| vec![2 * x, x]).collect(); // ×2 scale: speed1→2x, speed2→x
        let energies: Vec<Vec<f64>> = a.iter().map(|&x| vec![x as f64, 4.0 * x as f64]).collect();
        let tmax = (2.0 * g.instance.deadline) as u64;
        let (e_dp, _) = discrete::chain_dp_integral(&durations, &energies, tmax).unwrap();
        assert!((e_bnb - e_dp).abs() < 1e-9);
    }

    #[test]
    fn larger_yes_instance() {
        // {1,…,7} sums to 28, S = 14; {7,6,1} = 14 exists.
        let g = two_partition_gadget(&[1, 2, 3, 4, 5, 6, 7]).unwrap();
        assert!(g.decide_via_energy(solve(&g)));
    }
}
