//! Schedules: per-task execution specifications and the three criteria.
//!
//! A [`Schedule`] fixes, for every task, how many times it executes (once,
//! or twice under re-execution) and at which speed(s). Durations follow as
//! `w/f` (or the segment sum under VDD-hopping); energy as `w·f²` per
//! execution (`Σ f³·t` over segments); the makespan is the longest path of
//! the augmented DAG under those durations.
//!
//! Worst-case semantics (paper, Section II): when a task is re-executed,
//! *both* executions are charged in time and energy — the deadline must
//! hold even if every first attempt fails.

use crate::error::CoreError;
use crate::platform::Mapping;
use crate::reliability::ReliabilityModel;
use crate::speed::{SpeedModel, SPEED_EPS};
use ea_taskgraph::{analysis, Dag};
use serde::{Deserialize, Serialize};

/// One execution of a task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExecSpec {
    /// Constant speed for the whole execution.
    Single {
        /// Execution speed.
        speed: f64,
    },
    /// VDD-hopping: a sequence of `(speed, time)` segments whose total
    /// work `Σ f·t` must equal the task weight.
    Vdd {
        /// `(speed, time)` segments in execution order.
        segments: Vec<(f64, f64)>,
    },
}

impl ExecSpec {
    /// A constant-speed execution.
    pub fn at(speed: f64) -> Self {
        ExecSpec::Single { speed }
    }

    /// Wall-clock duration for a task of weight `w`.
    pub fn duration(&self, w: f64) -> f64 {
        match self {
            ExecSpec::Single { speed } => w / speed,
            ExecSpec::Vdd { segments } => segments.iter().map(|&(_, t)| t).sum(),
        }
    }

    /// Dynamic energy for a task of weight `w`: `w·f²`, or `Σ f³·t`.
    pub fn energy(&self, w: f64) -> f64 {
        match self {
            ExecSpec::Single { speed } => w * speed * speed,
            ExecSpec::Vdd { segments } => segments.iter().map(|&(f, t)| f * f * f * t).sum(),
        }
    }

    /// Work processed (`w` when valid; `Σ f·t` for VDD).
    pub fn work(&self, w: f64) -> f64 {
        match self {
            ExecSpec::Single { .. } => w,
            ExecSpec::Vdd { segments } => segments.iter().map(|&(f, t)| f * t).sum(),
        }
    }

    /// Failure probability of this execution under the reliability model.
    pub fn failure_prob(&self, rel: &ReliabilityModel, w: f64) -> f64 {
        match self {
            ExecSpec::Single { speed } => rel.failure_prob(w, *speed),
            ExecSpec::Vdd { segments } => rel.failure_prob_segments(segments),
        }
    }

    /// Speeds used by this execution.
    pub fn speeds(&self) -> Vec<f64> {
        match self {
            ExecSpec::Single { speed } => vec![*speed],
            ExecSpec::Vdd { segments } => segments.iter().map(|&(f, _)| f).collect(),
        }
    }
}

/// Execution plan for one task (one or two executions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSchedule {
    /// The executions; re-executed tasks have two entries.
    pub executions: Vec<ExecSpec>,
}

impl TaskSchedule {
    /// Single execution at a constant speed.
    pub fn once(speed: f64) -> Self {
        TaskSchedule {
            executions: vec![ExecSpec::at(speed)],
        }
    }

    /// Two executions at (possibly different) constant speeds.
    pub fn twice(f1: f64, f2: f64) -> Self {
        TaskSchedule {
            executions: vec![ExecSpec::at(f1), ExecSpec::at(f2)],
        }
    }

    /// True if the task is re-executed.
    pub fn is_reexecuted(&self) -> bool {
        self.executions.len() == 2
    }

    /// Worst-case duration: all executions serialized (paper semantics).
    pub fn duration(&self, w: f64) -> f64 {
        self.executions.iter().map(|e| e.duration(w)).sum()
    }

    /// Total energy: every execution is charged.
    pub fn energy(&self, w: f64) -> f64 {
        self.executions.iter().map(|e| e.energy(w)).sum()
    }

    /// Combined failure probability (all executions must fail).
    pub fn failure_prob(&self, rel: &ReliabilityModel, w: f64) -> f64 {
        self.executions
            .iter()
            .map(|e| e.failure_prob(rel, w).min(1.0))
            .product()
    }
}

/// A complete schedule: one [`TaskSchedule`] per task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Indexed by task id.
    pub tasks: Vec<TaskSchedule>,
}

impl Schedule {
    /// All tasks executed once at a common speed.
    pub fn uniform(n: usize, speed: f64) -> Self {
        Schedule {
            tasks: (0..n).map(|_| TaskSchedule::once(speed)).collect(),
        }
    }

    /// All tasks executed once at per-task speeds.
    pub fn from_speeds(speeds: &[f64]) -> Self {
        Schedule {
            tasks: speeds.iter().map(|&f| TaskSchedule::once(f)).collect(),
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Worst-case per-task durations.
    pub fn durations(&self, dag: &Dag) -> Vec<f64> {
        self.tasks
            .iter()
            .zip(dag.weights())
            .map(|(ts, &w)| ts.duration(w))
            .collect()
    }

    /// Total dynamic energy `E = Σ E_i` (Section II).
    pub fn energy(&self, dag: &Dag) -> f64 {
        self.tasks
            .iter()
            .zip(dag.weights())
            .map(|(ts, &w)| ts.energy(w))
            .sum()
    }

    /// Worst-case makespan on the mapped platform: longest path of the
    /// augmented DAG under the schedule's durations.
    pub fn makespan(&self, dag: &Dag, mapping: &Mapping) -> Result<f64, CoreError> {
        let aug = mapping.augmented_dag(dag)?;
        Ok(analysis::critical_path_length(&aug, &self.durations(dag)))
    }

    /// True if every task meets the reliability constraint
    /// `R_i ≥ R_i(f_rel)`.
    pub fn reliability_ok(&self, dag: &Dag, rel: &ReliabilityModel) -> bool {
        self.tasks
            .iter()
            .zip(dag.weights())
            .all(|(ts, &w)| ts.failure_prob(rel, w) <= rel.target(w) * (1.0 + 1e-9))
    }

    /// Per-task failure probabilities.
    pub fn failure_probs(&self, dag: &Dag, rel: &ReliabilityModel) -> Vec<f64> {
        self.tasks
            .iter()
            .zip(dag.weights())
            .map(|(ts, &w)| ts.failure_prob(rel, w))
            .collect()
    }

    /// Validates the schedule against a speed model and optionally a
    /// deadline: admissible speeds, positive segment times, work
    /// conservation for VDD executions, at most two executions per task.
    pub fn validate(
        &self,
        dag: &Dag,
        model: &SpeedModel,
        mapping: &Mapping,
        deadline: Option<f64>,
    ) -> Result<(), CoreError> {
        if self.len() != dag.len() {
            return Err(CoreError::InvalidSchedule(format!(
                "schedule covers {} tasks, DAG has {}",
                self.len(),
                dag.len()
            )));
        }
        for (t, ts) in self.tasks.iter().enumerate() {
            if ts.executions.is_empty() || ts.executions.len() > 2 {
                return Err(CoreError::InvalidSchedule(format!(
                    "task {t}: {} executions (must be 1 or 2)",
                    ts.executions.len()
                )));
            }
            let w = dag.weight(t);
            for (k, e) in ts.executions.iter().enumerate() {
                match e {
                    ExecSpec::Single { speed } => {
                        if !model.admissible(*speed) {
                            return Err(CoreError::InvalidSchedule(format!(
                                "task {t} execution {k}: speed {speed} not admissible"
                            )));
                        }
                    }
                    ExecSpec::Vdd { segments } => {
                        if !model.allows_mid_task_switch() {
                            return Err(CoreError::InvalidSchedule(format!(
                                "task {t}: mid-task speed switching not allowed by model"
                            )));
                        }
                        if segments.is_empty() {
                            return Err(CoreError::InvalidSchedule(format!(
                                "task {t} execution {k}: empty segment list"
                            )));
                        }
                        for &(f, tm) in segments {
                            if !model.admissible(f) {
                                return Err(CoreError::InvalidSchedule(format!(
                                    "task {t} execution {k}: segment speed {f} not admissible"
                                )));
                            }
                            if tm < -SPEED_EPS {
                                return Err(CoreError::InvalidSchedule(format!(
                                    "task {t} execution {k}: negative segment time {tm}"
                                )));
                            }
                        }
                        let work = e.work(w);
                        if (work - w).abs() > 1e-6 * w.max(1.0) {
                            return Err(CoreError::InvalidSchedule(format!(
                                "task {t} execution {k}: work {work} ≠ weight {w}"
                            )));
                        }
                    }
                }
            }
        }
        if let Some(d) = deadline {
            let ms = self.makespan(dag, mapping)?;
            if ms > d * (1.0 + 1e-6) {
                return Err(CoreError::InvalidSchedule(format!(
                    "makespan {ms} exceeds deadline {d}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_taskgraph::generators;

    #[test]
    fn single_exec_energy_and_duration() {
        let e = ExecSpec::at(2.0);
        assert!((e.duration(4.0) - 2.0).abs() < 1e-12);
        assert!((e.energy(4.0) - 16.0).abs() < 1e-12); // w·f² = 4·4
    }

    #[test]
    fn vdd_exec_accounting() {
        // Two segments: 1 time unit at speed 1, 1 at speed 3 ⇒ work 4.
        let e = ExecSpec::Vdd {
            segments: vec![(1.0, 1.0), (3.0, 1.0)],
        };
        assert!((e.work(4.0) - 4.0).abs() < 1e-12);
        assert!((e.duration(4.0) - 2.0).abs() < 1e-12);
        assert!((e.energy(4.0) - (1.0 + 27.0)).abs() < 1e-12);
    }

    #[test]
    fn reexecution_charges_both() {
        let ts = TaskSchedule::twice(1.0, 2.0);
        assert!(ts.is_reexecuted());
        assert!((ts.duration(2.0) - 3.0).abs() < 1e-12); // 2/1 + 2/2
        assert!((ts.energy(2.0) - (2.0 + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn failure_prob_multiplies() {
        let rel = ReliabilityModel::typical(1.0, 2.0, 1.6);
        let ts = TaskSchedule::twice(1.2, 1.2);
        let w = 1.0;
        let p = rel.failure_prob(w, 1.2);
        assert!((ts.failure_prob(&rel, w) - p * p).abs() < 1e-15);
    }

    #[test]
    fn makespan_on_chain() {
        let dag = generators::chain(&[2.0, 4.0]);
        let m = Mapping::single_processor(vec![0, 1]);
        let s = Schedule::from_speeds(&[1.0, 2.0]);
        assert!((s.makespan(&dag, &m).unwrap() - 4.0).abs() < 1e-12);
        assert!((s.energy(&dag) - (2.0 + 16.0)).abs() < 1e-12);
    }

    #[test]
    fn makespan_fork_on_parallel_processors() {
        let dag = generators::fork(1.0, &[2.0, 6.0]);
        let m = Mapping::new(vec![0, 1, 2], vec![vec![0], vec![1], vec![2]]).unwrap();
        let s = Schedule::uniform(3, 2.0);
        // source 0.5, then max(1, 3)
        assert!((s.makespan(&dag, &m).unwrap() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn validation_flags_bad_speed() {
        let dag = generators::chain(&[1.0]);
        let m = Mapping::single_processor(vec![0]);
        let model = SpeedModel::discrete(vec![1.0, 2.0]);
        let bad = Schedule::from_speeds(&[1.5]);
        assert!(bad.validate(&dag, &model, &m, None).is_err());
        let good = Schedule::from_speeds(&[2.0]);
        good.validate(&dag, &model, &m, None).unwrap();
    }

    #[test]
    fn validation_flags_vdd_work_mismatch() {
        let dag = generators::chain(&[4.0]);
        let m = Mapping::single_processor(vec![0]);
        let model = SpeedModel::vdd_hopping(vec![1.0, 3.0]);
        let bad = Schedule {
            tasks: vec![TaskSchedule {
                executions: vec![ExecSpec::Vdd {
                    segments: vec![(1.0, 1.0)],
                }],
            }],
        };
        assert!(bad.validate(&dag, &model, &m, None).is_err());
    }

    #[test]
    fn validation_rejects_vdd_under_discrete() {
        let dag = generators::chain(&[4.0]);
        let m = Mapping::single_processor(vec![0]);
        let model = SpeedModel::discrete(vec![1.0, 3.0]);
        let s = Schedule {
            tasks: vec![TaskSchedule {
                executions: vec![ExecSpec::Vdd {
                    segments: vec![(1.0, 1.0), (3.0, 1.0)],
                }],
            }],
        };
        assert!(s.validate(&dag, &model, &m, None).is_err());
    }

    #[test]
    fn validation_checks_deadline() {
        let dag = generators::chain(&[2.0, 2.0]);
        let m = Mapping::single_processor(vec![0, 1]);
        let model = SpeedModel::continuous(0.5, 2.0);
        let s = Schedule::uniform(2, 1.0); // makespan 4
        assert!(s.validate(&dag, &model, &m, Some(4.0)).is_ok());
        assert!(s.validate(&dag, &model, &m, Some(3.0)).is_err());
    }

    #[test]
    fn reliability_check() {
        let dag = generators::chain(&[1.0, 1.0]);
        let rel = ReliabilityModel::typical(1.0, 2.0, 1.6);
        let ok = Schedule::uniform(2, 1.8);
        assert!(ok.reliability_ok(&dag, &rel));
        let slow = Schedule::uniform(2, 1.2);
        assert!(!slow.reliability_ok(&dag, &rel));
        // re-execution at a low speed restores the constraint
        let g = rel.reexec_equal_speed_min(1.0);
        let re = Schedule {
            tasks: vec![TaskSchedule::twice(g, g); 2],
        };
        assert!(re.reliability_ok(&dag, &rel));
    }
}
