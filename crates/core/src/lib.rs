//! # ea-core
//!
//! The primary contribution of the reproduced paper — *"Energy-aware
//! scheduling: models and complexity results"* (G. Aupy, IPDPSW 2012) —
//! as a Rust library:
//!
//! * [`speed`] — the four speed models (CONTINUOUS, DISCRETE, VDD-HOPPING,
//!   INCREMENTAL).
//! * [`reliability`] — the DVFS-coupled transient-fault model (Eq. (1)).
//! * [`platform`] / [`schedule`] — mapped platforms, augmented DAGs,
//!   schedules and the three criteria (makespan, energy, reliability).
//! * [`listsched`] — the critical-path list scheduler used to produce
//!   mappings when only a bare DAG is given.
//! * [`bicrit`] — BI-CRIT solvers behind one unified entry point:
//!   [`bicrit::solve`] dispatches an [`Instance`] + [`speed::SpeedModel`] +
//!   [`bicrit::SolveOptions`] to the per-model algorithms (closed forms /
//!   convex program for CONTINUOUS, the linear program for VDD-HOPPING,
//!   exact branch-and-bound + DP for DISCRETE, the rounding approximation
//!   for INCREMENTAL) and returns a model-agnostic [`bicrit::Solution`]
//!   convertible to a [`schedule::Schedule`].
//! * [`tricrit`] — TRI-CRIT solvers: the chain strategy (slow everything
//!   equally, then pick the re-execution set), the polynomial fork
//!   algorithm, the two heuristic families H-A/H-B and their best-of, and
//!   the VDD-hopping adaptation.
//! * [`reductions`] — executable NP-hardness gadgets (2-PARTITION ↪
//!   DISCRETE BI-CRIT).
//!
//! # Quickstart
//!
//! Build an [`Instance`] (a mapped DAG plus a deadline), pick a
//! [`SpeedModel`], and let [`bicrit::solve`] route to the right
//! algorithm:
//!
//! ```
//! use ea_core::bicrit::{self, SolveOptions};
//! use ea_core::speed::SpeedModel;
//! use ea_core::Instance;
//!
//! let inst = Instance::single_chain(&[1.0, 2.0, 3.0], 5.0)?;
//! let model = SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]);
//! let sol = bicrit::solve(&inst, &model, &SolveOptions::default())?;
//! assert!(sol.makespan <= inst.deadline * (1.0 + 1e-9));
//! # Ok::<(), ea_core::CoreError>(())
//! ```
//!
//! Whole trade-off curves come from [`bicrit::pareto::trace_front`],
//! which sweeps the deadline axis with warm-started solves.

#![warn(missing_docs)]

pub mod bicrit;
pub mod digest;
pub mod error;
pub mod ext;
pub mod instance;
pub mod listsched;
pub mod platform;
pub mod reductions;
pub mod reliability;
pub mod schedule;
pub mod speed;
pub mod tricrit;

pub use bicrit::{solve as solve_bicrit, Solution, SolveOptions, SpeedProfile};
pub use error::CoreError;
pub use instance::Instance;
pub use speed::SpeedModel;
