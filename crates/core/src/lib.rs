//! # ea-core
//!
//! The primary contribution of the reproduced paper — *"Energy-aware
//! scheduling: models and complexity results"* (G. Aupy, IPDPSW 2012) —
//! as a Rust library:
//!
//! * [`speed`] — the four speed models (CONTINUOUS, DISCRETE, VDD-HOPPING,
//!   INCREMENTAL).
//! * [`reliability`] — the DVFS-coupled transient-fault model (Eq. (1)).
//! * [`platform`] / [`schedule`] — mapped platforms, augmented DAGs,
//!   schedules and the three criteria (makespan, energy, reliability).
//! * [`listsched`] — the critical-path list scheduler used to produce
//!   mappings when only a bare DAG is given.
//! * [`bicrit`] — BI-CRIT solvers: closed forms for chains/forks/trees/SP
//!   graphs, the convex program for general DAGs (CONTINUOUS), the linear
//!   program (VDD-HOPPING), exact branch-and-bound + DP (DISCRETE), and the
//!   rounding approximation (INCREMENTAL).
//! * [`tricrit`] — TRI-CRIT solvers: the chain strategy (slow everything
//!   equally, then pick the re-execution set), the polynomial fork
//!   algorithm, the two heuristic families H-A/H-B and their best-of, and
//!   the VDD-hopping adaptation.
//! * [`reductions`] — executable NP-hardness gadgets (2-PARTITION ↪
//!   DISCRETE BI-CRIT).

pub mod bicrit;
pub mod error;
pub mod ext;
pub mod instance;
pub mod listsched;
pub mod platform;
pub mod reductions;
pub mod reliability;
pub mod schedule;
pub mod speed;
pub mod tricrit;

pub use error::CoreError;
pub use instance::Instance;
