//! Error types shared across the core solvers.

use std::fmt;

/// Errors raised by the scheduling models and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A mapping is internally inconsistent or contradicts the DAG.
    InvalidMapping(String),
    /// The deadline cannot be met even at maximal speed.
    InfeasibleDeadline {
        /// The makespan at maximal speed — the smallest meetable deadline.
        required: f64,
        /// The deadline that was asked for.
        deadline: f64,
    },
    /// No admissible speed assignment satisfies all constraints.
    Infeasible(String),
    /// A schedule failed validation.
    InvalidSchedule(String),
    /// A numerical subroutine failed (convex solver, LP, bisection).
    Numerical(String),
    /// The requested structure does not match (e.g. fork solver on a
    /// non-fork graph).
    StructureMismatch(String),
    /// A solver was handed a [`crate::speed::SpeedModel`] variant it does
    /// not implement (use the `bicrit::solve` dispatcher to route by
    /// model).
    ModelMismatch {
        /// The model family the solver implements.
        expected: &'static str,
        /// Debug rendering of the model actually passed.
        got: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidMapping(m) => write!(f, "invalid mapping: {m}"),
            CoreError::InfeasibleDeadline { required, deadline } => write!(
                f,
                "deadline {deadline} infeasible: even at fmax the makespan is {required}"
            ),
            CoreError::Infeasible(m) => write!(f, "infeasible: {m}"),
            CoreError::InvalidSchedule(m) => write!(f, "invalid schedule: {m}"),
            CoreError::Numerical(m) => write!(f, "numerical failure: {m}"),
            CoreError::StructureMismatch(m) => write!(f, "structure mismatch: {m}"),
            CoreError::ModelMismatch { expected, got } => {
                write!(f, "model mismatch: solver implements {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for CoreError {}
