//! Speed models (paper, Section II).
//!
//! Four models govern which execution speeds a processor may use:
//! CONTINUOUS (any `f ∈ [f_min, f_max]`), DISCRETE (an arbitrary finite
//! mode set), VDD-HOPPING (the same mode set, but a task may *mix* two or
//! more modes during its execution), and INCREMENTAL (modes regularly
//! spaced by `δ` between `f_min` and `f_max` — "the modern counterpart of a
//! potentiometer knob").

use serde::{Deserialize, Serialize};

/// Tolerance used when checking speed admissibility.
pub const SPEED_EPS: f64 = 1e-9;

/// A speed model, as defined in Section II of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpeedModel {
    /// Arbitrary real speeds in `[fmin, fmax]`.
    Continuous {
        /// Smallest admissible speed.
        fmin: f64,
        /// Largest admissible speed.
        fmax: f64,
    },
    /// A finite set of modes; one mode per task execution.
    Discrete {
        /// The admissible modes, sorted ascending and deduplicated.
        modes: Vec<f64>,
    },
    /// A finite set of modes; a task may switch modes mid-execution.
    VddHopping {
        /// The admissible modes, sorted ascending and deduplicated.
        modes: Vec<f64>,
    },
    /// Modes `fmin + i·δ` for integer `i`, up to `fmax`; one per execution.
    Incremental {
        /// The grid origin (slowest mode).
        fmin: f64,
        /// Upper bound on the grid (the top mode is the largest
        /// `fmin + i·δ ≤ fmax`).
        fmax: f64,
        /// The grid spacing `δ`.
        delta: f64,
    },
}

impl SpeedModel {
    /// The model family's short lowercase name (`"continuous"`,
    /// `"discrete"`, `"vdd-hopping"`, `"incremental"`) — stable across
    /// parameters, handy for CSV columns and plot legends.
    pub fn name(&self) -> &'static str {
        match self {
            SpeedModel::Continuous { .. } => "continuous",
            SpeedModel::Discrete { .. } => "discrete",
            SpeedModel::VddHopping { .. } => "vdd-hopping",
            SpeedModel::Incremental { .. } => "incremental",
        }
    }

    /// A continuous model; panics on an empty or invalid range.
    pub fn continuous(fmin: f64, fmax: f64) -> Self {
        assert!(fmin > 0.0 && fmax >= fmin, "need 0 < fmin ≤ fmax");
        SpeedModel::Continuous { fmin, fmax }
    }

    /// A discrete model from an unsorted mode list (sorted, deduplicated).
    pub fn discrete(modes: impl Into<Vec<f64>>) -> Self {
        SpeedModel::Discrete {
            modes: normalise_modes(modes.into()),
        }
    }

    /// A VDD-hopping model from an unsorted mode list.
    pub fn vdd_hopping(modes: impl Into<Vec<f64>>) -> Self {
        SpeedModel::VddHopping {
            modes: normalise_modes(modes.into()),
        }
    }

    /// An incremental model; panics on invalid parameters.
    pub fn incremental(fmin: f64, fmax: f64, delta: f64) -> Self {
        assert!(
            fmin > 0.0 && fmax >= fmin && delta > 0.0,
            "invalid incremental parameters"
        );
        SpeedModel::Incremental { fmin, fmax, delta }
    }

    /// Smallest admissible speed.
    pub fn fmin(&self) -> f64 {
        match self {
            SpeedModel::Continuous { fmin, .. } | SpeedModel::Incremental { fmin, .. } => *fmin,
            SpeedModel::Discrete { modes } | SpeedModel::VddHopping { modes } => modes[0],
        }
    }

    /// Largest admissible speed.
    pub fn fmax(&self) -> f64 {
        match self {
            SpeedModel::Continuous { fmax, .. } => *fmax,
            SpeedModel::Incremental { fmin, fmax, delta } => {
                // Largest grid point not exceeding fmax.
                let steps = ((fmax - fmin) / delta + SPEED_EPS).floor();
                fmin + steps * delta
            }
            SpeedModel::Discrete { modes } | SpeedModel::VddHopping { modes } => {
                *modes.last().expect("non-empty modes")
            }
        }
    }

    /// The discrete mode list, if the model has one (all but CONTINUOUS).
    pub fn modes(&self) -> Option<Vec<f64>> {
        match self {
            SpeedModel::Continuous { .. } => None,
            SpeedModel::Discrete { modes } | SpeedModel::VddHopping { modes } => {
                Some(modes.clone())
            }
            SpeedModel::Incremental { fmin, fmax, delta } => {
                let mut v = Vec::new();
                let mut i = 0usize;
                loop {
                    let f = fmin + (i as f64) * delta;
                    if f > fmax + SPEED_EPS {
                        break;
                    }
                    v.push(f.min(*fmax));
                    i += 1;
                }
                Some(v)
            }
        }
    }

    /// True if tasks may change speed mid-execution (CONTINUOUS allows it
    /// trivially — although a constant speed is always optimal there — and
    /// VDD-HOPPING is defined by it).
    pub fn allows_mid_task_switch(&self) -> bool {
        matches!(
            self,
            SpeedModel::Continuous { .. } | SpeedModel::VddHopping { .. }
        )
    }

    /// True if `f` is an admissible (single) speed under this model.
    pub fn admissible(&self, f: f64) -> bool {
        match self {
            SpeedModel::Continuous { fmin, fmax } => f >= fmin - SPEED_EPS && f <= fmax + SPEED_EPS,
            SpeedModel::Discrete { modes } | SpeedModel::VddHopping { modes } => modes
                .iter()
                .any(|m| (m - f).abs() <= SPEED_EPS * m.max(1.0)),
            SpeedModel::Incremental { fmin, fmax, delta } => {
                if f < fmin - SPEED_EPS || f > fmax + SPEED_EPS {
                    return false;
                }
                let k = (f - fmin) / delta;
                (k - k.round()).abs() <= 1e-6
            }
        }
    }

    /// Smallest admissible speed `≥ f`, or `None` if `f` exceeds `fmax`.
    ///
    /// Rounding **up** preserves deadline feasibility (execution can only
    /// get faster) — this is the key step of the paper's INCREMENTAL
    /// approximation algorithm.
    pub fn round_up(&self, f: f64) -> Option<f64> {
        match self {
            SpeedModel::Continuous { fmin, fmax } => {
                if f > fmax + SPEED_EPS {
                    None
                } else {
                    Some(f.max(*fmin))
                }
            }
            SpeedModel::Discrete { modes } | SpeedModel::VddHopping { modes } => {
                modes.iter().copied().find(|&m| m >= f - SPEED_EPS)
            }
            SpeedModel::Incremental { fmin, fmax, delta } => {
                if f > self.fmax() + SPEED_EPS {
                    return None;
                }
                if f <= *fmin {
                    return Some(*fmin);
                }
                let k = ((f - fmin) / delta - SPEED_EPS).ceil();
                let cand = fmin + k * delta;
                if cand > *fmax + SPEED_EPS {
                    None
                } else {
                    Some(cand)
                }
            }
        }
    }

    /// The two adjacent modes bracketing `f` (`lo ≤ f ≤ hi`), used by the
    /// VDD-hopping adaptation. When `f` coincides with a mode, both ends
    /// equal that mode. `None` if `f` lies outside the mode range.
    pub fn bracket(&self, f: f64) -> Option<(f64, f64)> {
        let modes = self.modes()?;
        if f < modes[0] - SPEED_EPS || f > *modes.last().expect("non-empty") + SPEED_EPS {
            return None;
        }
        let mut lo = modes[0];
        for &m in &modes {
            if (m - f).abs() <= SPEED_EPS * m.max(1.0) {
                return Some((m, m));
            }
            if m <= f + SPEED_EPS {
                lo = m;
            } else {
                return Some((lo, m));
            }
        }
        Some((lo, *modes.last().expect("non-empty")))
    }
}

fn normalise_modes(mut modes: Vec<f64>) -> Vec<f64> {
    assert!(!modes.is_empty(), "at least one mode required");
    assert!(
        modes.iter().all(|&m| m.is_finite() && m > 0.0),
        "modes must be positive finite"
    );
    modes.sort_by(|a, b| a.partial_cmp(b).expect("finite modes"));
    modes.dedup_by(|a, b| (*a - *b).abs() <= SPEED_EPS);
    modes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_basics() {
        let m = SpeedModel::continuous(0.5, 2.0);
        assert_eq!(m.fmin(), 0.5);
        assert_eq!(m.fmax(), 2.0);
        assert!(m.modes().is_none());
        assert!(m.admissible(1.3));
        assert!(!m.admissible(2.5));
        assert_eq!(m.round_up(0.1), Some(0.5));
        assert_eq!(m.round_up(1.7), Some(1.7));
        assert_eq!(m.round_up(2.5), None);
        assert!(m.allows_mid_task_switch());
    }

    #[test]
    fn discrete_sorts_and_dedups() {
        let m = SpeedModel::discrete(vec![2.0, 1.0, 1.0, 3.0]);
        assert_eq!(m.modes().unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.fmin(), 1.0);
        assert_eq!(m.fmax(), 3.0);
        assert!(m.admissible(2.0));
        assert!(!m.admissible(2.5));
        assert!(!m.allows_mid_task_switch());
    }

    #[test]
    fn discrete_round_up() {
        let m = SpeedModel::discrete(vec![1.0, 2.0, 3.0]);
        assert_eq!(m.round_up(0.2), Some(1.0));
        assert_eq!(m.round_up(1.5), Some(2.0));
        assert_eq!(m.round_up(3.0), Some(3.0));
        assert_eq!(m.round_up(3.1), None);
    }

    #[test]
    fn vdd_bracket() {
        let m = SpeedModel::vdd_hopping(vec![1.0, 2.0, 4.0]);
        assert_eq!(m.bracket(1.5), Some((1.0, 2.0)));
        assert_eq!(m.bracket(3.0), Some((2.0, 4.0)));
        assert_eq!(m.bracket(2.0), Some((2.0, 2.0))); // exact mode: degenerate bracket
        assert_eq!(m.bracket(1.0), Some((1.0, 1.0)));
        assert_eq!(m.bracket(4.0), Some((4.0, 4.0)));
        assert_eq!(m.bracket(0.5), None);
        assert_eq!(m.bracket(4.5), None);
    }

    #[test]
    fn incremental_grid() {
        let m = SpeedModel::incremental(1.0, 2.05, 0.25);
        // grid: 1.0, 1.25, 1.5, 1.75, 2.0 (2.25 exceeds fmax)
        assert_eq!(m.modes().unwrap().len(), 5);
        assert!((m.fmax() - 2.0).abs() < 1e-12);
        assert!(m.admissible(1.75));
        assert!(!m.admissible(1.8));
        assert_eq!(m.round_up(1.3), Some(1.5));
        assert_eq!(m.round_up(0.2), Some(1.0));
        assert_eq!(m.round_up(2.2), None);
    }

    #[test]
    fn incremental_round_up_exact_gridpoint() {
        let m = SpeedModel::incremental(1.0, 3.0, 0.5);
        let r = m.round_up(1.5).unwrap();
        assert!(
            (r - 1.5).abs() < 1e-9,
            "exact grid point must not round past itself: {r}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one mode")]
    fn empty_modes_rejected() {
        SpeedModel::discrete(Vec::<f64>::new());
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn non_positive_mode_rejected() {
        SpeedModel::discrete(vec![1.0, -2.0]);
    }
}
