//! BI-CRIT: minimise energy subject to a deadline (paper, Definition 1).
//!
//! One submodule per speed model, mirroring the paper's complexity map:
//!
//! | model        | status        | solver here                              |
//! |--------------|---------------|------------------------------------------|
//! | CONTINUOUS   | closed forms / convex | [`continuous`]                   |
//! | VDD-HOPPING  | polynomial (LP)       | [`vdd`]                          |
//! | DISCRETE     | NP-complete           | [`discrete`] (exact B&B + DP)    |
//! | INCREMENTAL  | NP-complete, approximable | [`incremental`]              |
//!
//! # The unified entry point
//!
//! Consumers should not pick a solver by hand: [`solve`] dispatches on the
//! [`SpeedModel`] and returns a model-agnostic [`Solution`] — a per-task
//! [`SpeedProfile`], the energy, the achieved worst-case makespan, a lower
//! bound when one is certified, and per-solver [`SolveStats`]. All stray
//! solver knobs (barrier tolerances, the branch-and-bound bound, the
//! INCREMENTAL accuracy `K`) live in [`SolveOptions`], whose defaults are
//! paper-faithful.
//!
//! ```
//! use ea_core::bicrit::{self, SolveOptions};
//! use ea_core::speed::SpeedModel;
//! use ea_core::Instance;
//!
//! let inst = Instance::single_chain(&[1.0, 2.0, 3.0], 5.0).unwrap();
//! let model = SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]);
//! let sol = bicrit::solve(&inst, &model, &SolveOptions::default()).unwrap();
//! assert!(sol.makespan <= inst.deadline * (1.0 + 1e-9));
//! let schedule = sol.to_schedule();
//! ```
//!
//! # Whole trade-off curves
//!
//! [`pareto::trace_front`] sweeps the deadline axis and returns the full
//! energy/deadline Pareto front for any model, warm-starting each solve
//! from the previous point (barrier restarts, seeded branch-and-bound
//! incumbents, reused accuracy bracketing) — an order of magnitude
//! cheaper than cold per-point `solve` calls.

pub mod continuous;
pub mod discrete;
pub mod incremental;
pub mod pareto;
pub mod vdd;

pub use discrete::BnbBound;
pub use pareto::{trace_front, FrontOptions, FrontPoint, ParetoFront};

use crate::error::CoreError;
use crate::instance::Instance;
use crate::schedule::{ExecSpec, Schedule, TaskSchedule};
use crate::speed::SpeedModel;
use ea_convex::BarrierOptions;
use ea_taskgraph::analysis;
use serde::{Deserialize, Serialize};

/// Solver knobs shared by every BI-CRIT model, with paper-faithful
/// defaults. Construct with `SolveOptions::default()` and override the
/// fields you care about (or use the `with_*` helpers).
///
/// ```
/// use ea_core::bicrit::{BnbBound, SolveOptions};
///
/// let opts = SolveOptions::default()
///     .with_bnb_bound(BnbBound::Simple)
///     .with_accuracy_k(100);
/// assert_eq!(opts.accuracy_k, 100);
/// ```
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Log-barrier tolerances for the CONTINUOUS convex program (also the
    /// stage-1 solve of the INCREMENTAL approximation).
    pub barrier: BarrierOptions,
    /// Bound strategy of the DISCRETE branch-and-bound. The VDD-hopping LP
    /// relaxation (the default) prunes far harder than the simple bound.
    pub bnb_bound: BnbBound,
    /// Accuracy knob `K` of the INCREMENTAL approximation: the continuous
    /// stage is solved to relative accuracy `1/K`, contributing the
    /// `(1 + 1/K)²` term of the proven factor.
    pub accuracy_k: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            barrier: BarrierOptions::default(),
            bnb_bound: BnbBound::VddRelaxation,
            accuracy_k: 50,
        }
    }
}

impl SolveOptions {
    /// Overrides the DISCRETE branch-and-bound bound strategy.
    pub fn with_bnb_bound(mut self, bound: BnbBound) -> Self {
        self.bnb_bound = bound;
        self
    }

    /// Overrides the INCREMENTAL accuracy knob `K` (clamped to ≥ 1).
    pub fn with_accuracy_k(mut self, k: usize) -> Self {
        self.accuracy_k = k.max(1);
        self
    }

    /// Overrides the convex-solver (barrier) options.
    pub fn with_barrier(mut self, barrier: BarrierOptions) -> Self {
        self.barrier = barrier;
        self
    }
}

/// How one task runs in a [`Solution`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpeedProfile {
    /// A single constant speed for the whole execution.
    Constant(f64),
    /// VDD-hopping `(speed, time)` segments in execution order.
    Segments(Vec<(f64, f64)>),
}

impl SpeedProfile {
    /// The execution spec this profile denotes.
    pub fn to_exec(&self) -> ExecSpec {
        match self {
            SpeedProfile::Constant(f) => ExecSpec::at(*f),
            SpeedProfile::Segments(segs) => ExecSpec::Vdd {
                segments: segs.clone(),
            },
        }
    }

    /// The constant speed, if the profile is single-speed.
    pub fn constant(&self) -> Option<f64> {
        match self {
            SpeedProfile::Constant(f) => Some(*f),
            SpeedProfile::Segments(_) => None,
        }
    }
}

/// Per-solver diagnostics carried alongside a [`Solution`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Branch-and-bound search-tree nodes explored (DISCRETE).
    pub bnb_nodes: Option<usize>,
    /// Simplex pivots of the LP (VDD-HOPPING).
    pub lp_pivots: Option<usize>,
    /// Measured approximation ratio `energy / lower_bound` (INCREMENTAL).
    pub approx_ratio: Option<f64>,
    /// The certified factor `(1+δ/f_min)²·(1+α)²` with `α ≈ 1/K` the
    /// continuous stage's achieved accuracy (INCREMENTAL).
    pub proven_factor: Option<f64>,
}

/// A model-agnostic BI-CRIT solution, as returned by [`solve`].
///
/// ```
/// use ea_core::bicrit::{self, SolveOptions};
/// use ea_core::speed::SpeedModel;
/// use ea_core::Instance;
///
/// let inst = Instance::single_chain(&[2.0, 2.0], 2.0).unwrap();
/// let sol = bicrit::solve(&inst, &SpeedModel::continuous(0.5, 2.0),
///                         &SolveOptions::default()).unwrap();
/// // A chain runs at one constant speed (Σw/D = 2): E = Σw · f² = 16.
/// let speeds = sol.constant_speeds().expect("single-speed profiles");
/// assert!(speeds.iter().all(|f| (f - 2.0).abs() < 1e-9));
/// assert!((sol.energy - 16.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// The speed model the solution is admissible under.
    pub model: SpeedModel,
    /// Per-task speed profile, indexed by task id.
    pub profiles: Vec<SpeedProfile>,
    /// Total dynamic energy `Σ E_i`.
    pub energy: f64,
    /// Achieved worst-case makespan on the instance (≤ its deadline).
    pub makespan: f64,
    /// Certified lower bound on the optimal energy, when the solver
    /// produces one (CONTINUOUS and INCREMENTAL; `None` for the exact
    /// DISCRETE/VDD optima, where `energy` itself is optimal).
    pub lower_bound: Option<f64>,
    /// Per-solver diagnostics.
    pub stats: SolveStats,
}

impl Solution {
    /// Converts the per-task profiles into a [`Schedule`] (one execution
    /// per task; TRI-CRIT re-execution is layered on top separately).
    pub fn to_schedule(&self) -> Schedule {
        Schedule {
            tasks: self
                .profiles
                .iter()
                .map(|p| TaskSchedule {
                    executions: vec![p.to_exec()],
                })
                .collect(),
        }
    }

    /// Per-task constant speeds, if every profile is single-speed
    /// (always true for CONTINUOUS / DISCRETE / INCREMENTAL solutions).
    pub fn constant_speeds(&self) -> Option<Vec<f64>> {
        self.profiles.iter().map(SpeedProfile::constant).collect()
    }

    /// Largest number of distinct speeds any single task uses (1 for
    /// constant profiles; the VDD-hopping LP's classical property bounds
    /// it by 2).
    pub fn max_modes_per_task(&self) -> usize {
        self.profiles
            .iter()
            .map(|p| match p {
                SpeedProfile::Constant(_) => 1,
                SpeedProfile::Segments(segs) => segs.len(),
            })
            .max()
            .unwrap_or(0)
    }

    /// True if every multi-speed task mixes only *adjacent* modes of the
    /// solution's model (vacuously true for constant profiles or a
    /// mode-less model).
    pub fn speeds_adjacent(&self) -> bool {
        let Some(modes) = self.model.modes() else {
            return true;
        };
        let index_of = |f: f64| {
            modes
                .iter()
                .position(|&m| (m - f).abs() <= 1e-9 * m.max(1.0))
        };
        self.profiles.iter().all(|p| match p {
            SpeedProfile::Constant(_) => true,
            SpeedProfile::Segments(segs) => {
                let mut idx: Vec<usize> = match segs
                    .iter()
                    .map(|&(f, _)| index_of(f))
                    .collect::<Option<Vec<_>>>()
                {
                    Some(v) => v,
                    None => return false, // a segment speed off the mode set
                };
                idx.sort_unstable();
                idx.windows(2).all(|w| w[1] - w[0] == 1)
            }
        })
    }

    fn from_speeds(
        inst: &Instance,
        model: &SpeedModel,
        speeds: &[f64],
        energy: f64,
        lower_bound: Option<f64>,
        stats: SolveStats,
    ) -> Self {
        let profiles: Vec<SpeedProfile> =
            speeds.iter().map(|&f| SpeedProfile::Constant(f)).collect();
        let durations: Vec<f64> = speeds
            .iter()
            .zip(inst.dag.weights())
            .map(|(&f, &w)| w / f)
            .collect();
        let makespan = analysis::critical_path_length(inst.augmented_dag(), &durations);
        Solution {
            model: model.clone(),
            profiles,
            energy,
            makespan,
            lower_bound,
            stats,
        }
    }
}

/// Solves BI-CRIT on `inst` under `model`, dispatching to the per-model
/// solver:
///
/// * [`SpeedModel::Continuous`] → [`continuous::solve`] (SP fast path,
///   convex program otherwise);
/// * [`SpeedModel::VddHopping`] → [`vdd::solve`] (the polynomial LP);
/// * [`SpeedModel::Discrete`] → [`discrete::solve`] (exact B&B, bound per
///   [`SolveOptions::bnb_bound`]);
/// * [`SpeedModel::Incremental`] → [`incremental::solve`] (the rounding
///   approximation with accuracy [`SolveOptions::accuracy_k`]).
///
/// Returns [`CoreError::InfeasibleDeadline`] when even `f_max` cannot meet
/// the deadline.
///
/// ```
/// use ea_core::bicrit::{self, SolveOptions};
/// use ea_core::speed::SpeedModel;
/// use ea_core::{CoreError, Instance};
///
/// let inst = Instance::single_chain(&[1.0, 1.0], 4.0)?;
/// let opts = SolveOptions::default();
/// // The same instance under two models: DISCRETE can never beat the
/// // mode-mixing VDD-HOPPING relaxation on the same mode set.
/// let vdd = bicrit::solve(&inst, &SpeedModel::vdd_hopping(vec![0.5, 1.0]), &opts)?;
/// let disc = bicrit::solve(&inst, &SpeedModel::discrete(vec![0.5, 1.0]), &opts)?;
/// assert!(vdd.energy <= disc.energy * (1.0 + 1e-9));
/// // An unmeetable deadline is a typed error, not a panic.
/// let tight = inst.with_deadline(0.1)?;
/// let err = bicrit::solve(&tight, &SpeedModel::discrete(vec![0.5, 1.0]), &opts);
/// assert!(matches!(err, Err(CoreError::InfeasibleDeadline { .. })));
/// # Ok::<(), CoreError>(())
/// ```
pub fn solve(
    inst: &Instance,
    model: &SpeedModel,
    opts: &SolveOptions,
) -> Result<Solution, CoreError> {
    match model {
        SpeedModel::Continuous { .. } => {
            let s = continuous::solve(inst, model, opts)?;
            Ok(Solution::from_speeds(
                inst,
                model,
                &s.speeds,
                s.energy,
                Some(s.lower_bound),
                SolveStats::default(),
            ))
        }
        SpeedModel::VddHopping { .. } => {
            let s = vdd::solve(inst, model, opts)?;
            let mut solution = Solution {
                model: model.clone(),
                profiles: s
                    .segments
                    .iter()
                    .map(|segs| SpeedProfile::Segments(segs.clone()))
                    .collect(),
                energy: s.energy,
                makespan: 0.0,
                lower_bound: None,
                stats: SolveStats {
                    lp_pivots: Some(s.pivots),
                    ..SolveStats::default()
                },
            };
            solution.makespan = analysis::critical_path_length(
                inst.augmented_dag(),
                &solution.to_schedule().durations(&inst.dag),
            );
            Ok(solution)
        }
        SpeedModel::Discrete { .. } => {
            let s = discrete::solve(inst, model, opts)?;
            Ok(Solution::from_speeds(
                inst,
                model,
                &s.speeds,
                s.energy,
                None,
                SolveStats {
                    bnb_nodes: Some(s.nodes),
                    ..SolveStats::default()
                },
            ))
        }
        SpeedModel::Incremental { .. } => {
            let s = incremental::solve(inst, model, opts)?;
            Ok(Solution::from_speeds(
                inst,
                model,
                &s.speeds,
                s.energy,
                Some(s.lower_bound),
                SolveStats {
                    approx_ratio: Some(s.ratio),
                    proven_factor: Some(s.proven_factor),
                    ..SolveStats::default()
                },
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use ea_taskgraph::generators;

    fn inst() -> Instance {
        let dag = generators::random_layered(4, 3, 0.4, 0.5, 2.0, 7);
        let inst = Instance::mapped_by_list_scheduling(dag, Platform::new(2), 2.0, f64::MAX)
            .expect("mapping succeeds");
        let d = 1.6 * inst.makespan_at_uniform_speed(2.0);
        inst.with_deadline(d).expect("positive deadline")
    }

    #[test]
    fn dispatch_routes_every_model() {
        let inst = inst();
        let opts = SolveOptions::default();
        let modes = vec![1.0, 1.25, 1.5, 1.75, 2.0];
        let models = [
            SpeedModel::continuous(1.0, 2.0),
            SpeedModel::vdd_hopping(modes.clone()),
            SpeedModel::discrete(modes),
            SpeedModel::incremental(1.0, 2.0, 0.25),
        ];
        for model in &models {
            let sol = solve(&inst, model, &opts).expect("feasible");
            assert_eq!(sol.profiles.len(), inst.n_tasks());
            assert!(sol.makespan <= inst.deadline * (1.0 + 1e-6), "{model:?}");
            sol.to_schedule()
                .validate(&inst.dag, model, &inst.mapping, Some(inst.deadline))
                .expect("dispatcher output must validate");
        }
    }

    #[test]
    fn stats_carry_solver_diagnostics() {
        let inst = inst();
        let opts = SolveOptions::default();
        let vdd = solve(&inst, &SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]), &opts).unwrap();
        assert!(vdd.stats.lp_pivots.expect("pivots recorded") > 0);
        let disc = solve(&inst, &SpeedModel::discrete(vec![1.0, 1.5, 2.0]), &opts).unwrap();
        assert!(disc.stats.bnb_nodes.expect("nodes recorded") > 0);
        let inc = solve(&inst, &SpeedModel::incremental(1.0, 2.0, 0.25), &opts).unwrap();
        let ratio = inc.stats.approx_ratio.expect("ratio recorded");
        let bound = inc.stats.proven_factor.expect("factor recorded");
        assert!(ratio <= bound + 1e-9);
    }

    #[test]
    fn constant_speeds_roundtrip() {
        let inst = inst();
        let sol = solve(
            &inst,
            &SpeedModel::continuous(1.0, 2.0),
            &SolveOptions::default(),
        )
        .expect("feasible");
        let speeds = sol.constant_speeds().expect("continuous is single-speed");
        assert_eq!(speeds.len(), inst.n_tasks());
        let e: f64 = speeds
            .iter()
            .zip(inst.dag.weights())
            .map(|(&f, &w)| w * f * f)
            .sum();
        assert!((e - sol.energy).abs() <= 1e-9 * sol.energy);
    }

    #[test]
    fn solution_serialises_to_json() {
        let inst = Instance::single_chain(&[1.0, 2.0], 4.0).unwrap();
        let sol = solve(
            &inst,
            &SpeedModel::vdd_hopping(vec![1.0, 2.0]),
            &SolveOptions::default(),
        )
        .expect("feasible");
        let json = serde_json::to_string(&sol).expect("serialises");
        assert!(json.contains("profiles"), "{json}");
    }

    #[test]
    fn model_mismatch_is_reported() {
        let inst = Instance::single_chain(&[1.0], 4.0).unwrap();
        let err = continuous::solve(
            &inst,
            &SpeedModel::discrete(vec![1.0, 2.0]),
            &SolveOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::ModelMismatch { .. }));
    }

    #[test]
    fn options_builders_compose() {
        let opts = SolveOptions::default()
            .with_bnb_bound(BnbBound::Simple)
            .with_accuracy_k(0);
        assert_eq!(opts.bnb_bound, BnbBound::Simple);
        assert_eq!(opts.accuracy_k, 1, "K is clamped to ≥ 1");
    }
}
