//! BI-CRIT: minimise energy subject to a deadline (paper, Definition 1).
//!
//! One submodule per speed model, mirroring the paper's complexity map:
//!
//! | model        | status        | solver here                              |
//! |--------------|---------------|------------------------------------------|
//! | CONTINUOUS   | closed forms / convex | [`continuous`]                   |
//! | VDD-HOPPING  | polynomial (LP)       | [`vdd`]                          |
//! | DISCRETE     | NP-complete           | [`discrete`] (exact B&B + DP)    |
//! | INCREMENTAL  | NP-complete, approximable | [`incremental`]              |

pub mod continuous;
pub mod discrete;
pub mod incremental;
pub mod vdd;
