//! INCREMENTAL BI-CRIT: the rounding approximation (paper, Section IV).
//!
//! The problem is NP-complete (it contains DISCRETE with a regular grid),
//! but the paper gives a polynomial approximation: *"with the INCREMENTAL
//! model, we can approximate the solution within a factor
//! `(1 + δ/f_min)²·(1 + 1/K)²`, in a time polynomial in the size of the
//! instance and in `K`"*.
//!
//! Algorithm implemented here:
//! 1. solve CONTINUOUS BI-CRIT on `[f_min, f̄]` (where `f̄` is the largest
//!    grid speed) to relative accuracy `1/K` — the `(1+1/K)²` term;
//! 2. round every speed **up** to the next admissible increment — the
//!    deadline stays satisfied (speeds only increase) and each task's
//!    energy grows by at most `((f+δ)/f)² ≤ (1+δ/f_min)²`.
//!
//! The continuous optimum lower-bounds the incremental optimum, so the
//! measured ratio `energy / lower_bound` is a *certified* approximation
//! factor, compared against the proven bound by experiment E5.

use super::{continuous, SolveOptions};
use crate::error::CoreError;
use crate::instance::Instance;
use crate::speed::SpeedModel;
use ea_convex::BarrierOptions;
use ea_taskgraph::Dag;

/// Result of the INCREMENTAL approximation.
#[derive(Debug, Clone)]
pub struct IncrementalSolution {
    /// Rounded (admissible) per-task speeds.
    pub speeds: Vec<f64>,
    /// Energy of the rounded schedule.
    pub energy: f64,
    /// Certified lower bound on the incremental optimum (continuous bound).
    pub lower_bound: f64,
    /// `energy / lower_bound` — the measured approximation factor.
    pub ratio: f64,
    /// The certified factor `(1+δ/f_min)²·(1+α)²`, where `α` is the
    /// continuous stage's achieved relative accuracy (≈ `1/K`, the
    /// paper's knob, once the accuracy loop converges). `ratio` is
    /// guaranteed to stay below it.
    pub proven_factor: f64,
    /// Continuous-stage speeds before rounding — the warm-start seed a
    /// deadline sweep hands to the next point.
    pub cont_speeds: Vec<f64>,
    /// Continuous-stage energy (the accuracy scale of the next warm solve).
    pub cont_energy: f64,
    /// The continuous stage's final barrier iterate (see
    /// [`super::continuous::ContinuousSolution::interior`]), preferred
    /// over `cont_speeds` when warm-starting the next point.
    pub cont_interior: Option<Vec<f64>>,
    /// Newton iterations spent across the continuous stage(s).
    pub newton_steps: usize,
}

/// Warm-start seed for [`solve_on_dag_warm`], taken from the
/// [`IncrementalSolution`] of the same DAG at a tighter deadline.
#[derive(Debug, Clone)]
pub struct IncrementalWarm {
    /// Continuous-stage speeds of the previous point.
    pub cont_speeds: Vec<f64>,
    /// Continuous-stage energy of the previous point (upper-bounds the new
    /// continuous optimum, so `cont_energy / K` is a sound initial
    /// accuracy target).
    pub cont_energy: f64,
    /// The previous point's barrier iterate, when its continuous stage
    /// ran the convex solver.
    pub cont_interior: Option<Vec<f64>>,
}

impl From<&IncrementalSolution> for IncrementalWarm {
    fn from(s: &IncrementalSolution) -> Self {
        IncrementalWarm {
            cont_speeds: s.cont_speeds.clone(),
            cont_energy: s.cont_energy,
            cont_interior: s.cont_interior.clone(),
        }
    }
}

/// Runs the INCREMENTAL approximation on an [`Instance`], with accuracy
/// `K` taken from [`SolveOptions::accuracy_k`].
///
/// `model` must be [`SpeedModel::Incremental`]; other variants are routed
/// by [`crate::bicrit::solve`].
pub fn solve(
    inst: &Instance,
    model: &SpeedModel,
    opts: &SolveOptions,
) -> Result<IncrementalSolution, CoreError> {
    let SpeedModel::Incremental { fmin, fmax, delta } = *model else {
        return Err(CoreError::ModelMismatch {
            expected: "INCREMENTAL",
            got: format!("{model:?}"),
        });
    };
    solve_on_dag(
        inst.augmented_dag(),
        inst.deadline,
        fmin,
        fmax,
        delta,
        opts.accuracy_k,
    )
}

/// The approximation on a bare augmented DAG (the algorithm core behind
/// [`solve`]).
///
/// `k` controls the accuracy of the continuous stage (relative `1/k`);
/// higher is tighter and slower.
pub fn solve_on_dag(
    aug: &Dag,
    deadline: f64,
    fmin: f64,
    fmax: f64,
    delta: f64,
    k: usize,
) -> Result<IncrementalSolution, CoreError> {
    solve_on_dag_warm(aug, deadline, fmin, fmax, delta, k, None)
}

/// [`solve_on_dag`] with an optional warm start from a tighter-deadline
/// solve of the same DAG: the previous continuous energy replaces the
/// cold path's rough stage-1a solve as the accuracy scale (its
/// "bracketing" of the optimum), and the previous continuous speeds warm
/// the barrier solve itself. The accuracy guarantee is preserved: if the
/// certified gap of the warm solve exceeds `energy/K` (the previous
/// energy over-estimated the scale), the stage re-solves tighter.
pub fn solve_on_dag_warm(
    aug: &Dag,
    deadline: f64,
    fmin: f64,
    fmax: f64,
    delta: f64,
    k: usize,
    warm: Option<&IncrementalWarm>,
) -> Result<IncrementalSolution, CoreError> {
    assert!(k >= 1, "K must be ≥ 1");
    let model = SpeedModel::incremental(fmin, fmax, delta);
    // Solve the continuous relaxation capped at the largest *grid* speed so
    // rounding up always lands on an admissible mode.
    let f_grid_max = model.fmax();

    let mut newton_steps = 0usize;
    // Stage 1a: an accuracy scale for the 1/K gap target — the previous
    // point's continuous energy when warm, else a rough cold solve. The
    // previous barrier iterate (when present) beats reconstructing from
    // speeds; the cold path likewise hands its rough iterate to stage 1b
    // (same deadline, so it is strictly feasible).
    let (scale_energy, mut warm_buf): (f64, Option<Vec<f64>>) = match warm {
        Some(wi) if wi.cont_speeds.len() == aug.len() => (
            wi.cont_energy,
            Some(
                wi.cont_interior
                    .clone()
                    .unwrap_or_else(|| wi.cont_speeds.clone()),
            ),
        ),
        _ => {
            let rough = continuous::solve_general(
                aug,
                deadline,
                fmin,
                f_grid_max,
                &BarrierOptions::default(),
            )?;
            newton_steps += rough.newton_steps;
            (rough.energy, rough.interior)
        }
    };
    // Stage 1b: solve to relative accuracy 1/K (absolute gap E/K),
    // tightening (at most twice) if the scale proved too loose — each
    // re-solve warm-starts from the iterate it just produced.
    let mut tol = (scale_energy / k as f64).max(1e-12);
    let mut tol_used = tol;
    let mut cont = None;
    for _ in 0..3 {
        let opts = BarrierOptions {
            tol,
            ..BarrierOptions::default()
        };
        let sol = continuous::solve_general_warm(
            aug,
            deadline,
            fmin,
            f_grid_max,
            &opts,
            warm_buf.as_deref(),
        )?;
        newton_steps += sol.newton_steps;
        tol_used = tol;
        let target = (sol.energy / k as f64).max(1e-12);
        let done = tol <= target * (1.0 + 1e-9);
        if !done {
            warm_buf = sol.interior.clone();
        }
        cont = Some(sol);
        if done {
            break;
        }
        tol = target;
    }
    let mut cont = cont.expect("at least one continuous solve ran");
    cont.newton_steps = newton_steps;

    // Stage 2: round up.
    let mut speeds = Vec::with_capacity(aug.len());
    let mut energy = 0.0;
    for (i, &f) in cont.speeds.iter().enumerate() {
        let fr = model
            .round_up(f)
            .ok_or_else(|| CoreError::Numerical(format!("rounding speed {f} exceeded the grid")))?;
        energy += aug.weight(i) * fr * fr;
        speeds.push(fr);
    }

    let lower_bound = if cont.lower_bound > 0.0 {
        cont.lower_bound
    } else {
        // Forced all-fmax case: that energy is itself optimal.
        cont.energy
    };
    let ratio = if lower_bound > 0.0 {
        energy / lower_bound
    } else {
        1.0
    };
    // The certified accuracy actually achieved by the continuous stage:
    // its gap is at most `tol`, so `cont.energy ≤ lb·(1 + tol/lb)`. Once
    // the tightening loop converges α ≤ ~1/K (the paper's knob); if the
    // iteration cap was hit, the reported factor honestly reflects the
    // looser certificate instead of overclaiming (1+1/K)².
    let alpha = if cont.lower_bound > 0.0 {
        tol_used / lower_bound
    } else {
        0.0 // forced all-fmax: the continuous stage is exact
    };
    let proven_factor = (1.0 + delta / fmin).powi(2) * (1.0 + alpha).powi(2);
    Ok(IncrementalSolution {
        speeds,
        energy,
        lower_bound,
        ratio,
        proven_factor,
        cont_speeds: cont.speeds,
        cont_energy: cont.energy,
        cont_interior: cont.interior,
        newton_steps: cont.newton_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use ea_taskgraph::generators;

    #[test]
    fn ratio_within_proven_factor_on_chain() {
        let inst = Instance::single_chain(&[1.0, 2.0, 3.0], 5.0).unwrap();
        let s = solve_on_dag(inst.augmented_dag(), 5.0, 0.5, 3.0, 0.25, 10).unwrap();
        assert!(s.ratio >= 1.0 - 1e-9, "ratio {} below 1", s.ratio);
        assert!(
            s.ratio <= s.proven_factor + 1e-9,
            "ratio {} exceeds proven factor {}",
            s.ratio,
            s.proven_factor
        );
    }

    #[test]
    fn speeds_are_admissible_and_deadline_met() {
        let inst = Instance::fork(2.0, &[1.0, 3.0, 2.0], 8.0).unwrap();
        let (fmin, fmax, delta) = (0.5, 2.0, 0.2);
        let s = solve_on_dag(inst.augmented_dag(), 8.0, fmin, fmax, delta, 5).unwrap();
        let model = SpeedModel::incremental(fmin, fmax, delta);
        for &f in &s.speeds {
            assert!(model.admissible(f), "speed {f} not on grid");
        }
        let sched = crate::schedule::Schedule::from_speeds(&s.speeds);
        let ms = sched.makespan(&inst.dag, &inst.mapping).unwrap();
        assert!(ms <= 8.0 * (1.0 + 1e-6), "makespan {ms}");
    }

    #[test]
    fn finer_grid_tightens_the_ratio() {
        let inst = Instance::single_chain(&[1.0, 2.0, 1.5, 2.5], 10.0).unwrap();
        let coarse = solve_on_dag(inst.augmented_dag(), 10.0, 0.5, 2.0, 0.5, 20).unwrap();
        let fine = solve_on_dag(inst.augmented_dag(), 10.0, 0.5, 2.0, 0.05, 20).unwrap();
        assert!(
            fine.energy <= coarse.energy * (1.0 + 1e-9),
            "finer grid should not cost more energy"
        );
        assert!(fine.proven_factor < coarse.proven_factor);
    }

    #[test]
    fn works_on_random_dags() {
        for seed in 0..3u64 {
            let dag = generators::random_layered(3, 3, 0.4, 0.5, 2.0, seed);
            let inst = Instance::mapped_by_list_scheduling(
                dag,
                crate::platform::Platform::new(2),
                2.0,
                1e9,
            )
            .unwrap();
            let d = 1.6 * inst.makespan_at_uniform_speed(2.0);
            let s = solve_on_dag(inst.augmented_dag(), d, 0.5, 2.0, 0.25, 8).unwrap();
            assert!(s.ratio <= s.proven_factor + 1e-6, "seed {seed}: {s:?}");
        }
    }

    #[test]
    fn infeasible_deadline_propagates() {
        let inst = Instance::single_chain(&[10.0], 1.0).unwrap();
        assert!(solve_on_dag(inst.augmented_dag(), 1.0, 0.5, 2.0, 0.25, 5).is_err());
    }
}
