//! Pareto-frontier tracing: the energy/deadline trade-off curve of
//! BI-CRIT, for any speed model, with **warm-started** solves.
//!
//! The paper studies one deadline at a time; its central *object*,
//! though, is the whole trade-off curve between energy and makespan.
//! [`trace_front`] sweeps the deadline axis from the feasibility edge
//! (the all-`f_max` makespan) to the saturation point (the all-`f_min`
//! makespan, beyond which the energy floor `Σ w·f_min²` is reached) and
//! solves each point through the per-model solvers — but instead of
//! paying the full solve cost per point, each solve is *warm-started*
//! from the previous one:
//!
//! * **CONTINUOUS** — the previous optimum is a feasible point of the
//!   next convex program (the deadline only grew); the barrier solver
//!   restarts from it with a boosted initial barrier weight
//!   ([`continuous::solve_general_warm`]).
//! * **VDD-HOPPING** — the LP restarts cold (the simplex has no basis
//!   reuse), but the saturation cut below still clips the sweep.
//! * **DISCRETE** — the previous optimal mode assignment seeds the
//!   branch-and-bound incumbent ([`discrete::solve_bnb_seeded`]), so
//!   most of the tree prunes at the root.
//! * **INCREMENTAL** — the previous continuous-stage energy replaces the
//!   rough stage-1a solve as the accuracy bracketing, and the previous
//!   continuous speeds warm the barrier
//!   ([`incremental::solve_on_dag_warm`]).
//!
//! Two further cuts apply to every model: once a point reaches the
//! energy floor, all later points are copied without solving
//! ([`PointSource::Saturated`]), and after the initial grid the front is
//! **adaptively refined** — the adjacent pair with the largest energy
//! drop is bisected until every drop is below
//! [`FrontOptions::energy_tol`] of the front's total span (or
//! [`FrontOptions::max_points`] is reached).
//!
//! The reported front is monotone non-increasing by construction: a
//! schedule feasible at deadline `D` stays feasible at any `D' ≥ D`, so
//! the tracer carries the best earlier energy forward over any
//! approximation wiggle (this only ever affects the approximate
//! INCREMENTAL model).
//!
//! ```
//! use ea_core::bicrit::pareto::{trace_front, FrontOptions};
//! use ea_core::speed::SpeedModel;
//! use ea_core::Instance;
//!
//! let inst = Instance::single_chain(&[1.0, 2.0, 3.0], 6.0).unwrap();
//! let model = SpeedModel::discrete(vec![1.0, 1.5, 2.0]);
//! let front = trace_front(&inst, &model, &FrontOptions::default()).unwrap();
//! assert!(front.points.len() >= 2);
//! assert!(front.is_monotone());
//! ```

use super::{continuous, discrete, incremental, vdd, SolveOptions};
use crate::error::CoreError;
use crate::instance::Instance;
use crate::speed::SpeedModel;
use ea_taskgraph::analysis;
use serde::{Deserialize, Serialize};

/// Knobs of a front trace. Construct with `FrontOptions::default()` and
/// override via the `with_*` builders.
#[derive(Debug, Clone)]
pub struct FrontOptions {
    /// Smallest deadline to trace; defaults to (just above) the
    /// feasibility edge, the all-`f_max` makespan. Values below the edge
    /// are clamped up to it.
    pub d_min: Option<f64>,
    /// Largest deadline to trace; defaults to the saturation deadline,
    /// the all-`f_min` makespan (beyond it the front is flat).
    pub d_max: Option<f64>,
    /// Number of evenly spaced initial grid points (≥ 2).
    pub initial_points: usize,
    /// Refinement target: bisect adjacent deadline gaps until every
    /// energy drop is at most this fraction of the front's total span.
    pub energy_tol: f64,
    /// Hard cap on traced points (initial grid + refinements); raised to
    /// `initial_points` when smaller, so an explicitly requested grid is
    /// never truncated.
    pub max_points: usize,
    /// Warm-start each solve from the previous point (`false` re-solves
    /// every point cold — the baseline the `e12_pareto_front` bench
    /// compares against).
    pub warm_start: bool,
    /// Per-point solver options, handed to the per-model solvers.
    pub solve: SolveOptions,
}

impl Default for FrontOptions {
    fn default() -> Self {
        FrontOptions {
            d_min: None,
            d_max: None,
            initial_points: 9,
            energy_tol: 0.02,
            max_points: 48,
            warm_start: true,
            solve: SolveOptions::default(),
        }
    }
}

impl FrontOptions {
    /// Overrides the traced deadline range (`None` keeps the default end).
    pub fn with_range(mut self, d_min: Option<f64>, d_max: Option<f64>) -> Self {
        self.d_min = d_min;
        self.d_max = d_max;
        self
    }

    /// Overrides the initial grid size (clamped to ≥ 2).
    pub fn with_initial_points(mut self, n: usize) -> Self {
        self.initial_points = n.max(2);
        self
    }

    /// Overrides the refinement tolerance.
    pub fn with_energy_tol(mut self, tol: f64) -> Self {
        self.energy_tol = tol;
        self
    }

    /// Overrides the point cap.
    pub fn with_max_points(mut self, n: usize) -> Self {
        self.max_points = n;
        self
    }

    /// Enables or disables warm starting.
    pub fn with_warm_start(mut self, warm: bool) -> Self {
        self.warm_start = warm;
        self
    }

    /// Overrides the per-point solver options.
    pub fn with_solve(mut self, solve: SolveOptions) -> Self {
        self.solve = solve;
        self
    }
}

/// How a front point was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PointSource {
    /// Solved from scratch.
    Cold,
    /// Solved warm-started from the previous point.
    Warm,
    /// Copied from an earlier point that already reached the energy
    /// floor (no solve at all).
    Saturated,
}

/// One point of a traced Pareto front.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontPoint {
    /// The deadline this point was solved at.
    pub deadline: f64,
    /// Energy of the solution at this deadline.
    pub energy: f64,
    /// Achieved worst-case makespan (≤ `deadline`).
    pub makespan: f64,
    /// Certified lower bound on the optimal energy, when the solver
    /// produces one (CONTINUOUS / INCREMENTAL).
    pub lower_bound: Option<f64>,
    /// How the point was obtained.
    pub source: PointSource,
    /// True if the point was inserted by adaptive refinement (false for
    /// the initial grid).
    pub refined: bool,
}

/// Aggregate work counters of a front trace — the warm-start savings are
/// visible here without a stopwatch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrontStats {
    /// Solver invocations (saturated copies excluded).
    pub solves: usize,
    /// Solves that consumed a warm seed.
    pub warm_solves: usize,
    /// Points copied via the saturation cut instead of solved.
    pub saturation_hits: usize,
    /// Points inserted by adaptive refinement.
    pub refinements: usize,
    /// Total barrier Newton iterations (CONTINUOUS / INCREMENTAL).
    pub newton_steps: usize,
    /// Total branch-and-bound nodes (DISCRETE).
    pub bnb_nodes: usize,
    /// Total simplex pivots (VDD-HOPPING).
    pub lp_pivots: usize,
}

/// A traced energy/deadline Pareto front, sorted by ascending deadline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoFront {
    /// The speed model the front was traced under.
    pub model: SpeedModel,
    /// Front points, ascending in deadline, monotone non-increasing in
    /// energy.
    pub points: Vec<FrontPoint>,
    /// Aggregate work counters.
    pub stats: FrontStats,
}

impl ParetoFront {
    /// True if energies are non-increasing along the deadline axis
    /// (always holds for traced fronts; exposed for tests).
    pub fn is_monotone(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].energy <= w[0].energy * (1.0 + 1e-12) + 1e-12)
    }

    /// The minimal traced energy achievable within deadline `d`: the
    /// energy of the loosest traced point with `deadline ≤ d`, or `None`
    /// if `d` is below the tightest traced deadline.
    pub fn energy_at(&self, d: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.deadline <= d * (1.0 + 1e-12))
            .last()
            .map(|p| p.energy)
    }

    /// Total energy span `E(tightest) − E(loosest)` of the front.
    pub fn energy_span(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => a.energy - b.energy,
            _ => 0.0,
        }
    }
}

/// The per-model warm state threaded from one front point to the next.
enum WarmSeed {
    None,
    /// CONTINUOUS: previous per-task speeds.
    Cont(Vec<f64>),
    /// DISCRETE: previous optimal mode assignment.
    Disc(Vec<usize>),
    /// INCREMENTAL: previous continuous stage.
    Inc(incremental::IncrementalWarm),
}

/// Solves one front point, consuming `warm` when the model supports it.
fn solve_point(
    inst: &Instance,
    model: &SpeedModel,
    opts: &SolveOptions,
    warm: &WarmSeed,
    stats: &mut FrontStats,
) -> Result<(FrontPoint, WarmSeed), CoreError> {
    let aug = inst.augmented_dag();
    let w = aug.weights();
    let makespan_of = |speeds: &[f64]| {
        let durs: Vec<f64> = w.iter().zip(speeds).map(|(wi, f)| wi / f).collect();
        analysis::critical_path_length(aug, &durs)
    };
    stats.solves += 1;
    let (energy, makespan, lower_bound, warmed, seed) = match model {
        SpeedModel::Continuous { fmin, fmax } => {
            let ws = match warm {
                WarmSeed::Cont(v) => Some(v.as_slice()),
                _ => None,
            };
            let s = continuous::solve_in_box_warm(inst, *fmin, *fmax, &opts.barrier, ws)?;
            stats.newton_steps += s.newton_steps;
            // warm_used is false when the SP fast path bypassed the
            // barrier or the solver rejected the seed.
            let warmed = s.warm_used;
            let ms = makespan_of(&s.speeds);
            // Seed the next point with the barrier iterate when the convex
            // solver ran, else with the closed-form speeds.
            let seed = WarmSeed::Cont(s.interior.unwrap_or_else(|| s.speeds.clone()));
            (s.energy, ms, Some(s.lower_bound), warmed, seed)
        }
        SpeedModel::VddHopping { modes } => {
            let s = vdd::solve_on_dag(aug, inst.deadline, modes)?;
            stats.lp_pivots += s.pivots;
            let durs: Vec<f64> = s
                .segments
                .iter()
                .map(|segs| segs.iter().map(|&(_, t)| t).sum())
                .collect();
            let ms = analysis::critical_path_length(aug, &durs);
            (s.energy, ms, None, false, WarmSeed::None)
        }
        SpeedModel::Discrete { modes } => {
            let sd = match warm {
                WarmSeed::Disc(v) => Some(v.as_slice()),
                _ => None,
            };
            let s = discrete::solve_bnb_seeded(aug, inst.deadline, modes, opts.bnb_bound, sd)?;
            stats.bnb_nodes += s.nodes;
            let ms = makespan_of(&s.speeds);
            (s.energy, ms, None, s.seed_used, WarmSeed::Disc(s.mode_of))
        }
        SpeedModel::Incremental { fmin, fmax, delta } => {
            let iw = match warm {
                WarmSeed::Inc(v) => Some(v),
                _ => None,
            };
            let s = incremental::solve_on_dag_warm(
                aug,
                inst.deadline,
                *fmin,
                *fmax,
                *delta,
                opts.accuracy_k,
                iw,
            )?;
            stats.newton_steps += s.newton_steps;
            let ms = makespan_of(&s.speeds);
            let warmed = iw.is_some();
            let seed = WarmSeed::Inc(incremental::IncrementalWarm::from(&s));
            (s.energy, ms, Some(s.lower_bound), warmed, seed)
        }
    };
    if warmed {
        stats.warm_solves += 1;
    }
    Ok((
        FrontPoint {
            deadline: inst.deadline,
            energy,
            makespan,
            lower_bound,
            source: if warmed {
                PointSource::Warm
            } else {
                PointSource::Cold
            },
            refined: false,
        },
        seed,
    ))
}

/// Traces the energy/deadline Pareto front of `inst` under `model`.
///
/// The deadline range defaults to `[feasibility edge, saturation
/// deadline]` (see [`FrontOptions`]); the initial grid is evenly spaced
/// and then adaptively refined. Solves are warm-started point-to-point
/// unless [`FrontOptions::warm_start`] is off.
///
/// ```
/// use ea_core::bicrit::pareto::{trace_front, FrontOptions};
/// use ea_core::speed::SpeedModel;
/// use ea_core::Instance;
///
/// let inst = Instance::fork(1.0, &[2.0, 1.0], 4.0).unwrap();
/// let opts = FrontOptions::default().with_initial_points(5);
/// let front = trace_front(&inst, &SpeedModel::continuous(0.5, 2.0), &opts).unwrap();
/// // tightest deadline costs the most energy, loosest the least
/// assert!(front.points.first().unwrap().energy >= front.points.last().unwrap().energy);
/// ```
pub fn trace_front(
    inst: &Instance,
    model: &SpeedModel,
    opts: &FrontOptions,
) -> Result<ParetoFront, CoreError> {
    for (v, what) in [(opts.d_min, "d_min"), (opts.d_max, "d_max")] {
        if let Some(d) = v {
            if !(d.is_finite() && d > 0.0) {
                return Err(CoreError::Infeasible(format!("bad front {what} {d}")));
            }
        }
    }
    if !(opts.energy_tol.is_finite() && opts.energy_tol > 0.0) {
        return Err(CoreError::Infeasible(format!(
            "bad front energy_tol {}",
            opts.energy_tol
        )));
    }
    let fmin = model.fmin();
    let fmax = model.fmax();
    // Nudge off the exact feasibility edge to stay clear of the solvers'
    // knife-edge tolerances (the barrier's forced-all-fmax window is 1e-7
    // wide); the energy there is within 1e-4 of the all-fmax value.
    let d_feas = inst.makespan_at_uniform_speed(fmax) * (1.0 + 1e-4);
    let d_sat = inst.makespan_at_uniform_speed(fmin);
    let d_lo = opts.d_min.unwrap_or(d_feas).max(d_feas);
    let d_hi = opts.d_max.unwrap_or(d_sat).max(d_lo);
    // An initial grid larger than max_points wins (the caller asked for
    // those points explicitly); refinement then has no budget left.
    let n_init = opts.initial_points.max(2);
    let max_points = opts.max_points.max(n_init);

    let aug = inst.augmented_dag();
    let e_floor: f64 = aug.weights().iter().map(|wi| wi * fmin * fmin).sum();

    let grid: Vec<f64> = if (d_hi - d_lo) <= 1e-12 * d_hi {
        vec![d_lo]
    } else {
        (0..n_init)
            .map(|i| d_lo + (d_hi - d_lo) * i as f64 / (n_init - 1) as f64)
            .collect()
    };

    let mut stats = FrontStats::default();
    let mut pts: Vec<(FrontPoint, WarmSeed)> = Vec::with_capacity(max_points);
    let mut saturated: Option<FrontPoint> = None;
    for d in grid {
        if let Some(sat) = &saturated {
            let mut p = sat.clone();
            p.deadline = d;
            p.source = PointSource::Saturated;
            stats.saturation_hits += 1;
            pts.push((p, WarmSeed::None));
            continue;
        }
        let warm = match (opts.warm_start, pts.last()) {
            (true, Some((_, seed))) => seed,
            _ => &WarmSeed::None,
        };
        let inst_d = inst.with_deadline(d)?;
        let (pt, seed) = solve_point(&inst_d, model, &opts.solve, warm, &mut stats)?;
        if pt.energy <= e_floor * (1.0 + 1e-9) {
            saturated = Some(pt.clone());
        }
        pts.push((pt, seed));
    }

    // Adaptive refinement: bisect the adjacent pair with the largest
    // energy drop until resolved to energy_tol of the span.
    while pts.len() < max_points {
        let span = pts[0].0.energy - pts[pts.len() - 1].0.energy;
        if span <= 0.0 {
            break;
        }
        let mut best: Option<(usize, f64)> = None;
        for i in 0..pts.len() - 1 {
            let drop = pts[i].0.energy - pts[i + 1].0.energy;
            let gap = pts[i + 1].0.deadline - pts[i].0.deadline;
            if gap <= 1e-6 * d_hi {
                continue;
            }
            if drop > best.map_or(0.0, |(_, b)| b) {
                best = Some((i, drop));
            }
        }
        let Some((i, drop)) = best else { break };
        if drop <= opts.energy_tol * span {
            break;
        }
        let mid = 0.5 * (pts[i].0.deadline + pts[i + 1].0.deadline);
        let warm = if opts.warm_start {
            &pts[i].1
        } else {
            &WarmSeed::None
        };
        let inst_d = inst.with_deadline(mid)?;
        let (mut pt, seed) = solve_point(&inst_d, model, &opts.solve, warm, &mut stats)?;
        pt.refined = true;
        stats.refinements += 1;
        pts.insert(i + 1, (pt, seed));
    }

    // Monotone envelope: an earlier (tighter-deadline) schedule stays
    // feasible at every later deadline, so its energy upper-bounds every
    // later point. Only the approximate INCREMENTAL roundings ever
    // actually wiggle above it.
    let mut points: Vec<FrontPoint> = pts.into_iter().map(|(p, _)| p).collect();
    for i in 1..points.len() {
        if points[i].energy > points[i - 1].energy {
            points[i].energy = points[i - 1].energy;
            points[i].makespan = points[i - 1].makespan;
            points[i].lower_bound = points[i].lower_bound.map(|lb| lb.min(points[i].energy));
        }
    }

    Ok(ParetoFront {
        model: model.clone(),
        points,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use ea_taskgraph::generators;

    /// A non-series-parallel mapped instance, so CONTINUOUS exercises the
    /// barrier (and its warm start) instead of the SP closed form.
    fn non_sp_instance() -> Instance {
        let dag = generators::random_layered(4, 3, 0.5, 0.5, 2.0, 11);
        let inst = Instance::mapped_by_list_scheduling(dag, Platform::new(2), 2.0, f64::MAX)
            .expect("mapping succeeds");
        let d = 1.5 * inst.makespan_at_uniform_speed(2.0);
        inst.with_deadline(d).expect("positive deadline")
    }

    fn all_models() -> [SpeedModel; 4] {
        [
            SpeedModel::continuous(1.0, 2.0),
            SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]),
            SpeedModel::discrete(vec![1.0, 1.5, 2.0]),
            SpeedModel::incremental(1.0, 2.0, 0.25),
        ]
    }

    #[test]
    fn front_spans_edge_to_saturation_for_every_model() {
        let inst = non_sp_instance();
        for model in &all_models() {
            let front = trace_front(&inst, model, &FrontOptions::default())
                .unwrap_or_else(|e| panic!("{model:?}: {e}"));
            assert!(front.points.len() >= 2, "{model:?}");
            assert!(front.is_monotone(), "{model:?}: {:?}", front.points);
            let first = front.points.first().expect("non-empty");
            let last = front.points.last().expect("non-empty");
            // Tight end ≈ all-fmax energy, loose end ≈ the energy floor.
            let w_sum: f64 = inst.dag.weights().iter().sum();
            let fmin = model.fmin();
            let fmax = model.fmax();
            assert!(
                first.energy <= w_sum * fmax * fmax * (1.0 + 1e-6),
                "{model:?}"
            );
            assert!(
                last.energy >= w_sum * fmin * fmin * (1.0 - 1e-6),
                "{model:?}: {} < floor",
                last.energy
            );
            for p in &front.points {
                assert!(p.makespan <= p.deadline * (1.0 + 1e-6), "{model:?}: {p:?}");
            }
        }
    }

    #[test]
    fn warm_and_cold_fronts_agree() {
        let inst = non_sp_instance();
        for model in &all_models() {
            // Same fixed grid for both runs (max = initial disables
            // refinement, whose bisection order may legitimately differ
            // between warm and cold INCREMENTAL roundings).
            let opts = FrontOptions::default()
                .with_initial_points(8)
                .with_max_points(8);
            let warm = trace_front(&inst, model, &opts).unwrap();
            let cold = trace_front(&inst, model, &opts.clone().with_warm_start(false)).unwrap();
            assert_eq!(warm.points.len(), cold.points.len(), "{model:?}");
            for (a, b) in warm.points.iter().zip(&cold.points) {
                assert!(
                    (a.deadline - b.deadline).abs() <= 1e-9 * a.deadline,
                    "{model:?}: refinement diverged ({} vs {})",
                    a.deadline,
                    b.deadline
                );
                // DISCRETE/VDD are exact; the barrier models agree to the
                // solver gap; INCREMENTAL rounding may differ by a grid
                // step on ties (covered by the looser bound).
                let tol = match model {
                    SpeedModel::Incremental { .. } => 0.08,
                    _ => 1e-4,
                };
                assert!(
                    (a.energy - b.energy).abs() <= tol * b.energy.max(1e-9),
                    "{model:?} at D={}: warm {} vs cold {}",
                    a.deadline,
                    a.energy,
                    b.energy
                );
            }
        }
    }

    #[test]
    fn warm_start_saves_solver_work() {
        let inst = non_sp_instance();
        let opts = FrontOptions::default()
            .with_initial_points(8)
            .with_max_points(16);
        let cold_opts = opts.clone().with_warm_start(false);

        // CONTINUOUS: fewer barrier Newton iterations.
        let model = SpeedModel::continuous(1.0, 2.0);
        let warm = trace_front(&inst, &model, &opts).unwrap();
        let cold = trace_front(&inst, &model, &cold_opts).unwrap();
        assert!(warm.stats.warm_solves > 0, "warm solves must occur");
        assert!(
            warm.stats.newton_steps < cold.stats.newton_steps,
            "warm {} !< cold {} newton steps",
            warm.stats.newton_steps,
            cold.stats.newton_steps
        );

        // DISCRETE: fewer branch-and-bound nodes.
        let model = SpeedModel::discrete(vec![1.0, 1.25, 1.5, 1.75, 2.0]);
        let warm = trace_front(&inst, &model, &opts).unwrap();
        let cold = trace_front(&inst, &model, &cold_opts).unwrap();
        assert!(warm.stats.warm_solves > 0);
        assert!(
            warm.stats.bnb_nodes < cold.stats.bnb_nodes,
            "warm {} !< cold {} B&B nodes",
            warm.stats.bnb_nodes,
            cold.stats.bnb_nodes
        );

        // INCREMENTAL: fewer Newton iterations (stage 1a is skipped).
        let model = SpeedModel::incremental(1.0, 2.0, 0.25);
        let warm = trace_front(&inst, &model, &opts).unwrap();
        let cold = trace_front(&inst, &model, &cold_opts).unwrap();
        assert!(warm.stats.warm_solves > 0);
        assert!(
            warm.stats.newton_steps < cold.stats.newton_steps,
            "warm {} !< cold {} newton steps",
            warm.stats.newton_steps,
            cold.stats.newton_steps
        );
    }

    #[test]
    fn refinement_resolves_the_knee() {
        let inst = non_sp_instance();
        let model = SpeedModel::continuous(1.0, 2.0);
        let coarse = trace_front(
            &inst,
            &model,
            &FrontOptions::default()
                .with_initial_points(3)
                .with_energy_tol(0.5)
                .with_max_points(3),
        )
        .unwrap();
        let fine = trace_front(
            &inst,
            &model,
            &FrontOptions::default()
                .with_initial_points(3)
                .with_energy_tol(0.05)
                .with_max_points(40),
        )
        .unwrap();
        assert!(fine.points.len() > coarse.points.len());
        assert!(fine.stats.refinements > 0);
        assert!(fine.points.iter().any(|p| p.refined));
        // Unless the point cap stopped refinement early, the front is
        // resolved: every drop ≤ tol · span.
        if fine.points.len() < 40 {
            let span = fine.energy_span();
            for w in fine.points.windows(2) {
                assert!(
                    w[0].energy - w[1].energy <= 0.05 * span + 1e-9,
                    "unresolved drop {} of span {span}",
                    w[0].energy - w[1].energy
                );
            }
        }
    }

    #[test]
    fn saturation_cut_skips_flat_tail() {
        let inst = Instance::single_chain(&[1.0, 2.0, 1.5], 6.0).unwrap();
        let model = SpeedModel::discrete(vec![1.0, 2.0]);
        // Sweep far past the all-fmin makespan: the tail must be copied.
        let d_sat = inst.makespan_at_uniform_speed(1.0);
        let opts = FrontOptions::default()
            .with_range(None, Some(3.0 * d_sat))
            .with_initial_points(9);
        let front = trace_front(&inst, &model, &opts).unwrap();
        assert!(front.stats.saturation_hits > 0, "{:?}", front.stats);
        assert!(front
            .points
            .iter()
            .any(|p| p.source == PointSource::Saturated));
        let floor: f64 = inst.dag.weights().iter().sum::<f64>() * 1.0;
        let last = front.points.last().expect("non-empty");
        assert!((last.energy - floor).abs() <= 1e-9 * floor);
    }

    #[test]
    fn energy_at_steps_along_the_front() {
        let inst = Instance::single_chain(&[1.0, 1.0], 4.0).unwrap();
        let model = SpeedModel::continuous(0.5, 2.0);
        let front = trace_front(&inst, &model, &FrontOptions::default()).unwrap();
        let d0 = front.points[0].deadline;
        assert!(
            front.energy_at(d0 * 0.5).is_none(),
            "below the traced range"
        );
        let d_last = front.points.last().expect("non-empty").deadline;
        assert_eq!(
            front.energy_at(d_last * 2.0),
            Some(front.points.last().expect("non-empty").energy)
        );
        // At an interior traced deadline, energy_at returns that point.
        let mid = &front.points[front.points.len() / 2];
        assert_eq!(front.energy_at(mid.deadline), Some(mid.energy));
    }

    #[test]
    fn front_serialises_to_json() {
        let inst = Instance::single_chain(&[1.0, 2.0], 4.0).unwrap();
        let model = SpeedModel::vdd_hopping(vec![1.0, 2.0]);
        let front = trace_front(&inst, &model, &FrontOptions::default()).unwrap();
        let json = serde_json::to_string(&front).expect("serialises");
        let back: ParetoFront = serde_json::from_str(&json).expect("roundtrips");
        assert_eq!(back.points.len(), front.points.len());
    }

    #[test]
    fn bad_options_are_rejected() {
        let inst = Instance::single_chain(&[1.0], 4.0).unwrap();
        let model = SpeedModel::continuous(1.0, 2.0);
        for bad in [
            FrontOptions::default().with_range(Some(f64::NAN), None),
            FrontOptions::default().with_range(None, Some(-1.0)),
            FrontOptions::default().with_energy_tol(0.0),
        ] {
            assert!(trace_front(&inst, &model, &bad).is_err());
        }
    }
}
