//! VDD-HOPPING BI-CRIT: the polynomial-time linear program (paper,
//! Section IV).
//!
//! Variables: `α_{i,k}` — time task `i` spends at mode `f_k` — and start
//! times `b_i`. The program
//!
//! ```text
//! minimise    Σ_{i,k} f_k³ · α_{i,k}
//! subject to  Σ_k f_k · α_{i,k} = w_i          (work conservation)
//!             b_i + Σ_k α_{i,k} ≤ b_j          (augmented edges i → j)
//!             b_i + Σ_k α_{i,k} ≤ D,   α, b ≥ 0
//! ```
//!
//! is solved by the `ea-lp` simplex. A classical property (which the paper
//! notes still holds with reliability) is that an optimal basic solution
//! uses **at most two speeds per task, and they are adjacent modes** —
//! checked by [`VddSolution::max_modes_per_task`] /
//! [`VddSolution::speeds_adjacent`] and exercised by experiment E3.

use super::SolveOptions;
use crate::error::CoreError;
use crate::instance::Instance;
use crate::schedule::{ExecSpec, Schedule, TaskSchedule};
use crate::speed::SpeedModel;
use ea_lp::{Cmp, LpOutcome, LpProblem};
use ea_taskgraph::Dag;

/// Solution of the VDD-hopping LP.
#[derive(Debug, Clone)]
pub struct VddSolution {
    /// Per-task segment lists `(speed, time)`, zero-time segments dropped.
    pub segments: Vec<Vec<(f64, f64)>>,
    /// Start time of each task in the witness schedule.
    pub starts: Vec<f64>,
    /// Optimal energy.
    pub energy: f64,
    /// Simplex pivots used (for the polynomial-scaling experiment).
    pub pivots: usize,
}

impl VddSolution {
    /// Largest number of distinct modes used by any single task.
    pub fn max_modes_per_task(&self) -> usize {
        self.segments.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// True if every task's modes are adjacent in the mode list.
    pub fn speeds_adjacent(&self, modes: &[f64]) -> bool {
        let index_of = |f: f64| {
            modes
                .iter()
                .position(|&m| (m - f).abs() <= 1e-9 * m.max(1.0))
                .expect("segment speed must be a mode")
        };
        self.segments.iter().all(|segs| {
            if segs.len() <= 1 {
                return true;
            }
            let mut idx: Vec<usize> = segs.iter().map(|&(f, _)| index_of(f)).collect();
            idx.sort_unstable();
            idx.windows(2).all(|w| w[1] - w[0] == 1)
        })
    }

    /// Converts to a [`Schedule`] of VDD executions.
    pub fn to_schedule(&self) -> Schedule {
        Schedule {
            tasks: self
                .segments
                .iter()
                .map(|segs| TaskSchedule {
                    executions: vec![ExecSpec::Vdd {
                        segments: segs.clone(),
                    }],
                })
                .collect(),
        }
    }
}

/// Solves VDD-HOPPING BI-CRIT on an [`Instance`].
///
/// `model` must be [`SpeedModel::VddHopping`]; other variants are routed
/// by [`crate::bicrit::solve`].
pub fn solve(
    inst: &Instance,
    model: &SpeedModel,
    _opts: &SolveOptions,
) -> Result<VddSolution, CoreError> {
    let SpeedModel::VddHopping { modes } = model else {
        return Err(CoreError::ModelMismatch {
            expected: "VDD-HOPPING",
            got: format!("{model:?}"),
        });
    };
    solve_on_dag(inst.augmented_dag(), inst.deadline, modes)
}

/// Solves the VDD-hopping LP directly on an augmented DAG (the algorithm
/// core behind [`solve`]; the DISCRETE branch-and-bound and the scaling
/// benches drive it without an [`Instance`]).
pub fn solve_on_dag(aug: &Dag, deadline: f64, modes: &[f64]) -> Result<VddSolution, CoreError> {
    assert!(!modes.is_empty(), "need at least one mode");
    let n = aug.len();
    let m = modes.len();
    let alpha = |i: usize, k: usize| i * m + k;
    let bvar = |i: usize| n * m + i;

    let mut lp = LpProblem::new(n * m + n);
    for i in 0..n {
        for (k, &f) in modes.iter().enumerate() {
            lp.set_objective(alpha(i, k), f * f * f);
        }
    }
    // Work conservation.
    for i in 0..n {
        let coeffs: Vec<(usize, f64)> = modes
            .iter()
            .enumerate()
            .map(|(k, &f)| (alpha(i, k), f))
            .collect();
        lp.add_constraint(&coeffs, Cmp::Eq, aug.weight(i));
    }
    // Precedence on the augmented DAG.
    for &(i, j) in aug.edges() {
        let mut coeffs: Vec<(usize, f64)> = vec![(bvar(i), 1.0), (bvar(j), -1.0)];
        for k in 0..m {
            coeffs.push((alpha(i, k), 1.0));
        }
        lp.add_constraint(&coeffs, Cmp::Le, 0.0);
    }
    // Deadline.
    for i in 0..n {
        let mut coeffs: Vec<(usize, f64)> = vec![(bvar(i), 1.0)];
        for k in 0..m {
            coeffs.push((alpha(i, k), 1.0));
        }
        lp.add_constraint(&coeffs, Cmp::Le, deadline);
    }

    let sol = match lp.solve() {
        LpOutcome::Optimal(s) => s,
        LpOutcome::Infeasible => {
            return Err(CoreError::InfeasibleDeadline {
                required: f64::NAN,
                deadline,
            })
        }
        LpOutcome::Unbounded => {
            return Err(CoreError::Numerical("VDD LP unbounded (model bug)".into()))
        }
        LpOutcome::Stalled => return Err(CoreError::Numerical("VDD LP stalled".into())),
    };

    // Extract segments, dropping numerical dust, and re-normalise the work
    // of each task exactly.
    let mut segments = Vec::with_capacity(n);
    for i in 0..n {
        let mut segs: Vec<(f64, f64)> = (0..m)
            .filter_map(|k| {
                let t = sol.x[alpha(i, k)];
                (t > 1e-9).then_some((modes[k], t))
            })
            .collect();
        if segs.is_empty() {
            // Degenerate tiny task: put all work on the best mode present.
            let (k_best, t_best) = (0..m)
                .map(|k| (k, sol.x[alpha(i, k)]))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("at least one mode");
            segs.push((modes[k_best], t_best.max(0.0)));
        }
        let work: f64 = segs.iter().map(|&(f, t)| f * t).sum();
        let w = aug.weight(i);
        if work > 0.0 {
            let scale = w / work;
            for s in segs.iter_mut() {
                s.1 *= scale;
            }
        } else {
            // All-zero (should not happen): run at the fastest mode.
            let f = *modes.last().expect("non-empty");
            segs = vec![(f, w / f)];
        }
        segments.push(segs);
    }
    let energy = segments
        .iter()
        .flat_map(|segs| segs.iter().map(|&(f, t)| f * f * f * t))
        .sum();
    let starts = (0..n).map(|i| sol.x[bvar(i)]).collect();
    Ok(VddSolution {
        segments,
        starts,
        energy,
        pivots: sol.pivots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicrit::continuous;
    use crate::instance::Instance;
    use ea_taskgraph::generators;

    fn assert_close(a: f64, b: f64, rel: f64) {
        assert!(
            (a - b).abs() <= rel * a.abs().max(b.abs()).max(1e-9),
            "{a} vs {b}"
        );
    }

    #[test]
    fn single_task_between_modes() {
        // w = 3, D = 2 ⇒ continuous speed 1.5; modes {1, 2}: mix
        // t1 + t2 = 2, 1·t1 + 2·t2 = 3 ⇒ t1 = t2 = 1; E = 1 + 8 = 9.
        let dag = generators::chain(&[3.0]);
        let s = solve_on_dag(&dag, 2.0, &[1.0, 2.0]).unwrap();
        assert_close(s.energy, 9.0, 1e-6);
        assert_eq!(s.max_modes_per_task(), 2);
        assert!(s.speeds_adjacent(&[1.0, 2.0]));
    }

    #[test]
    fn exact_mode_uses_one_speed() {
        let dag = generators::chain(&[4.0]);
        let s = solve_on_dag(&dag, 2.0, &[1.0, 2.0, 4.0]).unwrap();
        // speed 2 exactly: energy 4·4 = 16
        assert_close(s.energy, 16.0, 1e-6);
        assert_eq!(s.max_modes_per_task(), 1);
    }

    #[test]
    fn chain_splits_deadline() {
        // Two tasks w=1 each, D=2, modes {1,2}: run both at speed 1.
        let dag = generators::chain(&[1.0, 1.0]);
        let s = solve_on_dag(&dag, 2.0, &[1.0, 2.0]).unwrap();
        assert_close(s.energy, 2.0, 1e-6);
    }

    #[test]
    fn infeasible_deadline_detected() {
        let dag = generators::chain(&[10.0]);
        assert!(matches!(
            solve_on_dag(&dag, 1.0, &[1.0, 2.0]),
            Err(CoreError::InfeasibleDeadline { .. })
        ));
    }

    #[test]
    fn sandwiched_between_continuous_and_discrete() {
        // E_cont ≤ E_vdd ≤ E_discrete-at-rounded-speed on the same instance.
        let inst = Instance::fork(2.0, &[1.0, 3.0, 2.0], 8.0).unwrap();
        let modes = [0.5, 1.0, 1.5, 2.0];
        let vdd = solve_on_dag(inst.augmented_dag(), 8.0, &modes).unwrap();
        let cont = continuous::fork_theorem(2.0, &[1.0, 3.0, 2.0], 8.0, 1e-6, 2.0).unwrap();
        assert!(cont.energy <= vdd.energy * (1.0 + 1e-6));
        // Discrete upper bound: round every continuous speed up.
        let model = crate::speed::SpeedModel::discrete(modes.to_vec());
        let e_disc: f64 = inst
            .dag
            .weights()
            .iter()
            .zip(&cont.speeds)
            .map(|(w, &f)| {
                let fr = model.round_up(f).expect("within range");
                w * fr * fr
            })
            .sum();
        assert!(vdd.energy <= e_disc * (1.0 + 1e-6));
    }

    #[test]
    fn witness_schedule_is_valid() {
        let inst = Instance::fork(2.0, &[1.0, 3.0], 8.0).unwrap();
        let modes = vec![0.5, 1.0, 2.0];
        let s = solve_on_dag(inst.augmented_dag(), 8.0, &modes).unwrap();
        let sched = s.to_schedule();
        let model = crate::speed::SpeedModel::vdd_hopping(modes);
        sched
            .validate(&inst.dag, &model, &inst.mapping, Some(8.0))
            .unwrap();
    }

    #[test]
    fn two_adjacent_modes_property_on_random_dags() {
        let modes = vec![0.5, 1.0, 1.5, 2.0, 2.5];
        for seed in 0..5u64 {
            let dag = generators::random_layered(4, 3, 0.4, 0.5, 2.0, seed);
            let inst = Instance::mapped_by_list_scheduling(
                dag,
                crate::platform::Platform::new(3),
                2.5,
                1e9,
            )
            .unwrap();
            let aug = inst.augmented_dag();
            let cp = inst.makespan_at_uniform_speed(2.5);
            let s = solve_on_dag(aug, 1.8 * cp, &modes).unwrap();
            assert!(s.max_modes_per_task() <= 2, "seed {seed}");
            assert!(s.speeds_adjacent(&modes), "seed {seed}");
        }
    }
}
