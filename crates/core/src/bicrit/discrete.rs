//! DISCRETE BI-CRIT: exact solvers for the NP-complete case (paper,
//! Section IV).
//!
//! The paper proves BI-CRIT NP-complete under the DISCRETE (and hence
//! INCREMENTAL) model. We *demonstrate* that complexity:
//!
//! * [`solve_bnb`] — exact branch-and-bound over per-task modes, pruned by
//!   (a) a makespan feasibility bound (remaining tasks at `f_max`) and
//!   (b) an energy lower bound; optionally the VDD-hopping LP relaxation
//!   (the polynomial sibling model!) as a much stronger bound.
//! * [`solve_exhaustive`] — plain `m^n` enumeration, the ground truth for
//!   tiny instances.
//! * [`chain_dp_integral`] — a pseudo-polynomial multiple-choice-knapsack
//!   DP for single-processor instances with integral durations; this is
//!   the algorithmic face of the 2-PARTITION reduction
//!   (`crate::reductions`).

use super::SolveOptions;
use crate::error::CoreError;
use crate::instance::Instance;
use crate::speed::SpeedModel;
use ea_lp::{Cmp, LpOutcome, LpProblem};
use ea_taskgraph::{analysis, Dag};

/// Exact solution of DISCRETE BI-CRIT.
#[derive(Debug, Clone)]
pub struct DiscreteSolution {
    /// Chosen mode index per task.
    pub mode_of: Vec<usize>,
    /// Chosen speed per task.
    pub speeds: Vec<f64>,
    /// Optimal energy.
    pub energy: f64,
    /// Search-tree nodes explored (the NP-hardness witness of E4).
    pub nodes: usize,
    /// True if a supplied incumbent seed was adopted as the initial
    /// upper bound (valid, feasible, and cheaper than the uniform
    /// incumbent); false for cold, rejected, or outperformed seeds.
    pub seed_used: bool,
}

/// Bound strategy for the branch-and-bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BnbBound {
    /// Cheap bounds only: per-task minimal-mode energy + fmax feasibility.
    Simple,
    /// Additionally solve the VDD-hopping LP relaxation at each node.
    VddRelaxation,
}

/// Solves DISCRETE BI-CRIT exactly on an [`Instance`], using the
/// branch-and-bound with the bound strategy from
/// [`SolveOptions::bnb_bound`].
///
/// `model` must be [`SpeedModel::Discrete`]; other variants are routed by
/// [`crate::bicrit::solve`].
pub fn solve(
    inst: &Instance,
    model: &SpeedModel,
    opts: &SolveOptions,
) -> Result<DiscreteSolution, CoreError> {
    let SpeedModel::Discrete { modes } = model else {
        return Err(CoreError::ModelMismatch {
            expected: "DISCRETE",
            got: format!("{model:?}"),
        });
    };
    solve_bnb(inst.augmented_dag(), inst.deadline, modes, opts.bnb_bound)
}

/// Exact branch-and-bound over per-task modes on the augmented DAG.
pub fn solve_bnb(
    aug: &Dag,
    deadline: f64,
    modes: &[f64],
    bound: BnbBound,
) -> Result<DiscreteSolution, CoreError> {
    solve_bnb_seeded(aug, deadline, modes, bound, None)
}

/// [`solve_bnb`] seeded with a known-feasible incumbent: `seed` is a mode
/// assignment (index per task) whose energy becomes the initial upper
/// bound when it meets `deadline`. Deadline sweeps
/// ([`crate::bicrit::pareto`]) pass the optimum of the previous, tighter
/// deadline — still feasible once the deadline grows, and usually so
/// close to the new optimum that most of the search tree prunes at the
/// root. An infeasible or malformed seed is ignored; the result is the
/// exact optimum either way.
pub fn solve_bnb_seeded(
    aug: &Dag,
    deadline: f64,
    modes: &[f64],
    bound: BnbBound,
    seed: Option<&[usize]>,
) -> Result<DiscreteSolution, CoreError> {
    assert!(!modes.is_empty());
    let n = aug.len();
    let fmax = *modes.last().expect("non-empty");
    let fmin = modes[0];
    let w = aug.weights();

    // Feasibility pre-check at fmax.
    let dur_fmax: Vec<f64> = w.iter().map(|wi| wi / fmax).collect();
    let m_fmax = analysis::critical_path_length(aug, &dur_fmax);
    if m_fmax > deadline * (1.0 + 1e-9) {
        return Err(CoreError::InfeasibleDeadline {
            required: m_fmax,
            deadline,
        });
    }

    // Branch order: heaviest tasks first (their mode choice moves the
    // energy most, improving bound quality near the root).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| w[b].partial_cmp(&w[a]).expect("finite weights"));

    // Initial incumbent: cheapest uniformly-feasible mode, else all-fmax.
    let mut best_energy = f64::INFINITY;
    let mut best_modes = vec![modes.len() - 1; n];
    for (k, &f) in modes.iter().enumerate() {
        let durs: Vec<f64> = w.iter().map(|wi| wi / f).collect();
        if analysis::critical_path_length(aug, &durs) <= deadline * (1.0 + 1e-9) {
            best_energy = w.iter().map(|wi| wi * f * f).sum();
            best_modes = vec![k; n];
            break;
        }
    }
    if !best_energy.is_finite() {
        best_energy = w.iter().map(|wi| wi * fmax * fmax).sum();
    }

    // Warm incumbent: adopt the seed when it is valid, feasible, and
    // cheaper than the uniform incumbent.
    let mut seed_used = false;
    if let Some(sd) = seed.filter(|s| s.len() == n && s.iter().all(|&k| k < modes.len())) {
        let durs: Vec<f64> = (0..n).map(|i| w[i] / modes[sd[i]]).collect();
        if analysis::critical_path_length(aug, &durs) <= deadline * (1.0 + 1e-9) {
            let e: f64 = (0..n)
                .map(|i| {
                    let f = modes[sd[i]];
                    w[i] * f * f
                })
                .sum();
            if e < best_energy {
                best_energy = e;
                best_modes = sd.to_vec();
                seed_used = true;
            }
        }
    }

    let mut state = Bnb {
        aug,
        deadline,
        modes,
        order: &order,
        assignment: vec![usize::MAX; n],
        durations: dur_fmax.clone(),
        best_energy,
        best_modes,
        nodes: 0,
        bound_kind: bound,
        fmin,
    };
    state.recurse(0, 0.0);

    let energy = state.best_energy;
    let mode_of = state.best_modes;
    let speeds = mode_of.iter().map(|&k| modes[k]).collect();
    Ok(DiscreteSolution {
        mode_of,
        speeds,
        energy,
        nodes: state.nodes,
        seed_used,
    })
}

struct Bnb<'a> {
    aug: &'a Dag,
    deadline: f64,
    modes: &'a [f64],
    order: &'a [usize],
    /// mode index per task; `usize::MAX` = unassigned
    assignment: Vec<usize>,
    /// durations: assigned at their mode, unassigned at fmax (optimistic)
    durations: Vec<f64>,
    best_energy: f64,
    best_modes: Vec<usize>,
    nodes: usize,
    bound_kind: BnbBound,
    fmin: f64,
}

impl Bnb<'_> {
    fn recurse(&mut self, depth: usize, energy_assigned: f64) {
        self.nodes += 1;
        // Feasibility: unassigned tasks optimistically at fmax.
        let ms = analysis::critical_path_length(self.aug, &self.durations);
        if ms > self.deadline * (1.0 + 1e-9) {
            return;
        }
        // Energy lower bound for the remainder.
        let lb = energy_assigned + self.remaining_bound(depth);
        if lb >= self.best_energy * (1.0 - 1e-12) {
            return;
        }
        if depth == self.order.len() {
            if energy_assigned < self.best_energy {
                self.best_energy = energy_assigned;
                self.best_modes = self.assignment.clone();
            }
            return;
        }
        let t = self.order[depth];
        let w = self.aug.weight(t);
        // Try slow (cheap) modes first: first feasible completion becomes a
        // good incumbent early.
        for k in 0..self.modes.len() {
            let f = self.modes[k];
            self.assignment[t] = k;
            let saved = self.durations[t];
            self.durations[t] = w / f;
            self.recurse(depth + 1, energy_assigned + w * f * f);
            self.durations[t] = saved;
        }
        self.assignment[t] = usize::MAX;
    }

    /// Lower bound on the energy of the unassigned suffix.
    fn remaining_bound(&mut self, depth: usize) -> f64 {
        match self.bound_kind {
            BnbBound::Simple => {
                // Every unassigned task costs at least w·fmin².
                self.order[depth..]
                    .iter()
                    .map(|&t| self.aug.weight(t) * self.fmin * self.fmin)
                    .sum()
            }
            BnbBound::VddRelaxation => self.vdd_bound(depth),
        }
    }

    /// VDD LP relaxation with assigned tasks frozen at their duration.
    fn vdd_bound(&mut self, depth: usize) -> f64 {
        let n = self.aug.len();
        let m = self.modes.len();
        let unassigned: Vec<usize> = self.order[depth..].to_vec();
        if unassigned.is_empty() {
            return 0.0;
        }
        let col_of: std::collections::HashMap<usize, usize> = unassigned
            .iter()
            .enumerate()
            .map(|(c, &t)| (t, c))
            .collect();
        let alpha = |c: usize, k: usize| c * m + k;
        let bvar = |i: usize| unassigned.len() * m + i;
        let mut lp = LpProblem::new(unassigned.len() * m + n);
        for (c, &t) in unassigned.iter().enumerate() {
            for (k, &f) in self.modes.iter().enumerate() {
                lp.set_objective(alpha(c, k), f * f * f);
            }
            let coeffs: Vec<(usize, f64)> = self
                .modes
                .iter()
                .enumerate()
                .map(|(k, &f)| (alpha(c, k), f))
                .collect();
            lp.add_constraint(&coeffs, Cmp::Eq, self.aug.weight(t));
        }
        // duration expression helper rows
        let dur_row = |t: usize, sign: f64, coeffs: &mut Vec<(usize, f64)>, rhs: &mut f64| {
            if let Some(&c) = col_of.get(&t) {
                for k in 0..m {
                    coeffs.push((alpha(c, k), sign));
                }
            } else {
                *rhs -= sign * self.durations[t];
            }
        };
        for &(i, j) in self.aug.edges() {
            let mut coeffs: Vec<(usize, f64)> = vec![(bvar(i), 1.0), (bvar(j), -1.0)];
            let mut rhs = 0.0;
            dur_row(i, 1.0, &mut coeffs, &mut rhs);
            lp.add_constraint(&coeffs, Cmp::Le, rhs);
        }
        for i in 0..n {
            let mut coeffs: Vec<(usize, f64)> = vec![(bvar(i), 1.0)];
            let mut rhs = self.deadline;
            dur_row(i, 1.0, &mut coeffs, &mut rhs);
            lp.add_constraint(&coeffs, Cmp::Le, rhs);
        }
        match lp.solve() {
            LpOutcome::Optimal(s) => s.objective,
            LpOutcome::Infeasible => f64::INFINITY, // prune: no completion exists
            _ => 0.0,                               // defensive: no pruning
        }
    }
}

/// Plain `m^n` enumeration (ground truth for tiny instances).
pub fn solve_exhaustive(
    aug: &Dag,
    deadline: f64,
    modes: &[f64],
) -> Result<DiscreteSolution, CoreError> {
    let n = aug.len();
    let m = modes.len();
    assert!(
        (m as f64).powi(n as i32) <= 5e7,
        "exhaustive search limited to tiny instances"
    );
    let w = aug.weights();
    let mut assignment = vec![0usize; n];
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut nodes = 0usize;
    loop {
        nodes += 1;
        let durs: Vec<f64> = (0..n).map(|i| w[i] / modes[assignment[i]]).collect();
        if analysis::critical_path_length(aug, &durs) <= deadline * (1.0 + 1e-9) {
            let e: f64 = (0..n)
                .map(|i| {
                    let f = modes[assignment[i]];
                    w[i] * f * f
                })
                .sum();
            if best.as_ref().is_none_or(|(be, _)| e < *be) {
                best = Some((e, assignment.clone()));
            }
        }
        // increment assignment like a base-m counter
        let mut pos = 0;
        loop {
            if pos == n {
                let (energy, mode_of) = best.ok_or(CoreError::InfeasibleDeadline {
                    required: f64::NAN,
                    deadline,
                })?;
                let speeds = mode_of.iter().map(|&k| modes[k]).collect();
                return Ok(DiscreteSolution {
                    mode_of,
                    speeds,
                    energy,
                    nodes,
                    seed_used: false,
                });
            }
            assignment[pos] += 1;
            if assignment[pos] < m {
                break;
            }
            assignment[pos] = 0;
            pos += 1;
        }
    }
}

/// Pseudo-polynomial DP for a single processor with **integral durations**:
/// `durations[i][k]` is the (scaled integer) duration of task `i` under
/// mode `k`, `energies[i][k]` its energy; the budget is `tmax`.
///
/// Returns the minimum energy and the chosen mode per task, or `None` if no
/// choice fits the budget. Classic multiple-choice knapsack,
/// `O(n · m · tmax)` — polynomial in the *value* of the deadline, which is
/// exactly what NP-completeness permits.
pub fn chain_dp_integral(
    durations: &[Vec<u64>],
    energies: &[Vec<f64>],
    tmax: u64,
) -> Option<(f64, Vec<usize>)> {
    let n = durations.len();
    assert_eq!(energies.len(), n);
    let t = tmax as usize;
    const INF: f64 = f64::INFINITY;
    // dp[time] = min energy to schedule the processed prefix in ≤ time.
    let mut dp = vec![INF; t + 1];
    let mut choice: Vec<Vec<usize>> = Vec::with_capacity(n);
    dp[0] = 0.0;
    // dp over prefix; choice[i][time] = mode picked for task i when the
    // prefix ends exactly at `time`.
    for i in 0..n {
        assert_eq!(durations[i].len(), energies[i].len());
        let mut next = vec![INF; t + 1];
        let mut pick = vec![usize::MAX; t + 1];
        for (k, (&d, &e)) in durations[i].iter().zip(&energies[i]).enumerate() {
            let d = d as usize;
            if d > t {
                continue;
            }
            for time in d..=t {
                let base = dp[time - d];
                if base + e < next[time] {
                    next[time] = base + e;
                    pick[time] = k;
                }
            }
        }
        dp = next;
        choice.push(pick);
    }
    // Best completion time.
    let (best_t, &best_e) = dp
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_finite())
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))?;
    // Walk back the choices.
    let mut modes = vec![0usize; n];
    let mut time = best_t;
    for i in (0..n).rev() {
        let k = choice[i][time];
        debug_assert_ne!(k, usize::MAX);
        modes[i] = k;
        time -= durations[i][k] as usize;
    }
    Some((best_e, modes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use ea_taskgraph::generators;

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
            "{a} vs {b}"
        );
    }

    #[test]
    fn bnb_matches_exhaustive_on_chain() {
        let inst = Instance::single_chain(&[3.0, 1.0, 2.0], 4.0).unwrap();
        let modes = [1.0, 2.0, 3.0];
        let ex = solve_exhaustive(inst.augmented_dag(), 4.0, &modes).unwrap();
        let bb = solve_bnb(inst.augmented_dag(), 4.0, &modes, BnbBound::Simple).unwrap();
        assert_close(bb.energy, ex.energy);
        let bb2 = solve_bnb(inst.augmented_dag(), 4.0, &modes, BnbBound::VddRelaxation).unwrap();
        assert_close(bb2.energy, ex.energy);
    }

    #[test]
    fn bnb_matches_exhaustive_on_random_dags() {
        let modes = [0.5, 1.0, 2.0];
        for seed in 0..4u64 {
            let dag = generators::random_layered(3, 2, 0.5, 0.5, 2.0, seed);
            let inst = Instance::mapped_by_list_scheduling(
                dag,
                crate::platform::Platform::new(2),
                2.0,
                1e9,
            )
            .unwrap();
            let d = 1.5 * inst.makespan_at_uniform_speed(2.0) + 0.5;
            let aug = inst.augmented_dag();
            let ex = solve_exhaustive(aug, d, &modes).unwrap();
            let bb = solve_bnb(aug, d, &modes, BnbBound::Simple).unwrap();
            assert_close(bb.energy, ex.energy);
        }
    }

    #[test]
    fn vdd_bound_prunes_harder() {
        let inst = Instance::single_chain(&[3.0, 1.0, 2.0, 2.5, 1.5, 0.5, 2.2, 1.1], 10.0).unwrap();
        let modes = [0.5, 1.0, 1.5, 2.0];
        let simple = solve_bnb(inst.augmented_dag(), 10.0, &modes, BnbBound::Simple).unwrap();
        let lp = solve_bnb(inst.augmented_dag(), 10.0, &modes, BnbBound::VddRelaxation).unwrap();
        assert_close(simple.energy, lp.energy);
        assert!(
            lp.nodes <= simple.nodes,
            "LP bound should not explore more nodes ({} vs {})",
            lp.nodes,
            simple.nodes
        );
    }

    #[test]
    fn infeasible_detected() {
        let inst = Instance::single_chain(&[10.0], 1.0).unwrap();
        assert!(solve_bnb(inst.augmented_dag(), 1.0, &[1.0, 2.0], BnbBound::Simple).is_err());
    }

    #[test]
    fn discrete_never_beats_vdd() {
        // Model refinement ordering: VDD can mix, DISCRETE cannot.
        let inst = Instance::single_chain(&[3.0, 2.0], 3.0).unwrap();
        let modes = [1.0, 2.0];
        let disc = solve_bnb(inst.augmented_dag(), 3.0, &modes, BnbBound::Simple).unwrap();
        let vdd = crate::bicrit::vdd::solve_on_dag(inst.augmented_dag(), 3.0, &modes).unwrap();
        assert!(vdd.energy <= disc.energy * (1.0 + 1e-9));
    }

    #[test]
    fn dp_solves_simple_knapsack() {
        // Two tasks, modes: (dur 2, e 1) or (dur 1, e 4); budget 3:
        // best = one slow + one fast = 5.
        let durations = vec![vec![2, 1], vec![2, 1]];
        let energies = vec![vec![1.0, 4.0], vec![1.0, 4.0]];
        let (e, modes) = chain_dp_integral(&durations, &energies, 3).unwrap();
        assert_close(e, 5.0);
        assert_eq!(modes.iter().filter(|&&k| k == 1).count(), 1);
    }

    #[test]
    fn dp_detects_infeasible_budget() {
        let durations = vec![vec![5u64]];
        let energies = vec![vec![1.0]];
        assert!(chain_dp_integral(&durations, &energies, 4).is_none());
    }

    #[test]
    fn dp_matches_bnb_on_integral_chain() {
        // weights 1..4 with modes {1, 2}: durations integral after ×2.
        let weights = [1.0, 2.0, 3.0, 4.0];
        let modes = [1.0, 2.0];
        let deadline = 8.0;
        let inst = Instance::single_chain(&weights, deadline).unwrap();
        let bb = solve_bnb(inst.augmented_dag(), deadline, &modes, BnbBound::Simple).unwrap();
        let scale = 2.0;
        let durations: Vec<Vec<u64>> = weights
            .iter()
            .map(|w| {
                modes
                    .iter()
                    .map(|f| (w / f * scale).round() as u64)
                    .collect()
            })
            .collect();
        let energies: Vec<Vec<f64>> = weights
            .iter()
            .map(|w| modes.iter().map(|f| w * f * f).collect())
            .collect();
        let (e, _) = chain_dp_integral(&durations, &energies, (deadline * scale) as u64).unwrap();
        assert_close(e, bb.energy);
    }
}
