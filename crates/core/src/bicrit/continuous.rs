//! CONTINUOUS BI-CRIT (paper, Section III).
//!
//! * Closed forms for chains ([`chain_optimal`]) and forks
//!   ([`fork_theorem`] — the paper's fork theorem, including the `f_max`
//!   fallback), generalised to arbitrary series-parallel structures via the
//!   equivalent-weight algebra ([`sp_optimal`]).
//! * General DAGs: the geometric program of the paper, solved in duration
//!   space as a separable convex program by `ea-convex`
//!   ([`solve_general`]).
//! * [`solve`] on an [`Instance`] + [`SpeedModel::Continuous`] picks the
//!   SP fast path when the augmented DAG is series-parallel and the closed
//!   form stays inside `[f_min, f_max]`, and falls back to the convex
//!   solver otherwise. It is the CONTINUOUS arm of the
//!   [`crate::bicrit::solve`] dispatcher.

use super::SolveOptions;
use crate::error::CoreError;
use crate::instance::Instance;
use crate::speed::SpeedModel;
use ea_convex::{BarrierOptions, LinearConstraints, SeparablePower};
use ea_taskgraph::{analysis, Dag, SpTree};

/// A CONTINUOUS solution: one speed per task plus the resulting energy.
#[derive(Debug, Clone)]
pub struct ContinuousSolution {
    /// Per-task speeds, indexed by task id.
    pub speeds: Vec<f64>,
    /// Total energy `Σ w_i · f_i²`.
    pub energy: f64,
    /// Certified lower bound on the optimal energy (equals `energy` for
    /// the exact closed forms; `energy − gap` for the convex solver).
    pub lower_bound: f64,
    /// Newton iterations spent by the barrier solver (0 on the exact
    /// closed-form paths) — the work unit the Pareto warm-start saves.
    pub newton_steps: usize,
    /// The barrier's final strictly feasible iterate `[d | b]` (duration
    /// and start-time variables), when the convex solver ran. Passing it
    /// back as the `warm` argument of [`solve_general_warm`] at a larger
    /// deadline restarts the barrier from a well-centred point. `None` on
    /// the closed-form paths.
    pub interior: Option<Vec<f64>>,
    /// True if a supplied warm seed was actually consumed (not rejected
    /// as malformed or infeasible, and not bypassed by a closed form).
    pub warm_used: bool,
}

/// Optimal speeds for a single-processor linear chain: one common speed
/// `f = max(Σw / D, f_min)` (constant speed is optimal by convexity of the
/// power function).
pub fn chain_optimal(
    weights: &[f64],
    deadline: f64,
    fmin: f64,
    fmax: f64,
) -> Result<ContinuousSolution, CoreError> {
    let total: f64 = weights.iter().sum();
    let f_needed = total / deadline;
    if f_needed > fmax * (1.0 + 1e-12) {
        return Err(CoreError::InfeasibleDeadline {
            required: total / fmax,
            deadline,
        });
    }
    let f = f_needed.max(fmin);
    let energy = total * f * f;
    Ok(ContinuousSolution {
        speeds: vec![f; weights.len()],
        energy,
        lower_bound: energy,
        newton_steps: 0,
        interior: None,
        warm_used: false,
    })
}

/// The paper's fork theorem (Section III). Task 0 is the source with
/// weight `w0`; tasks `1..=n` are the independent branches.
///
/// * If `f_0 = ((Σ w_i³)^{1/3} + w_0)/D ≤ f_max`: the source runs at `f_0`
///   and branch `i` at `f_i = f_0 · w_i / (Σ w_i³)^{1/3}`, with optimal
///   energy `E = ((Σ w_i³)^{1/3} + w_0)³ / D²`.
/// * Otherwise the source saturates at `f_max` and each branch runs at
///   `w_i / D'` with `D' = D − w_0/f_max`; if a branch still exceeds
///   `f_max` the instance is infeasible.
///
/// Speeds falling below `f_min` are clamped up to `f_min` (the deadline
/// stays met; the energy accounts for the clamped speed).
pub fn fork_theorem(
    w0: f64,
    branch_weights: &[f64],
    deadline: f64,
    fmin: f64,
    fmax: f64,
) -> Result<ContinuousSolution, CoreError> {
    assert!(!branch_weights.is_empty(), "fork needs at least one branch");
    let cube_sum: f64 = branch_weights.iter().map(|w| w.powi(3)).sum();
    let w_par = cube_sum.cbrt();
    let f0 = (w_par + w0) / deadline;

    let (mut speeds, exact) = if f0 <= fmax * (1.0 + 1e-12) {
        let mut v = Vec::with_capacity(branch_weights.len() + 1);
        v.push(f0);
        for &w in branch_weights {
            v.push(f0 * w / w_par);
        }
        (v, true)
    } else {
        // Saturated source.
        let d_rest = deadline - w0 / fmax;
        if d_rest <= 0.0 {
            return Err(CoreError::InfeasibleDeadline {
                required: w0 / fmax,
                deadline,
            });
        }
        let mut v = Vec::with_capacity(branch_weights.len() + 1);
        v.push(fmax);
        for &w in branch_weights {
            let f = w / d_rest;
            if f > fmax * (1.0 + 1e-12) {
                return Err(CoreError::InfeasibleDeadline {
                    required: w0 / fmax + w / fmax,
                    deadline,
                });
            }
            v.push(f);
        }
        (v, false)
    };

    let mut clamped = false;
    for f in speeds.iter_mut() {
        if *f < fmin {
            *f = fmin;
            clamped = true;
        }
    }
    let energy = energy_of(w0, branch_weights, &speeds);
    let lower_bound = if exact && !clamped {
        // The theorem's closed form: ((Σ w_i³)^{1/3} + w_0)³ / D².
        (w_par + w0).powi(3) / (deadline * deadline)
    } else {
        energy
    };
    Ok(ContinuousSolution {
        speeds,
        energy,
        lower_bound,
        newton_steps: 0,
        interior: None,
        warm_used: false,
    })
}

fn energy_of(w0: f64, branch_weights: &[f64], speeds: &[f64]) -> f64 {
    let mut e = w0 * speeds[0] * speeds[0];
    for (i, &w) in branch_weights.iter().enumerate() {
        let f = speeds[i + 1];
        e += w * f * f;
    }
    e
}

/// Optimal CONTINUOUS speeds on a series-parallel decomposition with
/// deadline `D`, ignoring the `[f_min, f_max]` box (the caller checks).
///
/// Budget splitting: a series node divides its window proportionally to
/// the children's equivalent weights; a parallel node hands each child the
/// full window; a leaf of weight `w` with window `T` runs at `w/T`. The
/// resulting energy is `W(G)³ / D²`.
///
/// Returns `(task id, speed)` pairs in DFS-leaf order (ids follow
/// [`SpTree::effective_ids`]).
pub fn sp_optimal(tree: &SpTree, deadline: f64) -> (Vec<(usize, f64)>, f64) {
    let mut out = Vec::with_capacity(tree.task_count());
    let mut dfs_idx = 0usize;
    assign(tree, deadline, &mut out, &mut dfs_idx);
    let w = tree.equivalent_weight();
    (out, w.powi(3) / (deadline * deadline))
}

fn assign(tree: &SpTree, window: f64, out: &mut Vec<(usize, f64)>, dfs_idx: &mut usize) {
    match tree {
        SpTree::Leaf { weight, task } => {
            let id = task.unwrap_or(*dfs_idx);
            out.push((id, weight / window));
            *dfs_idx += 1;
        }
        SpTree::Series(children) => {
            let total: f64 = children.iter().map(SpTree::equivalent_weight).sum();
            for c in children {
                let share = window * c.equivalent_weight() / total;
                assign(c, share, out, dfs_idx);
            }
        }
        SpTree::Parallel(children) => {
            for c in children {
                assign(c, window, out, dfs_idx);
            }
        }
    }
}

/// General DAGs: the convex program in duration space,
/// `min Σ w_i³/d_i²` s.t. `b_i + d_i ≤ b_j` on augmented edges,
/// `b_i + d_i ≤ D`, `b ≥ 0`, `w_i/f_max ≤ d_i ≤ w_i/f_min`.
pub fn solve_general(
    aug: &Dag,
    deadline: f64,
    fmin: f64,
    fmax: f64,
    opts: &BarrierOptions,
) -> Result<ContinuousSolution, CoreError> {
    solve_general_warm(aug, deadline, fmin, fmax, opts, None)
}

/// [`solve_general`] with an optional warm start from a solve of the
/// *same* DAG at a deadline `≤ deadline` (deadline sweeps of
/// [`crate::bicrit::pareto`] hand each point the previous one). `warm`
/// is either
///
/// * the previous [`ContinuousSolution::interior`] (length `2n`) — used
///   verbatim: the barrier's final iterate is strictly feasible for any
///   larger deadline and already well-centred, or
/// * a per-task speed vector (length `n`) — durations and earliest
///   starts are reconstructed and blended a hair toward the cold
///   interior point to restore strict feasibility.
///
/// Either way the barrier weight starts high enough to skip the early
/// centring stages the near-optimal start makes redundant. A warm point
/// that is not strictly feasible under the new constraints (shrinking
/// sweeps, foreign DAG) is ignored.
// Explicit index loops keep the variable layout [d | b] readable.
#[allow(clippy::needless_range_loop)]
pub fn solve_general_warm(
    aug: &Dag,
    deadline: f64,
    fmin: f64,
    fmax: f64,
    opts: &BarrierOptions,
    warm: Option<&[f64]>,
) -> Result<ContinuousSolution, CoreError> {
    let n = aug.len();
    if n == 0 {
        return Ok(ContinuousSolution {
            speeds: vec![],
            energy: 0.0,
            lower_bound: 0.0,
            newton_steps: 0,
            interior: None,
            warm_used: false,
        });
    }
    let w = aug.weights();
    let dur_fmax: Vec<f64> = w.iter().map(|wi| wi / fmax).collect();
    let m_fmax = analysis::critical_path_length(aug, &dur_fmax);
    if m_fmax > deadline * (1.0 + 1e-9) {
        return Err(CoreError::InfeasibleDeadline {
            required: m_fmax,
            deadline,
        });
    }
    // No interior (deadline exactly the fmax makespan) or no speed freedom:
    // the all-fmax schedule is forced/optimal.
    if m_fmax >= deadline * (1.0 - 1e-7) || (fmax - fmin) < 1e-12 * fmax {
        let energy: f64 = w.iter().map(|wi| wi * fmax * fmax).sum();
        return Ok(ContinuousSolution {
            speeds: vec![fmax; n],
            energy,
            lower_bound: 0.0,
            newton_steps: 0,
            interior: None,
            warm_used: false,
        });
    }

    // Variables: x = [d_0..d_{n-1}, b_0..b_{n-1}].
    let dim = 2 * n;
    let dvar = |i: usize| i;
    let bvar = |i: usize| n + i;

    let mut rows: Vec<(Vec<(usize, f64)>, f64)> = Vec::new();
    for &(i, j) in aug.edges() {
        rows.push((vec![(bvar(i), 1.0), (dvar(i), 1.0), (bvar(j), -1.0)], 0.0));
    }
    for i in 0..n {
        rows.push((vec![(bvar(i), 1.0), (dvar(i), 1.0)], deadline)); // finish ≤ D
        rows.push((vec![(bvar(i), -1.0)], 0.0)); // b ≥ 0
        rows.push((vec![(dvar(i), 1.0)], w[i] / fmin)); // d ≤ w/fmin
        rows.push((vec![(dvar(i), -1.0)], -w[i] / fmax)); // d ≥ w/fmax
    }
    let cons = LinearConstraints::from_rows(dim, &rows);
    let obj = SeparablePower::new(dim, (0..n).map(|i| (dvar(i), w[i].powi(3))).collect(), 2.0);

    // Strictly feasible cold start: scale the all-fmax durations by
    // σ ∈ (1, min(D/M, fmax/fmin)) and pad start times.
    let sigma = (deadline / m_fmax).sqrt().min((fmax / fmin).sqrt());
    let d0: Vec<f64> = dur_fmax.iter().map(|d| d * sigma).collect();
    let gamma = (deadline / (sigma * m_fmax) - 1.0).min(0.01) * 0.5;
    let padded: Vec<f64> = d0.iter().map(|d| d * (1.0 + gamma)).collect();
    let est = analysis::earliest_start(aug, &padded);
    let delta = gamma * sigma * m_fmax / (2.0 * (n as f64 + 1.0));
    let mut x0 = vec![0.0; dim];
    for i in 0..n {
        x0[dvar(i)] = d0[i];
        x0[bvar(i)] = est[i] + delta;
    }

    // Warm-start recentring weight: the warm point is blended γ toward
    // the cold interior point (for linear constraints, slack(blend) ≥
    // γ·slack(cold) > 0, and the near-boundary slacks of a previous
    // optimum are lifted to a scale the first centring can handle), and
    // the barrier weight starts where its certified gap m/t matches an
    // η-fraction suboptimality of the warm point — skipping the early
    // centring stages is the whole warm-start payoff. (Correctness is
    // unaffected: the barrier loop still runs until m/t ≤ tol.)
    const GAMMA_COLD: f64 = 0.001;
    const ETA_GAP: f64 = 1e-5;
    let mut opts_eff = opts.clone();
    let mut warm_candidate: Option<Vec<f64>> = None;
    match warm {
        // The previous barrier iterate: strictly feasible here whenever
        // the deadline only grew (checked, in case it shrank).
        Some(prev) if prev.len() == dim && cons.slacks(prev).iter().all(|&s| s > 0.0) => {
            warm_candidate = Some(prev.to_vec());
        }
        // Previous-optimum speeds: reconstruct durations (clamped into
        // the speed box) and earliest starts — feasible for the larger
        // deadline, boundary slacks restored by the blend below.
        Some(prev) if prev.len() == n => {
            let dw: Vec<f64> = (0..n).map(|i| w[i] / prev[i].clamp(fmin, fmax)).collect();
            if analysis::critical_path_length(aug, &dw) <= deadline * (1.0 - 1e-9) {
                let ew = analysis::earliest_start(aug, &dw);
                let mut xw = vec![0.0; dim];
                for i in 0..n {
                    xw[dvar(i)] = dw[i];
                    xw[bvar(i)] = ew[i];
                }
                warm_candidate = Some(xw);
            }
        }
        _ => {}
    }
    let warm_used = warm_candidate.is_some();
    if let Some(xw) = warm_candidate {
        let mut e_warm = 0.0;
        for i in 0..dim {
            x0[i] = (1.0 - GAMMA_COLD) * xw[i] + GAMMA_COLD * x0[i];
            if i < n {
                e_warm += w[i].powi(3) / (x0[i] * x0[i]);
            }
        }
        let t_warm = rows.len() as f64 / (ETA_GAP * e_warm + opts.tol);
        opts_eff.t0 = opts.t0.max(t_warm.min(1e12));
    }

    let sol = ea_convex::solve(&obj, &cons, &x0, &opts_eff)
        .map_err(|e| CoreError::Numerical(format!("barrier solver: {e}")))?;

    let mut speeds = Vec::with_capacity(n);
    let mut energy = 0.0;
    for i in 0..n {
        let f = (w[i] / sol.x[dvar(i)]).clamp(fmin, fmax);
        energy += w[i] * f * f;
        speeds.push(f);
    }
    let lower_bound = (sol.objective - sol.gap).max(0.0);
    Ok(ContinuousSolution {
        speeds,
        energy,
        lower_bound,
        newton_steps: sol.newton_steps,
        interior: Some(sol.x),
        warm_used,
    })
}

/// Solves CONTINUOUS BI-CRIT on an [`Instance`]: tries the exact SP fast
/// path (when the augmented DAG is series-parallel and the closed form
/// stays strictly inside the speed box), otherwise runs the convex solver.
///
/// `model` must be [`SpeedModel::Continuous`]; other variants are routed
/// by [`crate::bicrit::solve`].
pub fn solve(
    inst: &Instance,
    model: &SpeedModel,
    opts: &SolveOptions,
) -> Result<ContinuousSolution, CoreError> {
    let SpeedModel::Continuous { fmin, fmax } = *model else {
        return Err(CoreError::ModelMismatch {
            expected: "CONTINUOUS",
            got: format!("{model:?}"),
        });
    };
    solve_in_box(inst, fmin, fmax, &opts.barrier)
}

/// [`solve`] with an explicit speed box, for callers that derive the
/// bounds from something other than a [`SpeedModel`].
pub fn solve_in_box(
    inst: &Instance,
    fmin: f64,
    fmax: f64,
    opts: &BarrierOptions,
) -> Result<ContinuousSolution, CoreError> {
    solve_in_box_warm(inst, fmin, fmax, opts, None)
}

/// [`solve_in_box`] with an optional warm start (see
/// [`solve_general_warm`]). The exact series-parallel fast path ignores
/// the warm point — it is already a closed form.
pub fn solve_in_box_warm(
    inst: &Instance,
    fmin: f64,
    fmax: f64,
    opts: &BarrierOptions,
    warm: Option<&[f64]>,
) -> Result<ContinuousSolution, CoreError> {
    let aug = inst.augmented_dag();
    if let Ok(tree) = SpTree::from_dag(aug) {
        let (pairs, energy) = sp_optimal(&tree, inst.deadline);
        let in_box = pairs
            .iter()
            .all(|&(_, f)| f >= fmin && f <= fmax * (1.0 + 1e-12));
        if in_box {
            let mut speeds = vec![0.0; aug.len()];
            for (t, f) in pairs {
                speeds[t] = f.min(fmax);
            }
            return Ok(ContinuousSolution {
                speeds,
                energy,
                lower_bound: energy,
                newton_steps: 0,
                interior: None,
                warm_used: false,
            });
        }
    }
    solve_general_warm(aug, inst.deadline, fmin, fmax, opts, warm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use ea_taskgraph::generators;

    fn assert_close(a: f64, b: f64, rel: f64) {
        assert!(
            (a - b).abs() <= rel * a.abs().max(b.abs()).max(1e-12),
            "{a} vs {b}"
        );
    }

    #[test]
    fn chain_uniform_speed() {
        let s = chain_optimal(&[1.0, 2.0, 3.0], 3.0, 0.1, 10.0).unwrap();
        assert_close(s.speeds[0], 2.0, 1e-12);
        assert_close(s.energy, 6.0 * 4.0, 1e-12);
    }

    #[test]
    fn chain_fmin_clamp() {
        let s = chain_optimal(&[1.0], 100.0, 0.5, 2.0).unwrap();
        assert_close(s.speeds[0], 0.5, 1e-12);
    }

    #[test]
    fn chain_infeasible() {
        assert!(chain_optimal(&[10.0], 1.0, 0.5, 2.0).is_err());
    }

    #[test]
    fn fork_matches_paper_energy() {
        let w0 = 2.0;
        let ws = [1.0, 3.0, 2.0];
        let d = 10.0;
        let s = fork_theorem(w0, &ws, d, 1e-6, 100.0).unwrap();
        let w_par = (1.0f64 + 27.0 + 8.0).cbrt();
        assert_close(s.speeds[0], (w_par + w0) / d, 1e-12);
        assert_close(s.speeds[2], s.speeds[0] * 3.0 / w_par, 1e-12);
        assert_close(s.energy, (w_par + w0).powi(3) / (d * d), 1e-9);
        assert_close(s.energy, s.lower_bound, 1e-12);
    }

    #[test]
    fn fork_fmax_fallback() {
        // Tight deadline forces the source to fmax.
        let w0 = 2.0;
        let ws = [1.0, 1.0];
        let fmax = 1.0;
        let d = 3.0; // f0 = (2^{1/3}·1 + 2)/3 > 1 → saturate
        let s = fork_theorem(w0, &ws, d, 1e-6, fmax).unwrap();
        assert_close(s.speeds[0], fmax, 1e-12);
        let d_rest = d - w0 / fmax;
        assert_close(s.speeds[1], 1.0 / d_rest, 1e-12);
    }

    #[test]
    fn fork_infeasible_when_branches_overflow() {
        assert!(fork_theorem(2.0, &[5.0], 3.0, 1e-6, 1.0).is_err());
    }

    #[test]
    fn sp_fork_matches_theorem() {
        let w0 = 2.0;
        let ws = [1.0, 3.0, 2.0];
        let d = 10.0;
        let tree = SpTree::series(vec![
            SpTree::leaf(w0),
            SpTree::parallel(ws.iter().map(|&w| SpTree::leaf(w)).collect()),
        ]);
        let (pairs, energy) = sp_optimal(&tree, d);
        let theorem = fork_theorem(w0, &ws, d, 1e-9, 1e9).unwrap();
        assert_close(energy, theorem.energy, 1e-9);
        // first leaf (DFS order) is the source
        assert_close(pairs[0].1, theorem.speeds[0], 1e-9);
    }

    #[test]
    fn convex_matches_fork_theorem() {
        let w0 = 2.0;
        let ws = [1.0, 3.0, 2.0];
        let d = 10.0;
        let inst = Instance::fork(w0, &ws, d).unwrap();
        let theorem = fork_theorem(w0, &ws, d, 0.01, 100.0).unwrap();
        let num = solve_general(
            inst.augmented_dag(),
            d,
            0.01,
            100.0,
            &BarrierOptions::default(),
        )
        .unwrap();
        assert_close(num.energy, theorem.energy, 1e-3);
    }

    #[test]
    fn convex_matches_chain() {
        let ws = [1.0, 2.0, 3.0];
        let d = 4.0;
        let inst = Instance::single_chain(&ws, d).unwrap();
        let closed = chain_optimal(&ws, d, 0.01, 100.0).unwrap();
        let num = solve_general(
            inst.augmented_dag(),
            d,
            0.01,
            100.0,
            &BarrierOptions::default(),
        )
        .unwrap();
        assert_close(num.energy, closed.energy, 1e-3);
    }

    #[test]
    fn convex_respects_fmax_clamp() {
        // Deadline exactly at the fmax makespan: forced all-fmax schedule.
        let ws = [2.0, 2.0];
        let inst = Instance::single_chain(&ws, 2.0).unwrap();
        let s = solve_general(
            inst.augmented_dag(),
            2.0,
            0.5,
            2.0,
            &BarrierOptions::default(),
        )
        .unwrap();
        assert_close(s.speeds[0], 2.0, 1e-9);
        assert_close(s.energy, 16.0, 1e-9);
    }

    #[test]
    fn convex_infeasible_deadline() {
        let inst = Instance::single_chain(&[4.0], 1.0).unwrap();
        assert!(matches!(
            solve_general(
                inst.augmented_dag(),
                1.0,
                0.5,
                2.0,
                &BarrierOptions::default()
            ),
            Err(CoreError::InfeasibleDeadline { .. })
        ));
    }

    #[test]
    fn instance_solve_uses_sp_fast_path() {
        let inst = Instance::fork(2.0, &[1.0, 3.0, 2.0], 10.0).unwrap();
        let model = crate::speed::SpeedModel::continuous(1e-6, 100.0);
        let s = solve(&inst, &model, &SolveOptions::default()).unwrap();
        let theorem = fork_theorem(2.0, &[1.0, 3.0, 2.0], 10.0, 1e-6, 100.0).unwrap();
        assert_close(s.energy, theorem.energy, 1e-9);
        assert_close(s.lower_bound, s.energy, 1e-9); // exact path
    }

    #[test]
    fn instance_solve_falls_back_on_non_sp() {
        // The "N" DAG on two processors is not SP.
        let dag = ea_taskgraph::Dag::from_parts(vec![1.0, 1.0, 1.0, 1.0], [(0, 2), (0, 3), (1, 3)])
            .unwrap();
        let mapping =
            crate::platform::Mapping::new(vec![0, 1, 0, 1], vec![vec![0, 2], vec![1, 3]]).unwrap();
        let inst = Instance::new(dag, crate::platform::Platform::new(2), mapping, 8.0).unwrap();
        let model = crate::speed::SpeedModel::continuous(0.05, 10.0);
        let s = solve(&inst, &model, &SolveOptions::default()).unwrap();
        // Sanity: deadline met, energy strictly below all-fmax.
        let sched = crate::schedule::Schedule::from_speeds(&s.speeds);
        let ms = sched.makespan(&inst.dag, &inst.mapping).unwrap();
        assert!(ms <= 8.0 * (1.0 + 1e-6));
        assert!(s.energy < 4.0 * 100.0);
    }

    #[test]
    fn random_sp_closed_form_matches_convex() {
        for seed in 0..5u64 {
            let tree = generators::random_sp_tree(10, 0.5, 2.0, seed);
            let dag = tree.to_dag();
            let d = 3.0 * analysis::critical_path_length(&dag, dag.weights());
            let (_, e_closed) = sp_optimal(&tree, d);
            let num = solve_general(&dag, d, 1e-4, 1e4, &BarrierOptions::default()).unwrap();
            assert_close(num.energy, e_closed, 5e-3);
        }
    }
}
