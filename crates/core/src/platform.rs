//! Platforms, mappings and the augmented DAG.
//!
//! The paper assumes the mapping is *given*: an assignment of every task to
//! one of `p` identical processors together with an execution order on each
//! processor ("say by an ordered list of tasks to execute on each
//! processor"). The solvers never re-map; they only choose speeds (and
//! re-executions). The central derived object is the **augmented DAG**: the
//! application DAG plus one chain edge between consecutive tasks of each
//! processor — its longest path (in durations) is the schedule makespan.

use crate::error::CoreError;
use ea_taskgraph::{Dag, TaskId};
use serde::{Deserialize, Serialize};

/// A platform of `p` identical DVFS-capable processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Platform {
    /// Number of processors.
    pub processors: usize,
}

impl Platform {
    /// A platform with `p ≥ 1` processors.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "need at least one processor");
        Platform { processors: p }
    }

    /// Single-processor platform.
    pub fn single() -> Self {
        Platform { processors: 1 }
    }
}

/// A mapping: processor assignment plus per-processor execution order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    proc_of: Vec<usize>,
    order: Vec<Vec<TaskId>>,
}

impl Mapping {
    /// Builds a mapping from a per-task processor assignment and the
    /// per-processor orders, validating consistency.
    pub fn new(proc_of: Vec<usize>, order: Vec<Vec<TaskId>>) -> Result<Self, CoreError> {
        let n = proc_of.len();
        let p = order.len();
        let mut seen = vec![false; n];
        for (proc, tasks) in order.iter().enumerate() {
            for &t in tasks {
                if t >= n {
                    return Err(CoreError::InvalidMapping(format!("unknown task {t}")));
                }
                if seen[t] {
                    return Err(CoreError::InvalidMapping(format!("task {t} listed twice")));
                }
                seen[t] = true;
                if proc_of[t] != proc {
                    return Err(CoreError::InvalidMapping(format!(
                        "task {t} listed on processor {proc} but assigned to {}",
                        proc_of[t]
                    )));
                }
            }
        }
        if let Some(t) = seen.iter().position(|s| !s) {
            return Err(CoreError::InvalidMapping(format!(
                "task {t} missing from orders"
            )));
        }
        if let Some(&bad) = proc_of.iter().find(|&&pr| pr >= p) {
            return Err(CoreError::InvalidMapping(format!(
                "processor {bad} out of range"
            )));
        }
        Ok(Mapping { proc_of, order })
    }

    /// All `n` tasks on one processor, executed in the given order.
    pub fn single_processor(order: Vec<TaskId>) -> Self {
        let n = order.len();
        let mut proc_of = vec![0; n];
        for &t in &order {
            assert!(t < n, "order must be a permutation of 0..n");
            proc_of[t] = 0;
        }
        Mapping {
            proc_of,
            order: vec![order],
        }
    }

    /// One task per processor (fully parallel; used for fork experiments).
    pub fn one_task_per_processor(n: usize) -> Self {
        Mapping {
            proc_of: (0..n).collect(),
            order: (0..n).map(|t| vec![t]).collect(),
        }
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.proc_of.len()
    }

    /// Number of processors.
    pub fn n_processors(&self) -> usize {
        self.order.len()
    }

    /// Processor a task runs on.
    pub fn processor_of(&self, t: TaskId) -> usize {
        self.proc_of[t]
    }

    /// Execution order on a processor.
    pub fn order_on(&self, proc: usize) -> &[TaskId] {
        &self.order[proc]
    }

    /// The augmented DAG: the application DAG plus a chain edge between
    /// consecutive tasks of each processor (duplicates skipped). Fails if
    /// the mapping deadlocks against the precedence constraints (the
    /// combined relation has a cycle).
    pub fn augmented_dag(&self, dag: &Dag) -> Result<Dag, CoreError> {
        if dag.len() != self.n_tasks() {
            return Err(CoreError::InvalidMapping(format!(
                "mapping covers {} tasks but the DAG has {}",
                self.n_tasks(),
                dag.len()
            )));
        }
        let mut aug = dag.clone();
        for tasks in &self.order {
            for pair in tasks.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                match aug.add_edge(a, b) {
                    Ok(_) => {}
                    Err(ea_taskgraph::DagError::DuplicateEdge { .. }) => {}
                    Err(ea_taskgraph::DagError::WouldCycle { .. }) => {
                        return Err(CoreError::InvalidMapping(format!(
                            "processor order {a} before {b} contradicts precedence"
                        )));
                    }
                    Err(e) => return Err(CoreError::InvalidMapping(e.to_string())),
                }
            }
        }
        Ok(aug)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_taskgraph::generators;

    #[test]
    fn single_processor_mapping() {
        let m = Mapping::single_processor(vec![0, 1, 2]);
        assert_eq!(m.n_tasks(), 3);
        assert_eq!(m.n_processors(), 1);
        assert_eq!(m.processor_of(2), 0);
        assert_eq!(m.order_on(0), &[0, 1, 2]);
    }

    #[test]
    fn augmented_dag_adds_chain_edges() {
        // Independent tasks serialized on one processor.
        let dag = Dag::from_parts(vec![1.0, 1.0, 1.0], []).unwrap();
        let m = Mapping::single_processor(vec![2, 0, 1]);
        let aug = m.augmented_dag(&dag).unwrap();
        assert_eq!(aug.edge_count(), 2);
        assert!(aug.successors(2).contains(&0));
        assert!(aug.successors(0).contains(&1));
    }

    #[test]
    fn augmented_dag_skips_duplicates() {
        let dag = generators::chain(&[1.0, 1.0]);
        let m = Mapping::single_processor(vec![0, 1]);
        let aug = m.augmented_dag(&dag).unwrap();
        assert_eq!(aug.edge_count(), 1); // 0->1 present once
    }

    #[test]
    fn deadlocking_order_rejected() {
        let dag = generators::chain(&[1.0, 1.0]); // 0 -> 1
        let m = Mapping::single_processor(vec![1, 0]); // order contradicts it
        assert!(m.augmented_dag(&dag).is_err());
    }

    #[test]
    fn validation_catches_inconsistencies() {
        // task listed twice
        assert!(Mapping::new(vec![0, 0], vec![vec![0, 0]]).is_err());
        // missing task
        assert!(Mapping::new(vec![0, 0], vec![vec![0]]).is_err());
        // wrong processor
        assert!(Mapping::new(vec![0, 1], vec![vec![0, 1], vec![]]).is_err());
        // ok
        assert!(Mapping::new(vec![0, 1], vec![vec![0], vec![1]]).is_ok());
    }

    #[test]
    fn one_task_per_processor_shape() {
        let m = Mapping::one_task_per_processor(4);
        assert_eq!(m.n_processors(), 4);
        for t in 0..4 {
            assert_eq!(m.processor_of(t), t);
            assert_eq!(m.order_on(t), &[t]);
        }
    }

    #[test]
    fn size_mismatch_rejected() {
        let dag = generators::chain(&[1.0, 1.0, 1.0]);
        let m = Mapping::single_processor(vec![0, 1]);
        assert!(m.augmented_dag(&dag).is_err());
    }
}
