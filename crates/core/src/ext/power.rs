//! Generalised power model `P(f) = f^α`, α > 1.
//!
//! The paper fixes α = 3 ("a processor running at speed f dissipates f³
//! watts"); the DVFS literature it cites uses α between 2 and 3. The
//! equivalent-weight algebra generalises cleanly: executing weight `w` in
//! time `T` costs `E = w^α / T^{α−1}`, so
//!
//! * series composition: `W = W₁ + W₂` (time splits ∝ W),
//! * parallel composition: `W = (Σ W_k^α)^{1/α}`,
//! * optimal energy on an SP structure: `E* = W^α / D^{α−1}`.
//!
//! α = 3 recovers every formula of `bicrit::continuous`, including the
//! fork theorem — asserted by the tests below.

use ea_taskgraph::SpTree;

/// Equivalent weight of an SP decomposition under exponent `alpha`.
pub fn equivalent_weight(tree: &SpTree, alpha: f64) -> f64 {
    assert!(alpha > 1.0, "need α > 1 for a convex power model");
    match tree {
        SpTree::Leaf { weight, .. } => *weight,
        SpTree::Series(c) => c.iter().map(|t| equivalent_weight(t, alpha)).sum(),
        SpTree::Parallel(c) => c
            .iter()
            .map(|t| equivalent_weight(t, alpha).powf(alpha))
            .sum::<f64>()
            .powf(1.0 / alpha),
    }
}

/// Optimal CONTINUOUS BI-CRIT energy on an SP structure with deadline `D`
/// under exponent `alpha`: `W^α / D^{α−1}`.
pub fn sp_optimal_energy(tree: &SpTree, deadline: f64, alpha: f64) -> f64 {
    equivalent_weight(tree, alpha).powf(alpha) / deadline.powf(alpha - 1.0)
}

/// Optimal speeds under exponent `alpha`, `(task id, speed)` in DFS-leaf
/// order (generalising `bicrit::continuous::sp_optimal`).
pub fn sp_optimal_speeds(tree: &SpTree, deadline: f64, alpha: f64) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(tree.task_count());
    let mut dfs = 0usize;
    assign(tree, deadline, alpha, &mut out, &mut dfs);
    out
}

fn assign(tree: &SpTree, window: f64, alpha: f64, out: &mut Vec<(usize, f64)>, dfs: &mut usize) {
    match tree {
        SpTree::Leaf { weight, task } => {
            out.push((task.unwrap_or(*dfs), weight / window));
            *dfs += 1;
        }
        SpTree::Series(children) => {
            let total: f64 = children.iter().map(|c| equivalent_weight(c, alpha)).sum();
            for c in children {
                assign(
                    c,
                    window * equivalent_weight(c, alpha) / total,
                    alpha,
                    out,
                    dfs,
                );
            }
        }
        SpTree::Parallel(children) => {
            for c in children {
                assign(c, window, alpha, out, dfs);
            }
        }
    }
}

/// The fork theorem generalised to exponent `alpha`: optimal energy
/// `((Σ w_i^α)^{1/α} + w₀)^α / D^{α−1}`.
pub fn fork_energy(w0: f64, branch_weights: &[f64], deadline: f64, alpha: f64) -> f64 {
    let w_par = branch_weights
        .iter()
        .map(|w| w.powf(alpha))
        .sum::<f64>()
        .powf(1.0 / alpha);
    (w_par + w0).powf(alpha) / deadline.powf(alpha - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicrit::continuous;
    use ea_convex::{BarrierOptions, LinearConstraints, SeparablePower};
    use ea_taskgraph::generators;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-12),
            "{a} vs {b}"
        );
    }

    #[test]
    fn alpha_three_matches_cubic_algebra() {
        for seed in 0..5u64 {
            let tree = generators::random_sp_tree(12, 0.5, 2.5, seed);
            assert_close(
                equivalent_weight(&tree, 3.0),
                tree.equivalent_weight(),
                1e-12,
            );
            let (_, e3) = continuous::sp_optimal(&tree, 4.0);
            assert_close(sp_optimal_energy(&tree, 4.0, 3.0), e3, 1e-12);
        }
    }

    #[test]
    fn fork_energy_alpha3_matches_theorem() {
        let ws = [1.0, 3.0, 2.0];
        let th = continuous::fork_theorem(2.0, &ws, 10.0, 1e-9, 1e9).unwrap();
        assert_close(fork_energy(2.0, &ws, 10.0, 3.0), th.energy, 1e-9);
    }

    #[test]
    fn quadratic_alpha_matches_convex_solver() {
        // α = 2 ⇒ objective Σ w²/d: verify against the barrier solver on
        // a chain: min Σ w²/d s.t. Σd ≤ D ⇒ d_i ∝ w_i, E = (Σw)²/D.
        let w = [1.0f64, 2.0, 3.0];
        let d_total = 2.0;
        let tree = SpTree::series(w.iter().map(|&x| SpTree::leaf(x)).collect());
        let closed = sp_optimal_energy(&tree, d_total, 2.0);
        assert_close(closed, w.iter().sum::<f64>().powi(2) / d_total, 1e-12);

        let obj = SeparablePower::new(
            3,
            w.iter().enumerate().map(|(i, wi)| (i, wi * wi)).collect(),
            1.0,
        );
        let mut rows = vec![(vec![(0, 1.0), (1, 1.0), (2, 1.0)], d_total)];
        for i in 0..3 {
            rows.push((vec![(i, -1.0)], -1e-3));
        }
        let cons = LinearConstraints::from_rows(3, &rows);
        let sol =
            ea_convex::solve(&obj, &cons, &[0.3, 0.3, 0.3], &BarrierOptions::default()).unwrap();
        assert_close(sol.objective, closed, 1e-4);
    }

    #[test]
    fn energy_monotone_in_alpha_for_fast_speeds() {
        // At speeds > 1, a higher exponent costs more energy.
        let tree = SpTree::series(vec![SpTree::leaf(2.0), SpTree::leaf(2.0)]);
        let d = 2.0; // implied speed 2 > 1
        let e2 = sp_optimal_energy(&tree, d, 2.0);
        let e25 = sp_optimal_energy(&tree, d, 2.5);
        let e3 = sp_optimal_energy(&tree, d, 3.0);
        assert!(e2 < e25 && e25 < e3);
    }

    #[test]
    fn speeds_meet_deadline_for_all_alpha() {
        for &alpha in &[2.0, 2.5, 3.0] {
            let tree = generators::random_sp_tree(10, 0.5, 2.5, 3);
            let dag = tree.to_dag();
            let d = 5.0;
            let pairs = sp_optimal_speeds(&tree, d, alpha);
            let mut durs = vec![0.0; dag.len()];
            for (i, (_, f)) in pairs.iter().enumerate() {
                durs[i] = dag.weight(i) / f;
            }
            let cp = ea_taskgraph::analysis::critical_path_length(&dag, &durs);
            assert!(cp <= d * (1.0 + 1e-9), "α={alpha}: makespan {cp} > {d}");
        }
    }

    #[test]
    #[should_panic(expected = "α > 1")]
    fn rejects_degenerate_exponent() {
        equivalent_weight(&SpTree::leaf(1.0), 1.0);
    }
}
