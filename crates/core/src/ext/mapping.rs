//! Energy-aware list-scheduling variants (the paper's Section V
//! direction: the classical critical-path list scheduler, tuned for
//! makespan, *"may well be superseded by another heuristic that
//! trades off execution time, energy and reliability when mapping ready
//! tasks to processors"*).
//!
//! Three placement policies share the critical-path (upward-rank) task
//! order and differ in processor selection:
//!
//! * [`Policy::EarliestFinish`] — the classical choice (minimise finish
//!   time); packs tightly, minimal makespan, but serialises slack away.
//! * [`Policy::LoadBalance`] — minimise the processor's accumulated load;
//!   spreads work, which leaves per-task float for the energy stage.
//! * [`Policy::SlackPreserving`] — minimise finish time but break ties
//!   (within a tolerance band) toward the *least loaded* processor — a
//!   compromise aimed at downstream DVFS.
//!
//! The ablation bench `a02_mapping` measures the *downstream* CONTINUOUS
//! BI-CRIT energy of each mapping — the metric the paper says should
//! drive the choice.

use crate::listsched::upward_rank;
use crate::platform::{Mapping, Platform};
use ea_taskgraph::{Dag, TaskId};

/// Processor-selection policy for the list scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Classical: earliest finish time.
    EarliestFinish,
    /// Least accumulated load.
    LoadBalance,
    /// Earliest finish with load-based tie-breaking (10% band).
    SlackPreserving,
}

/// List-schedules `dag` with the given placement policy at reference
/// speed `f_ref`. Returns the mapping and its makespan at `f_ref`.
pub fn schedule_with_policy(
    dag: &Dag,
    platform: Platform,
    f_ref: f64,
    policy: Policy,
) -> (Mapping, f64) {
    assert!(f_ref > 0.0);
    let n = dag.len();
    let p = platform.processors;
    let rank = upward_rank(dag);

    let mut indeg: Vec<usize> = (0..n).map(|t| dag.predecessors(t).len()).collect();
    let mut ready: Vec<TaskId> = (0..n).filter(|&t| indeg[t] == 0).collect();
    let mut finish = vec![0.0f64; n];
    let mut avail = vec![0.0f64; p];
    let mut load = vec![0.0f64; p];
    let mut proc_of = vec![0usize; n];
    let mut order: Vec<Vec<TaskId>> = vec![Vec::new(); p];
    let mut makespan = 0.0f64;

    while !ready.is_empty() {
        let (idx, &t) = ready
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                rank[a]
                    .partial_cmp(&rank[b])
                    .expect("finite")
                    .then(b.cmp(&a))
            })
            .expect("non-empty");
        ready.swap_remove(idx);
        let dur = dag.weight(t) / f_ref;
        let data_ready = dag
            .predecessors(t)
            .iter()
            .map(|&q| finish[q])
            .fold(0.0, f64::max);

        let proc = match policy {
            Policy::EarliestFinish => (0..p)
                .min_by(|&a, &b| {
                    let fa = data_ready.max(avail[a]) + dur;
                    let fb = data_ready.max(avail[b]) + dur;
                    fa.partial_cmp(&fb).expect("finite")
                })
                .expect("p ≥ 1"),
            Policy::LoadBalance => (0..p)
                .min_by(|&a, &b| load[a].partial_cmp(&load[b]).expect("finite"))
                .expect("p ≥ 1"),
            Policy::SlackPreserving => {
                let finish_on = |q: usize| data_ready.max(avail[q]) + dur;
                let best = (0..p).map(finish_on).fold(f64::INFINITY, f64::min);
                (0..p)
                    .filter(|&q| finish_on(q) <= best * 1.10 + 1e-12)
                    .min_by(|&a, &b| load[a].partial_cmp(&load[b]).expect("finite"))
                    .expect("band contains the minimiser")
            }
        };
        let start = data_ready.max(avail[proc]);
        let end = start + dur;
        finish[t] = end;
        avail[proc] = end;
        load[proc] += dur;
        proc_of[t] = proc;
        order[proc].push(t);
        makespan = makespan.max(end);

        for &s in dag.successors(t) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    (
        Mapping::new(proc_of, order).expect("list schedules are consistent"),
        makespan,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicrit::continuous;
    use crate::instance::Instance;
    use ea_taskgraph::generators;

    #[test]
    fn earliest_finish_matches_classical_scheduler_makespan() {
        // The policy minimises *finish time* (start = max(ready, avail)),
        // while the classical scheduler picks the least-available
        // processor; EF therefore never does worse on makespan.
        let dag = generators::random_layered(5, 4, 0.35, 0.5, 2.0, 3);
        let (m1, ms1) = schedule_with_policy(&dag, Platform::new(3), 2.0, Policy::EarliestFinish);
        let (_, ms2) = crate::listsched::critical_path_list_schedule(&dag, Platform::new(3), 2.0);
        assert!(ms1 <= ms2 + 1e-9, "{ms1} vs {ms2}");
        m1.augmented_dag(&dag).expect("valid mapping");
    }

    #[test]
    fn all_policies_produce_valid_mappings() {
        let dag = generators::gaussian_elimination(4, 1.0);
        for policy in [
            Policy::EarliestFinish,
            Policy::LoadBalance,
            Policy::SlackPreserving,
        ] {
            let (m, _) = schedule_with_policy(&dag, Platform::new(4), 2.0, policy);
            m.augmented_dag(&dag).expect("acyclic augmented DAG");
        }
    }

    #[test]
    fn load_balance_spreads_load() {
        // Independent tasks: load balancing must use every processor.
        let dag = ea_taskgraph::Dag::from_parts(vec![1.0; 8], []).unwrap();
        let (m, _) = schedule_with_policy(&dag, Platform::new(4), 1.0, Policy::LoadBalance);
        for p in 0..4 {
            assert_eq!(m.order_on(p).len(), 2, "processor {p} under/overloaded");
        }
    }

    #[test]
    fn downstream_energy_is_policy_dependent() {
        // The point of the ablation: different mappings give different
        // downstream BI-CRIT energies. Verify all are solvable and finite,
        // and that the earliest-finish makespan is never beaten (it is the
        // makespan-optimised policy).
        let dag = generators::random_layered(6, 4, 0.3, 0.5, 2.0, 11);
        let (m_ef, ms_ef) =
            schedule_with_policy(&dag, Platform::new(3), 2.0, Policy::EarliestFinish);
        let (m_lb, ms_lb) = schedule_with_policy(&dag, Platform::new(3), 2.0, Policy::LoadBalance);
        assert!(ms_ef <= ms_lb + 1e-9, "EF is the makespan-greedy policy");
        let d = 1.5 * ms_ef * 2.0; // deadline in work units at speed 1… use makespan×fref
        for m in [m_ef, m_lb] {
            let inst = Instance::new(dag.clone(), Platform::new(3), m, d).expect("valid instance");
            let sol =
                continuous::solve_in_box(&inst, 0.5, 2.0, &Default::default()).expect("feasible");
            assert!(sol.energy.is_finite() && sol.energy > 0.0);
        }
    }
}
