//! Checkpointing on a chain (the third fault-tolerance mechanism the
//! paper lists in Section II, after Melhem et al.).
//!
//! Model: the chain is cut into contiguous **segments**; after each
//! segment a checkpoint of duration `c` (and energy `e_c`) saves the
//! state. If a transient fault hits a segment, only that segment is
//! re-executed from the last checkpoint. We keep the paper's worst-case
//! semantics: the deadline must hold even if **every segment fails once**
//! (the analogue of charging both executions of a re-executed task), and
//! the reliability constraint becomes segment-wise: a segment's two
//! attempts must jointly be at least as reliable as running each of its
//! tasks once at `f_rel` — conservatively, `(Σ_seg p_i(f))² ≤
//! min_{i∈seg} p_i(f_rel)`.
//!
//! For a fixed uniform speed `f` the optimal segmentation minimising the
//! worst-case makespan is a classic interval DP in `O(n²)`
//! ([`optimal_segmentation`]); [`solve_chain`] then bisects the speed.
//! Dense checkpoints cost overhead `k·c`; sparse checkpoints cost long
//! re-execution windows — the DP balances the two, and the tests compare
//! against task-level re-execution (checkpointing every task ≈
//! re-execution with overhead).

use crate::error::CoreError;
use crate::reliability::ReliabilityModel;

/// Checkpoint cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointCost {
    /// Time to take one checkpoint.
    pub time: f64,
    /// Energy to take one checkpoint.
    pub energy: f64,
}

/// A segmentation of the chain with its metrics at a given speed.
#[derive(Debug, Clone)]
pub struct CheckpointPlan {
    /// Segment boundaries: `segments[k] = (start, end)` (task indices,
    /// `end` exclusive).
    pub segments: Vec<(usize, usize)>,
    /// The uniform execution speed.
    pub speed: f64,
    /// Worst-case makespan (every segment fails once) incl. checkpoints.
    pub worst_makespan: f64,
    /// Worst-case energy (every segment executed twice + checkpoints).
    pub worst_energy: f64,
}

/// Worst-case time of a segment `[i, j)` at speed `f`: two executions of
/// its work plus one checkpoint.
fn seg_time(prefix_w: &[f64], i: usize, j: usize, f: f64, cost: &CheckpointCost) -> f64 {
    let work = prefix_w[j] - prefix_w[i];
    2.0 * work / f + cost.time
}

/// Whether a segment `[i, j)` meets the conservative reliability bound.
fn seg_reliable(weights: &[f64], rel: &ReliabilityModel, i: usize, j: usize, f: f64) -> bool {
    let p_seg: f64 = weights[i..j].iter().map(|&w| rel.failure_prob(w, f)).sum();
    let budget = weights[i..j]
        .iter()
        .map(|&w| rel.target(w))
        .fold(f64::INFINITY, f64::min);
    p_seg * p_seg <= budget * (1.0 + 1e-9)
}

/// Optimal segmentation for a fixed speed: minimises the worst-case
/// makespan over all reliable segmentations (interval DP, `O(n²)`).
/// Returns `None` if no reliable segmentation exists at this speed.
pub fn optimal_segmentation(
    weights: &[f64],
    rel: &ReliabilityModel,
    cost: &CheckpointCost,
    f: f64,
) -> Option<Vec<(usize, usize)>> {
    let n = weights.len();
    let mut prefix = vec![0.0; n + 1];
    for (i, &w) in weights.iter().enumerate() {
        prefix[i + 1] = prefix[i] + w;
    }
    const INF: f64 = f64::INFINITY;
    let mut dp = vec![INF; n + 1];
    let mut cut = vec![usize::MAX; n + 1];
    dp[0] = 0.0;
    for j in 1..=n {
        for i in 0..j {
            if dp[i].is_finite() && seg_reliable(weights, rel, i, j, f) {
                let t = dp[i] + seg_time(&prefix, i, j, f, cost);
                if t < dp[j] {
                    dp[j] = t;
                    cut[j] = i;
                }
            }
        }
    }
    if !dp[n].is_finite() {
        return None;
    }
    let mut segments = Vec::new();
    let mut j = n;
    while j > 0 {
        let i = cut[j];
        segments.push((i, j));
        j = i;
    }
    segments.reverse();
    Some(segments)
}

/// Minimises the uniform speed (hence the energy) such that a reliable
/// segmentation meets the deadline, by bisection on `f`; then reports the
/// plan at that speed.
pub fn solve_chain(
    weights: &[f64],
    deadline: f64,
    rel: &ReliabilityModel,
    cost: &CheckpointCost,
) -> Result<CheckpointPlan, CoreError> {
    assert!(!weights.is_empty());
    let feasible_at = |f: f64| -> Option<f64> {
        let segs = optimal_segmentation(weights, rel, cost, f)?;
        let mut prefix = vec![0.0; weights.len() + 1];
        for (i, &w) in weights.iter().enumerate() {
            prefix[i + 1] = prefix[i] + w;
        }
        let t: f64 = segs
            .iter()
            .map(|&(i, j)| seg_time(&prefix, i, j, f, cost))
            .sum();
        (t <= deadline * (1.0 + 1e-12)).then_some(t)
    };
    if feasible_at(rel.fmax).is_none() {
        return Err(CoreError::InfeasibleDeadline {
            required: 2.0 * weights.iter().sum::<f64>() / rel.fmax + cost.time,
            deadline,
        });
    }
    let (mut lo, mut hi) = (rel.fmin, rel.fmax);
    if feasible_at(lo).is_some() {
        hi = lo;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if feasible_at(mid).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let f = hi;
    let segments =
        optimal_segmentation(weights, rel, cost, f).expect("bisection endpoint is feasible");
    let mut prefix = vec![0.0; weights.len() + 1];
    for (i, &w) in weights.iter().enumerate() {
        prefix[i + 1] = prefix[i] + w;
    }
    let worst_makespan: f64 = segments
        .iter()
        .map(|&(i, j)| seg_time(&prefix, i, j, f, cost))
        .sum();
    let work: f64 = weights.iter().sum();
    let worst_energy = 2.0 * work * f * f + segments.len() as f64 * cost.energy;
    Ok(CheckpointPlan {
        segments,
        speed: f,
        worst_makespan,
        worst_energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_taskgraph::generators;

    fn rel() -> ReliabilityModel {
        ReliabilityModel::typical(1.0, 2.0, 1.8)
    }

    fn cost() -> CheckpointCost {
        CheckpointCost {
            time: 0.05,
            energy: 0.05,
        }
    }

    #[test]
    fn segmentation_covers_the_chain() {
        let rel = rel();
        let w = generators::random_weights(12, 0.5, 1.5, 3);
        let segs = optimal_segmentation(&w, &rel, &cost(), 1.5).expect("feasible");
        assert_eq!(segs.first().expect("non-empty").0, 0);
        assert_eq!(segs.last().expect("non-empty").1, w.len());
        for win in segs.windows(2) {
            assert_eq!(win[0].1, win[1].0, "segments must be contiguous");
        }
    }

    #[test]
    fn heavier_chains_need_more_checkpoints() {
        // Longer chains accumulate failure probability: segments must stay
        // short enough, so their count grows. A hot fault model keeps the
        // segment budget tight enough to force multiple cuts.
        let rel = ReliabilityModel::new(0.01, 3.0, 1.0, 2.0, 1.8);
        let short = optimal_segmentation(&[1.0; 4], &rel, &cost(), 1.4).expect("ok");
        let long = optimal_segmentation(&vec![1.0; 40], &rel, &cost(), 1.4).expect("ok");
        assert!(
            long.len() > short.len(),
            "{} vs {}",
            long.len(),
            short.len()
        );
    }

    #[test]
    fn cheap_checkpoints_mean_fine_segmentation() {
        let rel = rel();
        let w = vec![1.0; 20];
        let fine = optimal_segmentation(
            &w,
            &rel,
            &CheckpointCost {
                time: 1e-4,
                energy: 0.0,
            },
            1.5,
        )
        .expect("ok");
        let coarse = optimal_segmentation(
            &w,
            &rel,
            &CheckpointCost {
                time: 0.8,
                energy: 0.0,
            },
            1.5,
        )
        .expect("ok");
        assert!(fine.len() >= coarse.len());
    }

    #[test]
    fn solve_chain_meets_deadline() {
        let rel = rel();
        let w = generators::random_weights(10, 0.5, 1.5, 7);
        let d = 2.5 * w.iter().sum::<f64>() / rel.fmax + 1.0;
        let plan = solve_chain(&w, d, &rel, &cost()).expect("feasible");
        assert!(plan.worst_makespan <= d * (1.0 + 1e-9));
        assert!(plan.speed >= rel.fmin && plan.speed <= rel.fmax);
    }

    #[test]
    fn infeasible_deadline_rejected() {
        let rel = rel();
        assert!(solve_chain(&[10.0], 1.0, &rel, &cost()).is_err());
    }

    #[test]
    fn slack_lowers_speed_and_energy() {
        let rel = rel();
        let w = generators::random_weights(10, 0.5, 1.5, 9);
        let base = 2.0 * w.iter().sum::<f64>() / rel.fmax + 1.0;
        let tight = solve_chain(&w, 1.1 * base, &rel, &cost()).expect("ok");
        let loose = solve_chain(&w, 3.0 * base, &rel, &cost()).expect("ok");
        assert!(loose.speed <= tight.speed + 1e-9);
        assert!(loose.worst_energy <= tight.worst_energy * (1.0 + 1e-9));
    }

    #[test]
    fn checkpointing_beats_task_level_reexecution_on_long_chains() {
        // Task-level re-execution ≈ a checkpoint after every task. With a
        // non-trivial checkpoint cost, coarser segments win: the DP plan
        // must never be worse than the every-task segmentation.
        let rel = rel();
        let w = vec![0.8; 16];
        let f = 1.5;
        let c = CheckpointCost {
            time: 0.3,
            energy: 0.3,
        };
        let mut prefix = vec![0.0; w.len() + 1];
        for (i, &wi) in w.iter().enumerate() {
            prefix[i + 1] = prefix[i] + wi;
        }
        let every_task: f64 = (0..w.len())
            .map(|i| seg_time(&prefix, i, i + 1, f, &c))
            .sum();
        let plan = optimal_segmentation(&w, &rel, &c, f).expect("ok");
        let dp_time: f64 = plan
            .iter()
            .map(|&(i, j)| seg_time(&prefix, i, j, f, &c))
            .sum();
        assert!(dp_time <= every_task * (1.0 + 1e-12));
    }
}
