//! Extensions beyond the paper's published results — its own stated
//! research directions, as code:
//!
//! * [`power`] — the generalised power model `P = f^α` (the paper fixes
//!   α = 3; the literature uses α ∈ [2, 3]): the equivalent-weight
//!   algebra and closed forms for arbitrary α > 1.
//! * [`replication`] — the paper's Section V direction: *"More efficient
//!   solutions … could be achieved through combining replication with
//!   re-execution"*. Per-task choice between once / re-execute /
//!   replicate on forks, under a spare-processor budget.
//! * [`checkpoint`] — the third fault-tolerance mechanism the paper lists
//!   in Section II (Melhem et al.): checkpoint placement on chains, as a
//!   segment-level re-execution model with checkpoint overhead.
//! * [`mapping`] — Section V: *"the classical critical-path
//!   list-scheduling heuristic … may well be superseded by another
//!   heuristic that trades off execution time, energy and reliability"*:
//!   alternative list-scheduling policies and their downstream energy.

pub mod checkpoint;
pub mod mapping;
pub mod power;
pub mod replication;
