//! Replication vs. re-execution (the paper's Section V direction).
//!
//! Replication (Assayad et al., reference 1 of the paper) runs the *same*
//! task on two processors **simultaneously**: the time cost is a single
//! execution (`w/f`), the energy cost is double (`2·w·f²`), and the task
//! fails only if both copies fail (`p(f)²` — the same reliability boost as
//! re-execution). Re-execution serialises the two attempts: time `2·w/f`
//! in the worst case, same worst-case energy. So:
//!
//! * tight deadlines favour **replication**: it spends the wall-clock
//!   time of a single execution, so a pair still fits where two serial
//!   attempts cannot — provided a spare processor exists;
//! * with loose deadlines both mechanisms run at the same reliability
//!   floor and cost the same worst-case energy; **re-execution** then
//!   wins on resources (no spare processor) and on *expected* energy
//!   (the second attempt is skipped whenever the first succeeds, which
//!   the simulator's actual-energy column shows).
//!
//! This module explores the trade-off on the fork topology, where spare
//! processors are a hard budget: each replicated branch occupies a second
//! processor for its execution window.

use crate::error::CoreError;
use crate::reliability::ReliabilityModel;

/// Fault-tolerance strategy chosen for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Single execution at ≥ `f_rel`.
    Once,
    /// Two serial executions (the paper's re-execution).
    ReExecute,
    /// Two simultaneous copies on distinct processors.
    Replicate,
}

/// Per-task decision with its speed and worst-case energy.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Chosen strategy.
    pub strategy: Strategy,
    /// Execution speed (common to both copies/attempts).
    pub speed: f64,
    /// Worst-case energy.
    pub energy: f64,
}

/// Result of the fork analysis.
#[derive(Debug, Clone)]
pub struct ReplicationSolution {
    /// Decision per task (index 0 = source, then branches).
    pub decisions: Vec<Decision>,
    /// Total worst-case energy.
    pub energy: f64,
    /// Spare processors actually consumed by replication.
    pub spares_used: usize,
}

/// Cheapest reliable decision for weight `w` within window `t`, given
/// whether a spare processor is available.
fn best_decision(
    w: f64,
    t: f64,
    rel: &ReliabilityModel,
    spare_available: bool,
) -> Option<Decision> {
    if t <= 0.0 {
        return None;
    }
    let mut best: Option<Decision> = None;
    let mut consider = |d: Decision| {
        if d.speed <= rel.fmax * (1.0 + 1e-12) && best.as_ref().is_none_or(|b| d.energy < b.energy)
        {
            best = Some(d);
        }
    };
    // Once: f ≥ max(w/t, frel).
    let f_once = (w / t).max(rel.frel).max(rel.fmin);
    consider(Decision {
        strategy: Strategy::Once,
        speed: f_once,
        energy: w * f_once * f_once,
    });
    // Re-execute: both attempts within t ⇒ g ≥ max(2w/t, g_min).
    let g_re = (2.0 * w / t)
        .max(rel.reexec_equal_speed_min(w))
        .max(rel.fmin);
    consider(Decision {
        strategy: Strategy::ReExecute,
        speed: g_re,
        energy: 2.0 * w * g_re * g_re,
    });
    // Replicate: copies run in parallel ⇒ g ≥ max(w/t, g_min), needs a spare.
    if spare_available {
        let g_rep = (w / t).max(rel.reexec_equal_speed_min(w)).max(rel.fmin);
        consider(Decision {
            strategy: Strategy::Replicate,
            speed: g_rep,
            energy: 2.0 * w * g_rep * g_rep,
        });
    }
    best
}

/// Fork with a spare-processor budget: source + `n` branches (one
/// processor each) plus `spares` extra processors usable for replication.
/// The deadline split `t` is optimised on a grid with golden refinement,
/// and within each split the spares go greedily to the branches that gain
/// the most from replication.
pub fn solve_fork(
    w0: f64,
    ws: &[f64],
    deadline: f64,
    rel: &ReliabilityModel,
    spares: usize,
) -> Result<ReplicationSolution, CoreError> {
    assert!(!ws.is_empty());
    let t_lo = ws.iter().fold(0.0f64, |m, &w| m.max(w / rel.fmax));
    let t_hi = deadline - w0 / rel.fmax;
    if t_lo >= t_hi {
        return Err(CoreError::InfeasibleDeadline {
            required: t_lo + w0 / rel.fmax,
            deadline,
        });
    }

    let evaluate = |t: f64| -> Option<(f64, Vec<Decision>, usize)> {
        // Source never replicates (it has no dedicated spare in this
        // topology — replication would collide with branch starts).
        let d0 = best_decision(w0, deadline - t, rel, false)?;
        // Branch decisions without spares, plus the gain if replicated.
        let mut decisions: Vec<Decision> = Vec::with_capacity(ws.len());
        let mut gains: Vec<(f64, usize, Decision)> = Vec::new();
        for (i, &w) in ws.iter().enumerate() {
            let plain = best_decision(w, t, rel, false)?;
            if let Some(with_spare) = best_decision(w, t, rel, true) {
                if with_spare.strategy == Strategy::Replicate
                    && with_spare.energy < plain.energy - 1e-12
                {
                    gains.push((plain.energy - with_spare.energy, i, with_spare));
                }
            }
            decisions.push(plain);
        }
        gains.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite gains"));
        let mut used = 0usize;
        for (_, i, d) in gains.into_iter().take(spares) {
            decisions[i] = d;
            used += 1;
        }
        let energy = d0.energy + decisions.iter().map(|d| d.energy).sum::<f64>();
        let mut all = vec![d0];
        all.extend(decisions);
        Some((energy, all, used))
    };

    // Grid + refinement over the split.
    let mut best: Option<(f64, f64)> = None; // (energy, t)
    let grid = 256usize;
    for k in 0..=grid {
        let t = t_lo + (t_hi - t_lo) * (k as f64 + 0.5) / (grid as f64 + 1.0);
        if let Some((e, _, _)) = evaluate(t) {
            if best.is_none_or(|(be, _)| e < be) {
                best = Some((e, t));
            }
        }
    }
    let (_, mut t_star) =
        best.ok_or_else(|| CoreError::Infeasible("no feasible deadline split".into()))?;
    // Local refinement around the best grid point.
    let step0 = (t_hi - t_lo) / grid as f64;
    let mut step = step0;
    for _ in 0..40 {
        step *= 0.5;
        for cand in [t_star - step, t_star + step] {
            if cand > t_lo && cand < t_hi {
                if let (Some((ec, _, _)), Some((eb, _, _))) = (evaluate(cand), evaluate(t_star)) {
                    if ec < eb {
                        t_star = cand;
                    }
                }
            }
        }
    }
    let (energy, decisions, spares_used) = evaluate(t_star).expect("refined split stays feasible");
    Ok(ReplicationSolution {
        decisions,
        energy,
        spares_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_taskgraph::generators;

    fn rel() -> ReliabilityModel {
        ReliabilityModel::typical(1.0, 2.0, 1.8)
    }

    #[test]
    fn no_spares_reduces_to_fork_algorithm() {
        let rel = rel();
        let ws = generators::random_weights(5, 0.5, 2.0, 1);
        let d = 4.0;
        let no_rep = solve_fork(1.0, &ws, d, &rel, 0).unwrap();
        let fork = crate::tricrit::fork::solve(1.0, &ws, d, &rel).unwrap();
        assert!(
            (no_rep.energy - fork.energy).abs() <= 2e-3 * fork.energy,
            "{} vs {}",
            no_rep.energy,
            fork.energy
        );
        assert_eq!(no_rep.spares_used, 0);
    }

    #[test]
    fn tight_deadline_prefers_replication_when_spares_exist() {
        // Window too small for two serial executions (2w/t > fmax), large
        // enough for a replica pair at speed ≈ 1.2 whose doubled energy
        // 2w·1.2² still undercuts a single execution at frel = 1.8.
        let rel = rel();
        let ws = [1.9, 1.9, 1.9];
        let d = 1.0 / rel.fmax + 1.9 / 1.2; // branch window ≈ w/1.2
        let with = solve_fork(1.0, &ws, d, &rel, 3).unwrap();
        let without = solve_fork(1.0, &ws, d, &rel, 0).unwrap();
        assert!(with.spares_used > 0, "spares must be exploited");
        assert!(with.energy <= without.energy * (1.0 + 1e-9));
        assert!(with
            .decisions
            .iter()
            .any(|dc| dc.strategy == Strategy::Replicate));
    }

    #[test]
    fn spare_budget_is_respected() {
        let rel = rel();
        let ws = [1.9; 6];
        let d = 1.0 / rel.fmax + 1.9 / 1.3;
        for spares in [0usize, 1, 2, 6] {
            let s = solve_fork(1.0, &ws, d, &rel, spares).unwrap();
            assert!(s.spares_used <= spares);
        }
    }

    #[test]
    fn more_spares_never_hurt() {
        let rel = rel();
        let ws = generators::random_weights(6, 1.0, 2.0, 9);
        let d = 3.0;
        let mut last = f64::INFINITY;
        for spares in 0..=6 {
            let e = solve_fork(1.0, &ws, d, &rel, spares).unwrap().energy;
            assert!(e <= last * (1.0 + 1e-9), "spares={spares}: {e} > {last}");
            last = e;
        }
    }

    #[test]
    fn decisions_are_individually_reliable() {
        let rel = rel();
        let ws = generators::random_weights(5, 0.5, 2.0, 4);
        let s = solve_fork(1.0, &ws, 5.0, &rel, 2).unwrap();
        let weights = std::iter::once(1.0).chain(ws.iter().copied());
        for (d, w) in s.decisions.iter().zip(weights) {
            match d.strategy {
                Strategy::Once => assert!(rel.single_ok(w, d.speed)),
                Strategy::ReExecute | Strategy::Replicate => {
                    assert!(rel.pair_ok(w, d.speed, d.speed))
                }
            }
        }
    }

    #[test]
    fn infeasible_deadline_rejected() {
        let rel = rel();
        assert!(solve_fork(10.0, &[1.0], 1.0, &rel, 4).is_err());
    }
}
