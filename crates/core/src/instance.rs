//! Problem instances: the bundle every solver consumes.

use crate::error::CoreError;
use crate::listsched;
use crate::platform::{Mapping, Platform};
use ea_taskgraph::{Dag, TaskId};

/// A BI-CRIT/TRI-CRIT instance: an application DAG already mapped onto a
/// platform, plus the deadline bound `D`.
///
/// The augmented DAG (precedence ∪ processor-order edges) is precomputed —
/// every solver works on it.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The application DAG (weights = computation requirements).
    pub dag: Dag,
    /// The target platform.
    pub platform: Platform,
    /// The given mapping.
    pub mapping: Mapping,
    /// The deadline bound `D` on the makespan.
    pub deadline: f64,
    aug: Dag,
}

impl Instance {
    /// Builds an instance from its parts, validating the mapping.
    pub fn new(
        dag: Dag,
        platform: Platform,
        mapping: Mapping,
        deadline: f64,
    ) -> Result<Self, CoreError> {
        if !(deadline.is_finite() && deadline > 0.0) {
            return Err(CoreError::Infeasible(format!("bad deadline {deadline}")));
        }
        if mapping.n_processors() > platform.processors {
            return Err(CoreError::InvalidMapping(format!(
                "mapping uses {} processors, platform has {}",
                mapping.n_processors(),
                platform.processors
            )));
        }
        let aug = mapping.augmented_dag(&dag)?;
        Ok(Instance {
            dag,
            platform,
            mapping,
            deadline,
            aug,
        })
    }

    /// A single-processor instance executing `weights` as a linear chain in
    /// index order (the TRI-CRIT chain setting).
    pub fn single_chain(weights: &[f64], deadline: f64) -> Result<Self, CoreError> {
        let dag = ea_taskgraph::generators::chain(weights);
        let order: Vec<TaskId> = (0..weights.len()).collect();
        Self::new(
            dag,
            Platform::single(),
            Mapping::single_processor(order),
            deadline,
        )
    }

    /// A fork instance (source + `n` branches) with the source on processor
    /// 0 and one branch per processor — the paper's fork-theorem setting.
    pub fn fork(
        source_weight: f64,
        branch_weights: &[f64],
        deadline: f64,
    ) -> Result<Self, CoreError> {
        let dag = ea_taskgraph::generators::fork(source_weight, branch_weights);
        let n = dag.len();
        let p = branch_weights.len().max(1);
        // source on proc 0, branch i on proc i (mod p)
        let mut proc_of = vec![0usize; n];
        let mut order: Vec<Vec<TaskId>> = vec![Vec::new(); p];
        order[0].push(0);
        for (b, slot) in proc_of.iter_mut().enumerate().skip(1) {
            let proc = (b - 1) % p;
            *slot = proc;
            order[proc].push(b);
        }
        let mapping = Mapping::new(proc_of, order)?;
        Self::new(dag, Platform::new(p), mapping, deadline)
    }

    /// Maps a bare DAG with the critical-path list scheduler (at reference
    /// speed `f_ref`), then wraps it as an instance.
    pub fn mapped_by_list_scheduling(
        dag: Dag,
        platform: Platform,
        f_ref: f64,
        deadline: f64,
    ) -> Result<Self, CoreError> {
        let (mapping, _) = listsched::critical_path_list_schedule(&dag, platform, f_ref);
        Self::new(dag, platform, mapping, deadline)
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.dag.len()
    }

    /// The augmented DAG (precedence ∪ processor-order edges).
    pub fn augmented_dag(&self) -> &Dag {
        &self.aug
    }

    /// Makespan lower bound at speed `f`: critical-path length of the
    /// augmented DAG with durations `w/f`.
    pub fn makespan_at_uniform_speed(&self, f: f64) -> f64 {
        let durs: Vec<f64> = self.dag.weights().iter().map(|w| w / f).collect();
        ea_taskgraph::analysis::critical_path_length(&self.aug, &durs)
    }

    /// The minimum uniform speed meeting the deadline: `CP_w / D`, where
    /// `CP_w` is the critical-path weight of the augmented DAG.
    pub fn critical_uniform_speed(&self) -> f64 {
        ea_taskgraph::analysis::critical_path_length(&self.aug, self.dag.weights()) / self.deadline
    }

    /// Returns a copy with a different deadline (for deadline sweeps).
    /// The precomputed augmented DAG is reused — only the deadline is
    /// validated, so sweeping deadlines (e.g. `bicrit::pareto`) does not
    /// re-pay the mapping reduction per point.
    pub fn with_deadline(&self, deadline: f64) -> Result<Self, CoreError> {
        if !(deadline.is_finite() && deadline > 0.0) {
            return Err(CoreError::Infeasible(format!("bad deadline {deadline}")));
        }
        Ok(Instance {
            dag: self.dag.clone(),
            platform: self.platform,
            mapping: self.mapping.clone(),
            deadline,
            aug: self.aug.clone(),
        })
    }

    /// The canonical content digest of this instance: identical for any
    /// relabelling of task indices or reordering of the edge list, and
    /// different whenever a weight, edge, processor assignment, execution
    /// order, platform size, or the deadline changes. See
    /// [`crate::digest`] for the canonical form; combine with the speed
    /// model and solver options via
    /// [`crate::digest::solve_request_digest`] to key a solution cache.
    pub fn canonical_digest(&self) -> u64 {
        let mut h = crate::digest::Hasher64::new();
        crate::digest::write_instance(&mut h, self);
        h.finish()
    }

    /// Solves BI-CRIT on this instance under `model` — sugar for the
    /// [`crate::bicrit::solve`] dispatcher.
    pub fn solve(
        &self,
        model: &crate::speed::SpeedModel,
        opts: &crate::bicrit::SolveOptions,
    ) -> Result<crate::bicrit::Solution, CoreError> {
        crate::bicrit::solve(self, model, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chain_instance() {
        let inst = Instance::single_chain(&[1.0, 2.0, 3.0], 10.0).unwrap();
        assert_eq!(inst.n_tasks(), 3);
        assert_eq!(inst.augmented_dag().edge_count(), 2);
        assert!((inst.makespan_at_uniform_speed(1.0) - 6.0).abs() < 1e-12);
        assert!((inst.critical_uniform_speed() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn fork_instance_parallel() {
        let inst = Instance::fork(1.0, &[2.0, 3.0], 10.0).unwrap();
        assert_eq!(inst.platform.processors, 2);
        // augmented: fork edges + chain edge on proc 0 (source then branch 1)
        assert!((inst.makespan_at_uniform_speed(1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bad_deadline_rejected() {
        assert!(Instance::single_chain(&[1.0], 0.0).is_err());
        assert!(Instance::single_chain(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn list_scheduled_instance() {
        let dag = ea_taskgraph::generators::random_layered(4, 3, 0.4, 0.5, 2.0, 5);
        let inst = Instance::mapped_by_list_scheduling(dag, Platform::new(3), 1.0, 100.0).unwrap();
        assert_eq!(inst.mapping.n_processors(), 3);
        inst.mapping.augmented_dag(&inst.dag).unwrap();
    }

    #[test]
    fn with_deadline_copies() {
        let inst = Instance::single_chain(&[1.0, 1.0], 4.0).unwrap();
        let tight = inst.with_deadline(2.0).unwrap();
        assert_eq!(tight.deadline, 2.0);
        assert_eq!(inst.deadline, 4.0);
    }
}
