//! Canonical content digests for solve-request caching.
//!
//! A serving layer in front of the solvers wants to answer *semantically
//! identical* requests from a cache: the same DAG (up to a relabelling of
//! task indices and a reordering of the edge list), mapped the same way,
//! under the same deadline, speed model, and solver knobs, must produce
//! the same key — while perturbing any weight, deadline, mode, or option
//! must change it.
//!
//! The canonical form exploits a property the paper's setting guarantees:
//! the mapping lists every task exactly once as *(processor, rank in that
//! processor's execution order)*, and that pair is semantic — it survives
//! any relabelling of task indices. Tasks are therefore enumerated
//! processor by processor, rank by rank, and edges are rewritten into
//! canonical indices and sorted before hashing, so neither the original
//! task numbering nor the edge insertion order leaks into the digest.
//!
//! Hashing is 64-bit FNV-1a over a tagged byte stream ([`Hasher64`]) —
//! no external dependencies, stable across runs and platforms. Floats are
//! hashed by IEEE bit pattern with `-0.0` folded onto `0.0`.
//!
//! ```
//! use ea_core::bicrit::SolveOptions;
//! use ea_core::digest::solve_request_digest;
//! use ea_core::speed::SpeedModel;
//! use ea_core::Instance;
//!
//! let inst = Instance::single_chain(&[1.0, 2.0], 4.0).unwrap();
//! let model = SpeedModel::continuous(1.0, 2.0);
//! let opts = SolveOptions::default();
//! let d = solve_request_digest(&inst, &model, &opts);
//! assert_eq!(d, solve_request_digest(&inst, &model, &opts), "deterministic");
//! let other = SpeedModel::continuous(1.0, 2.5);
//! assert_ne!(d, solve_request_digest(&inst, &other, &opts));
//! ```

use crate::bicrit::{BnbBound, SolveOptions};
use crate::instance::Instance;
use crate::speed::SpeedModel;

/// Incremental 64-bit FNV-1a hasher over a tagged byte stream.
///
/// Every `write_*` method feeds a type tag before the payload, so adjacent
/// fields cannot alias (e.g. the pair `(1u64, 2u64)` hashes differently
/// from `(12u64,)` spelled as bytes).
#[derive(Debug, Clone)]
pub struct Hasher64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Hasher64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Hasher64 { state: FNV_OFFSET }
    }

    fn byte(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Feeds raw bytes (no tag — building block for the tagged writers).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    /// Feeds a tagged `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.byte(0x01);
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a tagged `usize` (hashed as `u64`, stable across word sizes).
    pub fn write_usize(&mut self, v: usize) {
        self.byte(0x02);
        self.write_bytes(&(v as u64).to_le_bytes());
    }

    /// Feeds a tagged `f64` by bit pattern, folding `-0.0` onto `0.0` and
    /// every NaN onto one canonical pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.byte(0x03);
        let bits = if v == 0.0 {
            0u64 // +0.0 and -0.0 compare equal: same digest
        } else if v.is_nan() {
            f64::NAN.to_bits()
        } else {
            v.to_bits()
        };
        self.write_bytes(&bits.to_le_bytes());
    }

    /// Feeds a tagged UTF-8 string (length-prefixed).
    pub fn write_str(&mut self, s: &str) {
        self.byte(0x04);
        self.write_bytes(&(s.len() as u64).to_le_bytes());
        self.write_bytes(s.as_bytes());
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        // One final avalanche round (splitmix64) so shard selection by
        // prefix bits sees well-mixed high bits even for tiny inputs.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Writes the canonical form of an instance: platform size, deadline, and
/// per-task (weight, processor) in canonical *(processor, rank)* order,
/// then the edge relation rewritten to canonical indices and sorted.
pub fn write_instance(h: &mut Hasher64, inst: &Instance) {
    h.write_str("instance-v1");
    let n = inst.n_tasks();
    h.write_usize(n);
    h.write_usize(inst.platform.processors);
    h.write_f64(inst.deadline);

    // Canonical index of each task: enumeration order processor by
    // processor, rank by rank. The mapping lists every task exactly once,
    // so this is a total order independent of the original task ids.
    let mut canon = vec![0usize; n];
    let mut next = 0usize;
    for p in 0..inst.mapping.n_processors() {
        for &t in inst.mapping.order_on(p) {
            canon[t] = next;
            next += 1;
        }
    }
    debug_assert_eq!(next, n, "mapping covers every task exactly once");

    // Per-task payload in canonical order: weight and processor. The rank
    // is implied by the enumeration itself.
    let weights = inst.dag.weights();
    let mut by_canon: Vec<(usize, usize)> = (0..n).map(|t| (canon[t], t)).collect();
    by_canon.sort_unstable();
    for &(_, t) in &by_canon {
        h.write_f64(weights[t]);
        h.write_usize(inst.mapping.processor_of(t));
    }

    // Edges in canonical indices, sorted — insertion order cannot leak.
    let mut edges: Vec<(usize, usize)> = inst
        .dag
        .edges()
        .iter()
        .map(|&(s, d)| (canon[s], canon[d]))
        .collect();
    edges.sort_unstable();
    h.write_usize(edges.len());
    for (s, d) in edges {
        h.write_usize(s);
        h.write_usize(d);
    }
}

/// Writes a speed model: variant tag plus parameters (mode lists are
/// hashed in their normalised sorted order).
pub fn write_speed_model(h: &mut Hasher64, model: &SpeedModel) {
    match model {
        SpeedModel::Continuous { fmin, fmax } => {
            h.write_str("continuous");
            h.write_f64(*fmin);
            h.write_f64(*fmax);
        }
        SpeedModel::Discrete { modes } => {
            h.write_str("discrete");
            write_modes(h, modes);
        }
        SpeedModel::VddHopping { modes } => {
            h.write_str("vdd-hopping");
            write_modes(h, modes);
        }
        SpeedModel::Incremental { fmin, fmax, delta } => {
            h.write_str("incremental");
            h.write_f64(*fmin);
            h.write_f64(*fmax);
            h.write_f64(*delta);
        }
    }
}

fn write_modes(h: &mut Hasher64, modes: &[f64]) {
    // Constructors normalise (sort + dedup) already; re-sorting here keeps
    // the digest canonical even for hand-built variants.
    let mut sorted = modes.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite modes"));
    h.write_usize(sorted.len());
    for m in sorted {
        h.write_f64(m);
    }
}

/// Writes every solver knob of [`SolveOptions`] — any change to a barrier
/// tolerance, the B&B bound, or the INCREMENTAL accuracy changes the key.
pub fn write_solve_options(h: &mut Hasher64, opts: &SolveOptions) {
    h.write_str("solve-options-v1");
    h.write_f64(opts.barrier.t0);
    h.write_f64(opts.barrier.mu);
    h.write_f64(opts.barrier.tol);
    h.write_f64(opts.barrier.newton_tol);
    h.write_usize(opts.barrier.max_newton);
    h.write_f64(opts.barrier.ls_alpha);
    h.write_f64(opts.barrier.ls_beta);
    h.write_str(match opts.bnb_bound {
        BnbBound::Simple => "bnb-simple",
        BnbBound::VddRelaxation => "bnb-vdd-relaxation",
    });
    h.write_usize(opts.accuracy_k);
}

/// The cache key of a full solve request: instance × speed model × solver
/// options, canonically hashed. Two requests with equal digests are
/// answered by the same solve.
pub fn solve_request_digest(inst: &Instance, model: &SpeedModel, opts: &SolveOptions) -> u64 {
    let mut h = Hasher64::new();
    h.write_str("solve-request-v1");
    write_instance(&mut h, inst);
    write_speed_model(&mut h, model);
    write_solve_options(&mut h, opts);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{Mapping, Platform};
    use ea_taskgraph::Dag;

    fn chain_inst() -> Instance {
        Instance::single_chain(&[1.0, 2.0, 3.0], 9.0).unwrap()
    }

    #[test]
    fn digest_is_deterministic() {
        let a = chain_inst().canonical_digest();
        let b = chain_inst().canonical_digest();
        assert_eq!(a, b);
    }

    #[test]
    fn task_relabelling_does_not_change_digest() {
        // Chain 0→1→2 with weights [1,2,3] on one processor, versus the
        // same semantic chain with task indices reversed.
        let a = Instance::new(
            Dag::from_parts(vec![1.0, 2.0, 3.0], [(0, 1), (1, 2)]).unwrap(),
            Platform::single(),
            Mapping::single_processor(vec![0, 1, 2]),
            9.0,
        )
        .unwrap();
        let b = Instance::new(
            Dag::from_parts(vec![3.0, 2.0, 1.0], [(2, 1), (1, 0)]).unwrap(),
            Platform::single(),
            Mapping::single_processor(vec![2, 1, 0]),
            9.0,
        )
        .unwrap();
        assert_eq!(a.canonical_digest(), b.canonical_digest());
    }

    #[test]
    fn weight_and_deadline_perturbations_change_digest() {
        let base = chain_inst().canonical_digest();
        let heavier = Instance::single_chain(&[1.0, 2.0, 3.5], 9.0).unwrap();
        assert_ne!(base, heavier.canonical_digest());
        let later = Instance::single_chain(&[1.0, 2.0, 3.0], 9.5).unwrap();
        assert_ne!(base, later.canonical_digest());
    }

    #[test]
    fn edge_structure_is_part_of_the_digest() {
        // Same weights and mapping, one extra precedence edge.
        let sparse = Instance::new(
            Dag::from_parts(vec![1.0, 1.0, 1.0], [(0, 1), (1, 2)]).unwrap(),
            Platform::single(),
            Mapping::single_processor(vec![0, 1, 2]),
            9.0,
        )
        .unwrap();
        let dense = Instance::new(
            Dag::from_parts(vec![1.0, 1.0, 1.0], [(0, 1), (1, 2), (0, 2)]).unwrap(),
            Platform::single(),
            Mapping::single_processor(vec![0, 1, 2]),
            9.0,
        )
        .unwrap();
        assert_ne!(sparse.canonical_digest(), dense.canonical_digest());
    }

    #[test]
    fn model_variants_with_equal_ranges_differ() {
        let inst = chain_inst();
        let opts = SolveOptions::default();
        let cont = solve_request_digest(&inst, &SpeedModel::continuous(1.0, 2.0), &opts);
        let inc = solve_request_digest(&inst, &SpeedModel::incremental(1.0, 2.0, 0.25), &opts);
        let disc = solve_request_digest(&inst, &SpeedModel::discrete(vec![1.0, 2.0]), &opts);
        let vdd = solve_request_digest(&inst, &SpeedModel::vdd_hopping(vec![1.0, 2.0]), &opts);
        let all = [cont, inc, disc, vdd];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "models {i} and {j} collide");
            }
        }
    }

    #[test]
    fn solve_options_knobs_change_digest() {
        let inst = chain_inst();
        let model = SpeedModel::discrete(vec![1.0, 2.0]);
        let base = solve_request_digest(&inst, &model, &SolveOptions::default());
        let simple = SolveOptions::default().with_bnb_bound(BnbBound::Simple);
        assert_ne!(base, solve_request_digest(&inst, &model, &simple));
        let k = SolveOptions::default().with_accuracy_k(99);
        assert_ne!(base, solve_request_digest(&inst, &model, &k));
        let mut loose = SolveOptions::default();
        loose.barrier.tol = 1e-4;
        assert_ne!(base, solve_request_digest(&inst, &model, &loose));
    }

    #[test]
    fn negative_zero_folds_onto_zero() {
        let mut a = Hasher64::new();
        a.write_f64(0.0);
        let mut b = Hasher64::new();
        b.write_f64(-0.0);
        assert_eq!(a.finish(), b.finish());
    }
}
