//! Critical-path list scheduling.
//!
//! The paper assumes the mapping is given, and notes that its results
//! "can be coupled with classical list-scheduling heuristics that map the
//! DAG on the platform"; its own experiments couple the energy heuristics
//! with a critical-path list scheduler. This module provides that
//! scheduler: tasks are prioritised by *upward rank* (weight of the
//! heaviest downstream path, computed at reference speed `f_max`) and each
//! ready task goes to the processor where it can start earliest.

use crate::platform::{Mapping, Platform};
use ea_taskgraph::{Dag, TaskId};

/// Upward rank: `rank(i) = w_i + max_{j ∈ succ(i)} rank(j)` (weights as
/// durations at unit/reference speed). Tasks on the critical path have the
/// largest ranks.
pub fn upward_rank(dag: &Dag) -> Vec<f64> {
    let mut rank = vec![0.0f64; dag.len()];
    let order = dag.topological_order();
    for &t in order.iter().rev() {
        let best_succ = dag
            .successors(t)
            .iter()
            .map(|&s| rank[s])
            .fold(0.0, f64::max);
        rank[t] = dag.weight(t) + best_succ;
    }
    rank
}

/// Critical-path list scheduling of `dag` onto `platform` at the reference
/// speed `f_ref` (use `f_max` to get the tightest packing, which the
/// energy solvers then relax).
///
/// Returns the mapping plus the resulting makespan at `f_ref`.
pub fn critical_path_list_schedule(dag: &Dag, platform: Platform, f_ref: f64) -> (Mapping, f64) {
    assert!(f_ref > 0.0, "reference speed must be positive");
    let n = dag.len();
    let p = platform.processors;
    let rank = upward_rank(dag);

    let mut indeg: Vec<usize> = (0..n).map(|t| dag.predecessors(t).len()).collect();
    let mut ready: Vec<TaskId> = (0..n).filter(|&t| indeg[t] == 0).collect();
    let mut finish = vec![0.0f64; n];
    let mut proc_avail = vec![0.0f64; p];
    let mut proc_of = vec![0usize; n];
    let mut order: Vec<Vec<TaskId>> = vec![Vec::new(); p];
    let mut makespan = 0.0f64;

    while !ready.is_empty() {
        // Highest upward rank first (ties by id for determinism).
        let (idx, &t) = ready
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                rank[a]
                    .partial_cmp(&rank[b])
                    .expect("finite ranks")
                    .then(b.cmp(&a))
            })
            .expect("ready non-empty");
        ready.swap_remove(idx);

        let data_ready = dag
            .predecessors(t)
            .iter()
            .map(|&q| finish[q])
            .fold(0.0, f64::max);
        // Earliest-start processor.
        let (proc, &avail) = proc_avail
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite times"))
            .expect("at least one processor");
        let start = data_ready.max(avail);
        let end = start + dag.weight(t) / f_ref;
        finish[t] = end;
        proc_avail[proc] = end;
        proc_of[t] = proc;
        order[proc].push(t);
        makespan = makespan.max(end);

        for &s in dag.successors(t) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }

    let mapping = Mapping::new(proc_of, order).expect("list schedule is consistent");
    (mapping, makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_taskgraph::generators;

    #[test]
    fn rank_of_chain_accumulates() {
        let dag = generators::chain(&[1.0, 2.0, 3.0]);
        assert_eq!(upward_rank(&dag), vec![6.0, 5.0, 3.0]);
    }

    #[test]
    fn single_processor_serialises_everything() {
        let dag = generators::fork(1.0, &[1.0, 1.0, 1.0]);
        let (m, ms) = critical_path_list_schedule(&dag, Platform::single(), 1.0);
        assert_eq!(m.n_processors(), 1);
        assert_eq!(m.order_on(0).len(), 4);
        assert!((ms - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fork_spreads_across_processors() {
        let dag = generators::fork(1.0, &[2.0, 2.0, 2.0]);
        let (m, ms) = critical_path_list_schedule(&dag, Platform::new(3), 1.0);
        // source then 3 parallel branches: makespan 1 + 2
        assert!((ms - 3.0).abs() < 1e-12);
        let procs: std::collections::HashSet<usize> = (1..4).map(|t| m.processor_of(t)).collect();
        assert_eq!(procs.len(), 3, "branches should use all processors");
    }

    #[test]
    fn respects_precedence() {
        let dag = generators::stencil_wavefront(3, 3, 1.0);
        let (m, _) = critical_path_list_schedule(&dag, Platform::new(2), 1.0);
        // The augmented DAG must be acyclic (valid mapping).
        m.augmented_dag(&dag).unwrap();
    }

    #[test]
    fn more_processors_never_hurt_makespan() {
        let dag = generators::random_layered(6, 5, 0.3, 0.5, 3.0, 17);
        let (_, ms1) = critical_path_list_schedule(&dag, Platform::new(1), 1.0);
        let (_, ms4) = critical_path_list_schedule(&dag, Platform::new(4), 1.0);
        assert!(ms4 <= ms1 + 1e-9);
    }

    #[test]
    fn faster_reference_speed_scales_makespan() {
        let dag = generators::chain(&[2.0, 2.0]);
        let (_, ms1) = critical_path_list_schedule(&dag, Platform::single(), 1.0);
        let (_, ms2) = critical_path_list_schedule(&dag, Platform::single(), 2.0);
        assert!((ms1 - 2.0 * ms2).abs() < 1e-12);
    }
}
