//! The two complementary TRI-CRIT heuristic families for general mapped
//! DAGs (paper, Section III).
//!
//! The paper reports two sets of heuristics with complementary strengths
//! and recommends taking the best of both:
//!
//! * **H-A (chain-oriented)** — generalises the linear-chain strategy:
//!   *"first slow the execution of all tasks equally, then choose the
//!   tasks to be re-executed"*. All executions share one common speed `λ`
//!   (clamped below by per-task reliability floors); `λ` is re-balanced by
//!   bisection after every re-execution decision, and the re-execution set
//!   grows greedily. Strong when the DAG is chain-like (slack lives on the
//!   critical path and must be traded globally).
//!
//! * **H-B (parallel-oriented)** — generalises the fork strategy: *"highly
//!   parallelizable tasks should be preferred when allocating time slots
//!   for re-execution or deceleration"*. Tasks are ranked by *float*
//!   (scheduling slack); a task may only consume its own float, so the
//!   critical path never stretches. Strong on wide DAGs where slack is
//!   local and plentiful.
//!
//! * [`best_of`] — the paper's combined heuristic: run both, keep the
//!   cheaper feasible result (experiment E8 reproduces the
//!   complementarity claim).

use super::TriCritSolution;
use crate::error::CoreError;
use crate::instance::Instance;
use crate::reliability::ReliabilityModel;
use crate::schedule::{Schedule, TaskSchedule};
use ea_taskgraph::analysis;

/// Which heuristic produced the best-of result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// Chain-oriented heuristic won.
    A,
    /// Parallel-oriented heuristic won.
    B,
}

/// Per-task reliability floors: `f_rel` for singles, the equal
/// re-execution speed for pairs.
fn floors(weights: &[f64], rel: &ReliabilityModel, reexec: &[bool]) -> Vec<f64> {
    weights
        .iter()
        .zip(reexec)
        .map(|(&w, &r)| {
            if r {
                rel.reexec_equal_speed_min(w).max(rel.fmin)
            } else {
                rel.frel
            }
        })
        .collect()
}

fn durations(weights: &[f64], speeds: &[f64], reexec: &[bool]) -> Vec<f64> {
    weights
        .iter()
        .zip(speeds)
        .zip(reexec)
        .map(|((&w, &f), &r)| if r { 2.0 * w / f } else { w / f })
        .collect()
}

fn energy(weights: &[f64], speeds: &[f64], reexec: &[bool]) -> f64 {
    weights
        .iter()
        .zip(speeds)
        .zip(reexec)
        .map(|((&w, &f), &r)| if r { 2.0 * w * f * f } else { w * f * f })
        .sum()
}

fn to_solution(weights: &[f64], speeds: Vec<f64>, reexec: Vec<bool>) -> TriCritSolution {
    let tasks = speeds
        .iter()
        .zip(&reexec)
        .map(|(&f, &r)| {
            if r {
                TaskSchedule::twice(f, f)
            } else {
                TaskSchedule::once(f)
            }
        })
        .collect();
    let energy = energy(weights, &speeds, &reexec);
    TriCritSolution {
        schedule: Schedule { tasks },
        energy,
        reexecuted: reexec,
    }
}

/// Minimal common speed `λ` (water level) such that the makespan of the
/// augmented DAG meets the deadline, with per-task speeds
/// `f_i = max(λ, floor_i)`. `None` when even `f_max` fails.
fn water_level(
    inst: &Instance,
    rel: &ReliabilityModel,
    reexec: &[bool],
) -> Option<(f64, Vec<f64>)> {
    let aug = inst.augmented_dag();
    let w = inst.dag.weights();
    let floor = floors(w, rel, reexec);
    let makespan_at = |lambda: f64| {
        let speeds: Vec<f64> = floor.iter().map(|&fl| fl.max(lambda)).collect();
        let dur = durations(w, &speeds, reexec);
        analysis::critical_path_length(aug, &dur)
    };
    if makespan_at(rel.fmax) > inst.deadline * (1.0 + 1e-9) {
        return None;
    }
    let (mut lo, mut hi) = (rel.fmin, rel.fmax);
    if makespan_at(lo) <= inst.deadline {
        hi = lo;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if makespan_at(mid) <= inst.deadline {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let lambda = hi;
    let speeds: Vec<f64> = floor.iter().map(|&fl| fl.max(lambda)).collect();
    Some((lambda, speeds))
}

/// H-A: chain-oriented heuristic (global uniform slowdown + greedy
/// re-execution with re-balancing).
pub fn heuristic_a(inst: &Instance, rel: &ReliabilityModel) -> Result<TriCritSolution, CoreError> {
    let n = inst.n_tasks();
    let w = inst.dag.weights();
    let mut reexec = vec![false; n];
    let (_, mut speeds) = water_level(inst, rel, &reexec).ok_or(CoreError::InfeasibleDeadline {
        required: inst.makespan_at_uniform_speed(rel.fmax),
        deadline: inst.deadline,
    })?;
    let mut cur_energy = energy(w, &speeds, &reexec);
    loop {
        let mut best: Option<(usize, Vec<f64>, f64)> = None;
        for i in 0..n {
            if reexec[i] {
                continue;
            }
            reexec[i] = true;
            if let Some((_, sp)) = water_level(inst, rel, &reexec) {
                let e = energy(w, &sp, &reexec);
                if e < cur_energy - 1e-12 && best.as_ref().is_none_or(|(_, _, be)| e < *be) {
                    best = Some((i, sp, e));
                }
            }
            reexec[i] = false;
        }
        match best {
            Some((i, sp, e)) => {
                reexec[i] = true;
                speeds = sp;
                cur_energy = e;
            }
            None => break,
        }
    }
    Ok(to_solution(w, speeds, reexec))
}

/// H-B: parallel-oriented heuristic (float-driven local re-execution and
/// deceleration; the critical path is never stretched).
pub fn heuristic_b(inst: &Instance, rel: &ReliabilityModel) -> Result<TriCritSolution, CoreError> {
    let n = inst.n_tasks();
    let aug = inst.augmented_dag();
    let w = inst.dag.weights();
    let mut reexec = vec![false; n];
    let (_, mut speeds) = water_level(inst, rel, &reexec).ok_or(CoreError::InfeasibleDeadline {
        required: inst.makespan_at_uniform_speed(rel.fmax),
        deadline: inst.deadline,
    })?;

    for _pass in 0..8 {
        let mut changed = false;

        // Pass 1: re-execute the highest-float singles, spending only
        // their own float.
        loop {
            let dur = durations(w, &speeds, &reexec);
            let float = analysis::total_float(aug, &dur, inst.deadline);
            let mut cand: Vec<usize> = (0..n).filter(|&i| !reexec[i] && float[i] > 1e-12).collect();
            cand.sort_by(|&a, &b| float[b].partial_cmp(&float[a]).expect("finite floats"));
            let mut accepted = false;
            for i in cand {
                let budget = w[i] / speeds[i] + float[i];
                let g = (2.0 * w[i] / budget)
                    .max(rel.reexec_equal_speed_min(w[i]))
                    .max(rel.fmin);
                if g <= rel.fmax * (1.0 + 1e-12)
                    && 2.0 * w[i] * g * g < w[i] * speeds[i] * speeds[i] - 1e-12
                {
                    reexec[i] = true;
                    speeds[i] = g;
                    accepted = true;
                    changed = true;
                    break; // floats are stale: recompute
                }
            }
            if !accepted {
                break;
            }
        }

        // Pass 2: decelerate within the remaining float (singles bounded
        // by f_rel, pairs by their re-execution floor).
        let dur = durations(w, &speeds, &reexec);
        let float = analysis::total_float(aug, &dur, inst.deadline);
        for i in 0..n {
            if float[i] <= 1e-12 {
                continue;
            }
            let c = if reexec[i] { 2.0 } else { 1.0 };
            let lower = if reexec[i] {
                rel.reexec_equal_speed_min(w[i]).max(rel.fmin)
            } else {
                rel.frel
            };
            let f_new = (c * w[i] / (c * w[i] / speeds[i] + float[i])).max(lower);
            if f_new < speeds[i] - 1e-12 {
                speeds[i] = f_new;
                changed = true;
                // Conservative: consume float one task at a time so shared
                // slack is never double-spent.
                break;
            }
        }

        if !changed {
            break;
        }
    }
    Ok(to_solution(w, speeds, reexec))
}

/// The paper's combined heuristic: run H-A and H-B, keep the cheaper
/// feasible solution.
pub fn best_of(
    inst: &Instance,
    rel: &ReliabilityModel,
) -> Result<(TriCritSolution, Which), CoreError> {
    let a = heuristic_a(inst, rel);
    let b = heuristic_b(inst, rel);
    match (a, b) {
        (Ok(sa), Ok(sb)) => {
            if sa.energy <= sb.energy {
                Ok((sa, Which::A))
            } else {
                Ok((sb, Which::B))
            }
        }
        (Ok(sa), Err(_)) => Ok((sa, Which::A)),
        (Err(_), Ok(sb)) => Ok((sb, Which::B)),
        (Err(e), Err(_)) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use ea_taskgraph::generators;

    fn rel() -> ReliabilityModel {
        ReliabilityModel::typical(1.0, 2.0, 1.8)
    }

    fn check_feasible(inst: &Instance, rel: &ReliabilityModel, sol: &TriCritSolution) {
        let ms = sol.schedule.makespan(&inst.dag, &inst.mapping).unwrap();
        assert!(
            ms <= inst.deadline * (1.0 + 1e-6),
            "makespan {ms} exceeds deadline {}",
            inst.deadline
        );
        assert!(
            sol.schedule.reliability_ok(&inst.dag, rel),
            "reliability violated"
        );
        let e = sol.schedule.energy(&inst.dag);
        assert!((e - sol.energy).abs() <= 1e-6 * e.max(1.0));
    }

    #[test]
    fn both_heuristics_feasible_on_chain() {
        let rel = rel();
        let w = generators::random_weights(12, 0.5, 2.0, 5);
        let d = 2.0 * w.iter().sum::<f64>() / rel.fmax;
        let inst = Instance::single_chain(&w, d).unwrap();
        let a = heuristic_a(&inst, &rel).unwrap();
        let b = heuristic_b(&inst, &rel).unwrap();
        check_feasible(&inst, &rel, &a);
        check_feasible(&inst, &rel, &b);
        // On a chain H-B has no float to play with: H-A should win.
        assert!(
            a.energy <= b.energy * (1.0 + 1e-9),
            "A {} vs B {}",
            a.energy,
            b.energy
        );
    }

    #[test]
    fn both_heuristics_feasible_on_fork() {
        let rel = rel();
        let ws = generators::random_weights(6, 0.5, 2.0, 7);
        let d = 2.5 * (1.0 + ws.iter().fold(0.0f64, |m, &w| m.max(w))) / rel.fmax;
        let inst = Instance::fork(1.0, &ws, d).unwrap();
        let a = heuristic_a(&inst, &rel).unwrap();
        let b = heuristic_b(&inst, &rel).unwrap();
        check_feasible(&inst, &rel, &a);
        check_feasible(&inst, &rel, &b);
    }

    #[test]
    fn best_of_takes_the_minimum() {
        let rel = rel();
        let w = generators::random_weights(8, 0.5, 2.0, 9);
        let d = 1.8 * w.iter().sum::<f64>() / rel.fmax;
        let inst = Instance::single_chain(&w, d).unwrap();
        let a = heuristic_a(&inst, &rel).unwrap();
        let b = heuristic_b(&inst, &rel).unwrap();
        let (best, _) = best_of(&inst, &rel).unwrap();
        assert!(best.energy <= a.energy.min(b.energy) * (1.0 + 1e-12));
    }

    #[test]
    fn infeasible_instances_rejected() {
        let rel = rel();
        let inst = Instance::single_chain(&[100.0], 1.0).unwrap();
        assert!(heuristic_a(&inst, &rel).is_err());
        assert!(heuristic_b(&inst, &rel).is_err());
        assert!(best_of(&inst, &rel).is_err());
    }

    #[test]
    fn heuristics_on_random_mapped_dags() {
        let rel = rel();
        for seed in 0..4u64 {
            let dag = generators::random_layered(4, 3, 0.4, 0.5, 2.0, seed);
            let inst =
                Instance::mapped_by_list_scheduling(dag, Platform::new(3), rel.fmax, 1e9).unwrap();
            let d = 2.0 * inst.makespan_at_uniform_speed(rel.fmax);
            let inst = inst.with_deadline(d).unwrap();
            let (best, _) = best_of(&inst, &rel).unwrap();
            check_feasible(&inst, &rel, &best);
        }
    }

    #[test]
    fn tight_deadline_yields_single_executions() {
        let rel = rel();
        let w = [1.0, 1.0, 1.0];
        let d = 1.02 * w.iter().sum::<f64>() / rel.fmax;
        let inst = Instance::single_chain(&w, d).unwrap();
        let a = heuristic_a(&inst, &rel).unwrap();
        assert!(a.reexecuted.iter().all(|&r| !r));
    }

    #[test]
    fn loose_deadline_beats_frel_baseline() {
        // With slack, either heuristic must do better than everything
        // pinned at frel.
        let rel = rel();
        let w = generators::random_weights(10, 0.5, 2.0, 13);
        let d = 4.0 * w.iter().sum::<f64>() / rel.fmax;
        let inst = Instance::single_chain(&w, d).unwrap();
        let baseline: f64 = w.iter().map(|wi| wi * rel.frel * rel.frel).sum();
        let (best, _) = best_of(&inst, &rel).unwrap();
        assert!(best.energy < baseline);
    }
}
