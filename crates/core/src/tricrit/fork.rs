//! TRI-CRIT on a fork: the paper's polynomial-time algorithm.
//!
//! For a fork (source `T_0` + `n` independent branches, one branch per
//! processor) the paper reports a **polynomial-time algorithm** built on a
//! strategy opposite to the chain one: *"those highly parallelizable tasks
//! should be preferred when allocating time slots for re-execution or
//! deceleration"*.
//!
//! Structure exploited here: split the deadline as `D = (source time) +
//! (parallel-phase time t)`. Given `t`, each branch *independently* picks
//! its cheapest reliable option — execute once at
//! `max(w/t, f_rel)` or twice at `max(2w/t, g_min)` — and the source does
//! the same with budget `D − t`. The total energy `E(t)` is piecewise
//! smooth with analytically known breakpoints (where a `max` switches arm
//! or an option enters/leaves feasibility), so a scan over breakpoint
//! intervals with golden-section refinement finds the optimum in
//! polynomial time. [`solve_brute_force`] (exponential in `n`) is the
//! correctness reference for experiment E7.

use super::TriCritSolution;
use crate::error::CoreError;
use crate::reliability::ReliabilityModel;
use crate::schedule::{Schedule, TaskSchedule};

/// Cheapest reliable execution of one task of weight `w` within a time
/// budget `t`: returns `(energy, speed, reexecuted)` or `None` if even
/// `f_max` cannot fit it.
fn branch_best(w: f64, t: f64, rel: &ReliabilityModel) -> Option<(f64, f64, bool)> {
    if t <= 0.0 {
        return None;
    }
    let mut best: Option<(f64, f64, bool)> = None;
    // Once: speed must cover the budget and the reliability threshold.
    let f_once = (w / t).max(rel.frel).max(rel.fmin);
    if f_once <= rel.fmax * (1.0 + 1e-12) {
        best = Some((w * f_once * f_once, f_once, false));
    }
    // Twice (equal speeds): budget 2w/g, reliability floor g_min.
    let g = (2.0 * w / t)
        .max(rel.reexec_equal_speed_min(w))
        .max(rel.fmin);
    if g <= rel.fmax * (1.0 + 1e-12) {
        let e = 2.0 * w * g * g;
        if best.is_none_or(|(be, _, _)| e < be) {
            best = Some((e, g, true));
        }
    }
    best
}

/// Fixed-choice variant: energy of executing `w` within budget `t` with a
/// *forced* execution count (used by the brute-force reference).
fn branch_forced(w: f64, t: f64, rel: &ReliabilityModel, reexec: bool) -> Option<(f64, f64)> {
    if t <= 0.0 {
        return None;
    }
    if reexec {
        let g = (2.0 * w / t)
            .max(rel.reexec_equal_speed_min(w))
            .max(rel.fmin);
        (g <= rel.fmax * (1.0 + 1e-12)).then_some((2.0 * w * g * g, g))
    } else {
        let f = (w / t).max(rel.frel).max(rel.fmin);
        (f <= rel.fmax * (1.0 + 1e-12)).then_some((w * f * f, f))
    }
}

/// Total energy for a parallel-phase budget `t` (source gets `D − t`).
fn total_energy(w0: f64, ws: &[f64], deadline: f64, rel: &ReliabilityModel, t: f64) -> Option<f64> {
    let (e0, _, _) = branch_best(w0, deadline - t, rel)?;
    let mut e = e0;
    for &w in ws {
        let (ei, _, _) = branch_best(w, t, rel)?;
        e += ei;
    }
    Some(e)
}

/// The polynomial fork algorithm. Task 0 is the source; tasks `1..=n` the
/// branches (each on its own processor).
pub fn solve(
    w0: f64,
    ws: &[f64],
    deadline: f64,
    rel: &ReliabilityModel,
) -> Result<TriCritSolution, CoreError> {
    assert!(!ws.is_empty(), "fork needs at least one branch");
    // Feasible window for t: every branch must fit at fmax once, and the
    // source must fit in D − t.
    let t_lo = ws.iter().fold(0.0f64, |m, &w| m.max(w / rel.fmax));
    let t_hi = deadline - w0 / rel.fmax;
    if t_lo >= t_hi {
        return Err(CoreError::InfeasibleDeadline {
            required: t_lo + w0 / rel.fmax,
            deadline,
        });
    }

    // Analytic breakpoints of E(t): per branch w: w/frel (once floor
    // engages), 2w/g_min (twice floor engages), 2w/fmax (twice becomes
    // feasible); mirrored through t = D − s for the source.
    let mut pts = vec![t_lo, t_hi];
    let mut push = |x: f64| {
        if x > t_lo + 1e-12 && x < t_hi - 1e-12 {
            pts.push(x);
        }
    };
    for &w in ws {
        push(w / rel.frel);
        let g = rel.reexec_equal_speed_min(w).max(rel.fmin);
        push(2.0 * w / g);
        push(2.0 * w / rel.fmax);
    }
    for s in [
        w0 / rel.frel,
        2.0 * w0 / rel.reexec_equal_speed_min(w0).max(rel.fmin),
        2.0 * w0 / rel.fmax,
    ] {
        push(deadline - s);
    }
    pts.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    pts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    // Scan each interval with golden-section refinement.
    let eval = |t: f64| total_energy(w0, ws, deadline, rel, t);
    let mut best_t = f64::NAN;
    let mut best_e = f64::INFINITY;
    let mut consider = |t: f64, e: Option<f64>| {
        if let Some(e) = e {
            if e < best_e {
                best_e = e;
                best_t = t;
            }
        }
    };
    for win in pts.windows(2) {
        let (a, b) = (win[0], win[1]);
        consider(a.max(t_lo + 1e-12), eval(a.max(t_lo + 1e-12)));
        consider(b.min(t_hi - 1e-12), eval(b.min(t_hi - 1e-12)));
        // Golden-section search (E is convex on each piece).
        let phi = 0.5 * (5.0f64.sqrt() - 1.0);
        let (mut lo, mut hi) = (a, b);
        let mut x1 = hi - phi * (hi - lo);
        let mut x2 = lo + phi * (hi - lo);
        let mut f1 = eval(x1).unwrap_or(f64::INFINITY);
        let mut f2 = eval(x2).unwrap_or(f64::INFINITY);
        for _ in 0..80 {
            if f1 <= f2 {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - phi * (hi - lo);
                f1 = eval(x1).unwrap_or(f64::INFINITY);
            } else {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + phi * (hi - lo);
                f2 = eval(x2).unwrap_or(f64::INFINITY);
            }
            if hi - lo < 1e-12 * deadline {
                break;
            }
        }
        let xm = 0.5 * (lo + hi);
        consider(xm, eval(xm));
    }
    if !best_e.is_finite() {
        return Err(CoreError::Infeasible(
            "no feasible split of the deadline".into(),
        ));
    }

    // Materialise the witness schedule at best_t.
    let mut tasks = Vec::with_capacity(ws.len() + 1);
    let mut reexecuted = Vec::with_capacity(ws.len() + 1);
    let (_, f0, r0) = branch_best(w0, deadline - best_t, rel).expect("feasible at best_t");
    tasks.push(if r0 {
        TaskSchedule::twice(f0, f0)
    } else {
        TaskSchedule::once(f0)
    });
    reexecuted.push(r0);
    let mut energy = if r0 { 2.0 * w0 * f0 * f0 } else { w0 * f0 * f0 };
    for &w in ws {
        let (ei, f, r) = branch_best(w, best_t, rel).expect("feasible at best_t");
        tasks.push(if r {
            TaskSchedule::twice(f, f)
        } else {
            TaskSchedule::once(f)
        });
        reexecuted.push(r);
        energy += ei;
    }
    Ok(TriCritSolution {
        schedule: Schedule { tasks },
        energy,
        reexecuted,
    })
}

/// Exponential reference: enumerate every re-execution subset of
/// {source} ∪ branches, optimising the deadline split for each subset on a
/// fine grid + golden refinement. Guarded to small `n`.
pub fn solve_brute_force(
    w0: f64,
    ws: &[f64],
    deadline: f64,
    rel: &ReliabilityModel,
    grid: usize,
) -> Result<TriCritSolution, CoreError> {
    let n = ws.len();
    assert!(n <= 16, "brute force limited to n ≤ 16 branches");
    let t_lo = ws.iter().fold(0.0f64, |m, &w| m.max(w / rel.fmax));
    let t_hi = deadline - w0 / rel.fmax;
    if t_lo >= t_hi {
        return Err(CoreError::InfeasibleDeadline {
            required: t_lo + w0 / rel.fmax,
            deadline,
        });
    }
    let mut best: Option<(f64, f64, u64)> = None; // (energy, t, mask)
    for mask in 0u64..(1u64 << (n + 1)) {
        let eval = |t: f64| -> Option<f64> {
            let mut e = branch_forced(w0, deadline - t, rel, mask & 1 == 1)?.0;
            for (i, &w) in ws.iter().enumerate() {
                e += branch_forced(w, t, rel, mask >> (i + 1) & 1 == 1)?.0;
            }
            Some(e)
        };
        for k in 0..=grid {
            let t = t_lo + (t_hi - t_lo) * (k as f64 + 0.5) / (grid as f64 + 1.0);
            if let Some(e) = eval(t) {
                if best.is_none_or(|(be, _, _)| e < be) {
                    best = Some((e, t, mask));
                }
            }
        }
    }
    let (energy, t, mask) =
        best.ok_or_else(|| CoreError::Infeasible("no feasible subset/split".into()))?;
    let mut tasks = Vec::with_capacity(n + 1);
    let mut reexecuted = Vec::with_capacity(n + 1);
    let (_, f0) = branch_forced(w0, deadline - t, rel, mask & 1 == 1).expect("feasible");
    let r0 = mask & 1 == 1;
    tasks.push(if r0 {
        TaskSchedule::twice(f0, f0)
    } else {
        TaskSchedule::once(f0)
    });
    reexecuted.push(r0);
    for (i, &w) in ws.iter().enumerate() {
        let r = mask >> (i + 1) & 1 == 1;
        let (_, f) = branch_forced(w, t, rel, r).expect("feasible");
        tasks.push(if r {
            TaskSchedule::twice(f, f)
        } else {
            TaskSchedule::once(f)
        });
        reexecuted.push(r);
    }
    Ok(TriCritSolution {
        schedule: Schedule { tasks },
        energy,
        reexecuted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_taskgraph::generators;

    fn rel() -> ReliabilityModel {
        ReliabilityModel::typical(1.0, 2.0, 1.8)
    }

    #[test]
    fn loose_deadline_reexecutes_branches() {
        let rel = rel();
        let sol = solve(1.0, &[1.0, 1.0, 1.0], 1e4, &rel).unwrap();
        // branches have the whole horizon: re-execution is cheaper
        assert!(sol.reexecuted[1..].iter().all(|&r| r));
    }

    #[test]
    fn tight_deadline_runs_once_fast() {
        let rel = rel();
        let w0 = 1.0;
        let ws = [1.0, 1.0];
        let d = 1.1 * (w0 / rel.fmax + 1.0 / rel.fmax);
        let sol = solve(w0, &ws, d, &rel).unwrap();
        assert!(sol.reexecuted.iter().all(|&r| !r));
    }

    #[test]
    fn matches_brute_force() {
        let rel = rel();
        for seed in 0..6u64 {
            let ws = generators::random_weights(5, 0.5, 2.0, seed);
            let w0 = 1.0 + (seed as f64) * 0.3;
            let base = w0 / rel.fmax + ws.iter().fold(0.0f64, |m, &w| m.max(w / rel.fmax));
            for mult in [1.3, 2.0, 5.0] {
                let d = mult * base;
                let fast = solve(w0, &ws, d, &rel);
                let slow = solve_brute_force(w0, &ws, d, &rel, 400);
                match (fast, slow) {
                    (Ok(f), Ok(s)) => {
                        assert!(
                            f.energy <= s.energy * (1.0 + 2e-3),
                            "seed {seed} mult {mult}: poly {} vs brute {}",
                            f.energy,
                            s.energy
                        );
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("feasibility disagreement: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn witness_schedule_is_consistent() {
        let rel = rel();
        let ws = [1.0, 2.0, 0.5];
        let d = 6.0;
        let sol = solve(1.5, &ws, d, &rel).unwrap();
        let inst = crate::instance::Instance::fork(1.5, &ws, d).unwrap();
        let ms = sol.schedule.makespan(&inst.dag, &inst.mapping).unwrap();
        assert!(ms <= d * (1.0 + 1e-6), "makespan {ms} > deadline {d}");
        assert!(sol.schedule.reliability_ok(&inst.dag, &rel));
        let e = sol.schedule.energy(&inst.dag);
        assert!((e - sol.energy).abs() < 1e-6 * e);
    }

    #[test]
    fn infeasible_deadline_rejected() {
        let rel = rel();
        assert!(solve(10.0, &[1.0], 1.0, &rel).is_err());
        assert!(solve_brute_force(10.0, &[1.0], 1.0, &rel, 50).is_err());
    }

    #[test]
    fn heavier_source_shifts_split() {
        // With a heavy source, branches get less time, so fewer re-execute.
        let rel = rel();
        let ws = [1.0; 4];
        let d = 4.0;
        let light = solve(0.2, &ws, d, &rel).unwrap();
        let heavy = solve(4.0, &ws, d, &rel).unwrap();
        let n_light = light.reexecuted[1..].iter().filter(|&&r| r).count();
        let n_heavy = heavy.reexecuted[1..].iter().filter(|&&r| r).count();
        assert!(n_heavy <= n_light);
    }
}
