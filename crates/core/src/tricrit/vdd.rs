//! TRI-CRIT under VDD-HOPPING: the adaptation of the continuous
//! heuristics (paper, Section IV).
//!
//! TRI-CRIT is NP-complete under VDD-HOPPING (while BI-CRIT was in P), so
//! the paper adapts the continuous heuristics: *"for a solution given by a
//! heuristic for the CONTINUOUS model, if a task should be executed at the
//! continuous speed `f`, then we would execute it at the two closest
//! discrete speeds that bound `f`, while matching the execution time and
//! reliability for this task"*.
//!
//! Matching both constraints needs care: mixing the bracketing modes
//! `f_lo ≤ f ≤ f_hi` at the continuous duration `w/f` preserves the work
//! and the time, but the fault rate `λ(f)` is **convex** in `f`, so the
//! mixture can be *less* reliable than the constant-speed execution. The
//! fix implemented here shortens the execution (shifting time towards
//! `f_hi`) until the per-execution failure probability is back at the
//! continuous level — the duration only shrinks, so the deadline stays
//! met. Energy strictly decreases in the duration, so we take the longest
//! reliable duration (bisection; the failure probability is monotone in
//! the duration).

use super::TriCritSolution;
use crate::error::CoreError;
use crate::reliability::ReliabilityModel;
use crate::schedule::{ExecSpec, Schedule, TaskSchedule};
use crate::speed::SpeedModel;
use ea_taskgraph::Dag;

/// Result of the VDD adaptation.
#[derive(Debug, Clone)]
pub struct VddTriSolution {
    /// The adapted schedule (VDD segment executions).
    pub schedule: Schedule,
    /// Its worst-case energy.
    pub energy: f64,
    /// Energy of the continuous solution it was derived from.
    pub continuous_energy: f64,
    /// `energy / continuous_energy` — the performance loss of hopping.
    pub loss_factor: f64,
}

/// Adapts one execution at continuous speed `f` (weight `w`) to the mode
/// set, keeping duration ≤ `w/f` and failure probability ≤ `p_budget`.
fn adapt_execution(
    w: f64,
    f: f64,
    p_budget: f64,
    rel: &ReliabilityModel,
    model: &SpeedModel,
) -> Result<ExecSpec, CoreError> {
    let modes = model
        .modes()
        .ok_or_else(|| CoreError::StructureMismatch("VDD adaptation needs modes".into()))?;
    // Climb mode pairs from the bracket upwards until reliable.
    let (lo0, hi0) = model.bracket(f).ok_or_else(|| {
        CoreError::Infeasible(format!("continuous speed {f} outside the mode range"))
    })?;
    let start = modes
        .iter()
        .position(|&m| (m - hi0).abs() <= 1e-9 * m.max(1.0))
        .expect("bracket returns modes");
    let mut lo = lo0;
    for &hi in &modes[start..] {
        if (hi - lo).abs() <= 1e-12 {
            // Single mode: duration w/lo, check reliability directly.
            let p = rel.failure_prob(w, lo);
            if p <= p_budget * (1.0 + 1e-9) {
                return Ok(ExecSpec::Vdd {
                    segments: vec![(lo, w / lo)],
                });
            }
            lo = hi;
            continue;
        }
        // Mix lo/hi with duration d ∈ [w/hi, min(w/lo, w/f)]:
        // t_hi = (w − lo·d)/(hi − lo), t_lo = d − t_hi.
        let d_max = (w / lo).min(w / f);
        let d_min = w / hi;
        let prob = |d: f64| {
            let t_hi = (w - lo * d) / (hi - lo);
            let t_lo = d - t_hi;
            rel.failure_prob_segments(&[(lo, t_lo.max(0.0)), (hi, t_hi.max(0.0))])
        };
        if prob(d_min) <= p_budget * (1.0 + 1e-9) {
            // Monotone increasing in d: bisect for the largest reliable d
            // (longest duration = least energy).
            let (mut a, mut b) = (d_min, d_max);
            if prob(d_max) <= p_budget * (1.0 + 1e-9) {
                a = d_max;
            } else {
                for _ in 0..100 {
                    let mid = 0.5 * (a + b);
                    if prob(mid) <= p_budget * (1.0 + 1e-9) {
                        a = mid;
                    } else {
                        b = mid;
                    }
                }
            }
            let d = a;
            let t_hi = ((w - lo * d) / (hi - lo)).max(0.0);
            let t_lo = (d - t_hi).max(0.0);
            let mut segments = Vec::new();
            if t_lo > 1e-12 {
                segments.push((lo, t_lo));
            }
            if t_hi > 1e-12 {
                segments.push((hi, t_hi));
            }
            if segments.is_empty() {
                segments.push((hi, w / hi));
            }
            return Ok(ExecSpec::Vdd { segments });
        }
        lo = hi;
    }
    // Last resort: pure fmax.
    let fmax = *modes.last().expect("non-empty modes");
    let p = rel.failure_prob(w, fmax);
    if p <= p_budget * (1.0 + 1e-9) {
        return Ok(ExecSpec::Vdd {
            segments: vec![(fmax, w / fmax)],
        });
    }
    Err(CoreError::Infeasible(format!(
        "no mode combination meets the reliability budget for weight {w}"
    )))
}

/// Adapts a continuous TRI-CRIT solution to a VDD-HOPPING mode set.
///
/// Each execution's failure-probability budget is its continuous failure
/// probability, so the per-task constraint (product over executions) is
/// preserved; each execution's duration never grows, so the makespan is
/// preserved.
pub fn adapt(
    dag: &Dag,
    cont: &TriCritSolution,
    rel: &ReliabilityModel,
    model: &SpeedModel,
) -> Result<VddTriSolution, CoreError> {
    let mut tasks = Vec::with_capacity(cont.schedule.len());
    for (t, ts) in cont.schedule.tasks.iter().enumerate() {
        let w = dag.weight(t);
        let mut executions = Vec::with_capacity(ts.executions.len());
        for e in &ts.executions {
            let f = match e {
                ExecSpec::Single { speed } => *speed,
                ExecSpec::Vdd { .. } => {
                    return Err(CoreError::StructureMismatch(
                        "adaptation expects a continuous (constant-speed) solution".into(),
                    ))
                }
            };
            let p_budget = rel.failure_prob(w, f);
            executions.push(adapt_execution(w, f, p_budget, rel, model)?);
        }
        tasks.push(TaskSchedule { executions });
    }
    let schedule = Schedule { tasks };
    let energy = schedule.energy(dag);
    let continuous_energy = cont.energy;
    Ok(VddTriSolution {
        schedule,
        energy,
        continuous_energy,
        loss_factor: energy / continuous_energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::tricrit::chain;
    use ea_taskgraph::generators;

    fn rel() -> ReliabilityModel {
        ReliabilityModel::typical(1.0, 2.0, 1.8)
    }

    fn modes() -> SpeedModel {
        SpeedModel::vdd_hopping(vec![1.0, 1.2, 1.4, 1.6, 1.8, 2.0])
    }

    #[test]
    fn adaptation_preserves_all_constraints() {
        let rel = rel();
        let model = modes();
        let w = generators::random_weights(8, 0.5, 2.0, 3);
        let d = 1.8 * w.iter().sum::<f64>() / rel.fmax;
        let cont = chain::solve_greedy(&w, d, &rel).unwrap();
        let adapted = adapt(&generators::chain(&w), &cont, &rel, &model).unwrap();

        let dag = generators::chain(&w);
        let mapping = crate::platform::Mapping::single_processor((0..w.len()).collect());
        adapted
            .schedule
            .validate(&dag, &model, &mapping, Some(d))
            .unwrap();
        assert!(
            adapted.schedule.reliability_ok(&dag, &rel),
            "reliability lost"
        );
    }

    #[test]
    fn loss_factor_at_least_one() {
        let rel = rel();
        let model = modes();
        let w = generators::random_weights(6, 0.5, 2.0, 8);
        let d = 2.0 * w.iter().sum::<f64>() / rel.fmax;
        let cont = chain::solve_greedy(&w, d, &rel).unwrap();
        let adapted = adapt(&generators::chain(&w), &cont, &rel, &model).unwrap();
        assert!(
            adapted.loss_factor >= 1.0 - 1e-9,
            "hopping cannot beat the continuous optimum: {}",
            adapted.loss_factor
        );
    }

    #[test]
    fn more_modes_reduce_the_loss() {
        let rel = rel();
        let w = generators::random_weights(6, 0.5, 2.0, 4);
        let d = 2.0 * w.iter().sum::<f64>() / rel.fmax;
        let cont = chain::solve_greedy(&w, d, &rel).unwrap();
        let dag = generators::chain(&w);
        let coarse = SpeedModel::vdd_hopping(vec![1.0, 2.0]);
        let fine =
            SpeedModel::vdd_hopping((0..=20).map(|i| 1.0 + 0.05 * i as f64).collect::<Vec<_>>());
        let lc = adapt(&dag, &cont, &rel, &coarse).unwrap().loss_factor;
        let lf = adapt(&dag, &cont, &rel, &fine).unwrap().loss_factor;
        assert!(
            lf <= lc * (1.0 + 1e-9),
            "finer modes should lose less: {lf} vs {lc}"
        );
    }

    #[test]
    fn exact_mode_speed_passes_through() {
        let rel = rel();
        let model = modes();
        // Force a continuous solution whose speed is exactly a mode.
        let cont = TriCritSolution {
            schedule: Schedule {
                tasks: vec![TaskSchedule::once(1.8)],
            },
            energy: 1.0 * 1.8 * 1.8,
            reexecuted: vec![false],
        };
        let dag = generators::chain(&[1.0]);
        let adapted = adapt(&dag, &cont, &rel, &model).unwrap();
        assert!((adapted.loss_factor - 1.0).abs() < 1e-6);
    }

    #[test]
    fn speed_outside_mode_range_rejected() {
        let rel = rel();
        let model = SpeedModel::vdd_hopping(vec![1.5, 2.0]);
        let cont = TriCritSolution {
            schedule: Schedule {
                tasks: vec![TaskSchedule::once(1.0)],
            },
            energy: 1.0,
            reexecuted: vec![false],
        };
        let dag = generators::chain(&[1.0]);
        assert!(adapt(&dag, &cont, &rel, &model).is_err());
    }

    #[test]
    fn works_on_fork_solutions() {
        let rel = rel();
        let model = modes();
        let ws = [1.0, 2.0, 0.5];
        let d = 6.0;
        let cont = crate::tricrit::fork::solve(1.5, &ws, d, &rel).unwrap();
        let inst = Instance::fork(1.5, &ws, d).unwrap();
        let adapted = adapt(&inst.dag, &cont, &rel, &model).unwrap();
        adapted
            .schedule
            .validate(&inst.dag, &model, &inst.mapping, Some(d))
            .unwrap();
        assert!(adapted.schedule.reliability_ok(&inst.dag, &rel));
    }
}
