//! TRI-CRIT on a single-processor linear chain.
//!
//! The paper shows TRI-CRIT is **NP-hard already for a chain on one
//! processor**, and gives the structure of an optimal solution: *"first
//! slow the execution of all tasks equally, then choose the tasks to be
//! re-executed"*. Concretely, once the re-execution set `S` is fixed the
//! problem is convex, and its KKT conditions are a water-filling: every
//! execution runs at one common speed `λ`, clamped from below by the
//! per-task reliability floor (`f_rel` for single execution, the equal
//! re-execution speed `g_min,i` for pairs). Equal speeds for the two
//! executions of a pair are optimal by symmetry + convexity.
//!
//! * [`evaluate_subset`] — the exact convex subproblem for a fixed `S`.
//! * [`solve_greedy`] — the paper's strategy with greedy selection of `S`.
//! * [`solve_exhaustive`] — `2^n` enumeration of `S` (each evaluated
//!   exactly): the ground truth that experiment E6 compares against.

use super::TriCritSolution;
use crate::error::CoreError;
use crate::reliability::ReliabilityModel;
use crate::schedule::{Schedule, TaskSchedule};

/// Exact optimum for a *fixed* re-execution set: water-filling with
/// per-task floors. Returns per-task speeds (the common speed of both
/// executions for re-executed tasks) and the energy, or `None` when the
/// deadline cannot be met (common speed would exceed `f_max`).
pub fn evaluate_subset(
    weights: &[f64],
    deadline: f64,
    rel: &ReliabilityModel,
    reexec: &[bool],
) -> Option<(Vec<f64>, f64)> {
    assert_eq!(weights.len(), reexec.len());
    let n = weights.len();
    // Effective work u_i (both executions charged) and speed floors.
    let u: Vec<f64> = weights
        .iter()
        .zip(reexec)
        .map(|(&w, &r)| if r { 2.0 * w } else { w })
        .collect();
    let floor: Vec<f64> = weights
        .iter()
        .zip(reexec)
        .map(|(&w, &r)| {
            if r {
                rel.reexec_equal_speed_min(w).max(rel.fmin)
            } else {
                rel.frel
            }
        })
        .collect();

    // Iterative water-filling: common speed λ for unclamped tasks.
    let mut clamped = vec![false; n];
    let mut d_rem = deadline;
    let mut u_rem: f64 = u.iter().sum();
    loop {
        if u_rem <= 0.0 {
            break; // everything clamped
        }
        if d_rem <= 0.0 {
            return None; // floors alone exceed the deadline
        }
        let lambda = u_rem / d_rem;
        if lambda > rel.fmax * (1.0 + 1e-12) {
            return None;
        }
        let mut newly = false;
        for i in 0..n {
            if !clamped[i] && floor[i] > lambda {
                clamped[i] = true;
                d_rem -= u[i] / floor[i];
                u_rem -= u[i];
                newly = true;
            }
        }
        if !newly {
            break;
        }
    }
    if d_rem < -1e-12 {
        return None;
    }
    let lambda = if u_rem > 0.0 { u_rem / d_rem } else { 0.0 };
    if lambda > rel.fmax * (1.0 + 1e-12) {
        return None;
    }

    let mut speeds = Vec::with_capacity(n);
    let mut energy = 0.0;
    let mut time = 0.0;
    for i in 0..n {
        let f = floor[i].max(lambda);
        if f > rel.fmax * (1.0 + 1e-9) {
            return None;
        }
        speeds.push(f);
        energy += u[i] * f * f;
        time += u[i] / f;
    }
    if time > deadline * (1.0 + 1e-9) {
        return None;
    }
    Some((speeds, energy))
}

fn to_solution(speeds: Vec<f64>, energy: f64, reexec: Vec<bool>) -> TriCritSolution {
    let tasks = speeds
        .iter()
        .zip(&reexec)
        .map(|(&f, &r)| {
            if r {
                TaskSchedule::twice(f, f)
            } else {
                TaskSchedule::once(f)
            }
        })
        .collect();
    TriCritSolution {
        schedule: Schedule { tasks },
        energy,
        reexecuted: reexec,
    }
}

/// The paper's chain strategy with greedy best-improvement selection of
/// the re-execution set: start from "everything once, all equally slowed",
/// then repeatedly add the task whose re-execution saves the most energy,
/// re-balancing the common speed after each addition.
pub fn solve_greedy(
    weights: &[f64],
    deadline: f64,
    rel: &ReliabilityModel,
) -> Result<TriCritSolution, CoreError> {
    let n = weights.len();
    let mut reexec = vec![false; n];
    let (mut speeds, mut energy) =
        evaluate_subset(weights, deadline, rel, &reexec).ok_or(CoreError::InfeasibleDeadline {
            required: weights.iter().sum::<f64>() / rel.fmax,
            deadline,
        })?;
    loop {
        let mut best: Option<(usize, Vec<f64>, f64)> = None;
        for i in 0..n {
            if reexec[i] {
                continue;
            }
            reexec[i] = true;
            if let Some((sp, e)) = evaluate_subset(weights, deadline, rel, &reexec) {
                if e < energy - 1e-12 && best.as_ref().is_none_or(|(_, _, be)| e < *be) {
                    best = Some((i, sp, e));
                }
            }
            reexec[i] = false;
        }
        match best {
            Some((i, sp, e)) => {
                reexec[i] = true;
                speeds = sp;
                energy = e;
            }
            None => break,
        }
    }
    Ok(to_solution(speeds, energy, reexec))
}

/// Exhaustive enumeration of all `2^n` re-execution sets (exact; the
/// problem is NP-hard, so this is inherently exponential). Guarded to
/// small `n`.
pub fn solve_exhaustive(
    weights: &[f64],
    deadline: f64,
    rel: &ReliabilityModel,
) -> Result<TriCritSolution, CoreError> {
    let n = weights.len();
    assert!(n <= 24, "exhaustive chain solver limited to n ≤ 24");
    let mut best: Option<(Vec<f64>, f64, Vec<bool>)> = None;
    for mask in 0u64..(1u64 << n) {
        let reexec: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
        if let Some((sp, e)) = evaluate_subset(weights, deadline, rel, &reexec) {
            if best.as_ref().is_none_or(|(_, be, _)| e < *be) {
                best = Some((sp, e, reexec));
            }
        }
    }
    let (speeds, energy, reexec) = best.ok_or(CoreError::InfeasibleDeadline {
        required: weights.iter().sum::<f64>() / rel.fmax,
        deadline,
    })?;
    Ok(to_solution(speeds, energy, reexec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_taskgraph::generators;

    fn rel() -> ReliabilityModel {
        ReliabilityModel::typical(1.0, 2.0, 1.8)
    }

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-9),
            "{a} vs {b}"
        );
    }

    #[test]
    fn tight_deadline_forces_single_fast_executions() {
        // D barely above Σw/fmax: no room to re-execute anything.
        let w = [1.0, 2.0, 1.5];
        let rel = rel();
        let d = 1.05 * w.iter().sum::<f64>() / rel.fmax;
        let sol = solve_greedy(&w, d, &rel).unwrap();
        assert!(sol.reexecuted.iter().all(|&r| !r));
        assert!(sol.schedule.reliability_ok(&generators::chain(&w), &rel));
    }

    #[test]
    fn loose_deadline_reexecutes_everything() {
        // With a huge deadline, re-executing twice slowly always beats a
        // single execution pinned at frel.
        let w = [1.0, 1.0];
        let rel = rel();
        let sol = solve_greedy(&w, 1e4, &rel).unwrap();
        assert!(sol.reexecuted.iter().all(|&r| r), "{:?}", sol.reexecuted);
        // Energy: 2·w·g² per task with g = reexec floor (deadline slack huge).
        let g = rel.reexec_equal_speed_min(1.0);
        assert_close(sol.energy, 2.0 * (2.0 * g * g), 1e-6);
    }

    #[test]
    fn greedy_matches_exhaustive_small() {
        let rel = rel();
        for seed in 0..8u64 {
            let w = generators::random_weights(7, 0.5, 2.5, seed);
            let sum: f64 = w.iter().sum();
            for mult in [1.2, 1.8, 3.0] {
                let d = mult * sum / rel.fmax;
                let g = solve_greedy(&w, d, &rel);
                let x = solve_exhaustive(&w, d, &rel);
                match (g, x) {
                    (Ok(gs), Ok(xs)) => {
                        // Greedy is a heuristic (the subset choice is the
                        // NP-hard part); the paper reports it as "very
                        // efficient", not optimal. E6 quantifies the gap.
                        assert!(
                            gs.energy <= xs.energy * 1.05 + 1e-9,
                            "seed {seed} mult {mult}: greedy {} vs exact {}",
                            gs.energy,
                            xs.energy
                        );
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("feasibility disagreement: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn solutions_meet_all_three_criteria() {
        let rel = rel();
        let w = generators::random_weights(10, 0.5, 2.0, 3);
        let d = 2.0 * w.iter().sum::<f64>() / rel.fmax;
        let sol = solve_greedy(&w, d, &rel).unwrap();
        let dag = generators::chain(&w);
        let mapping = crate::platform::Mapping::single_processor((0..w.len()).collect());
        let ms = sol.schedule.makespan(&dag, &mapping).unwrap();
        assert!(ms <= d * (1.0 + 1e-9), "makespan {ms} > {d}");
        assert!(sol.schedule.reliability_ok(&dag, &rel));
        assert_close(sol.energy, sol.schedule.energy(&dag), 1e-9);
    }

    #[test]
    fn infeasible_when_total_work_exceeds_fmax_budget() {
        let rel = rel();
        assert!(matches!(
            solve_greedy(&[10.0], 1.0, &rel),
            Err(CoreError::InfeasibleDeadline { .. })
        ));
    }

    #[test]
    fn water_filling_clamps_at_floors() {
        // One heavy task (high re-exec floor) + light tasks: floors bind.
        let rel = rel();
        let w = [5.0, 0.1, 0.1];
        let d = 3.0 * w.iter().sum::<f64>() / rel.fmax;
        let reexec = [true, true, true];
        if let Some((speeds, _)) = evaluate_subset(&w, d, &rel, &reexec) {
            let floor_heavy = rel.reexec_equal_speed_min(5.0);
            assert!(speeds[0] >= floor_heavy - 1e-9);
        }
    }

    #[test]
    fn evaluate_subset_rejects_overload() {
        let rel = rel();
        // All re-executed with tight deadline: 2Σw/fmax > D.
        let w = [1.0, 1.0];
        let d = 1.2 * w.iter().sum::<f64>() / rel.fmax; // < 2Σw/fmax
        assert!(evaluate_subset(&w, d, &rel, &[true, true]).is_none());
        assert!(evaluate_subset(&w, d, &rel, &[false, false]).is_some());
    }

    #[test]
    fn energy_monotone_in_deadline() {
        let rel = rel();
        let w = generators::random_weights(6, 0.5, 2.0, 11);
        let base: f64 = w.iter().sum::<f64>() / rel.fmax;
        let mut last = f64::INFINITY;
        for mult in [1.1, 1.5, 2.0, 4.0, 8.0] {
            let e = solve_greedy(&w, mult * base, &rel).unwrap().energy;
            assert!(e <= last * (1.0 + 1e-9), "energy must not rise with slack");
            last = e;
        }
    }
}
