//! TRI-CRIT: minimise energy subject to a deadline *and* per-task
//! reliability constraints `R_i ≥ R_i(f_rel)`, with re-execution as the
//! fault-tolerance mechanism (paper, Definition 2 and Section III/IV).
//!
//! * [`chain`] — single-processor linear chains: the paper's strategy
//!   ("first slow the execution of all tasks equally, then choose the
//!   tasks to be re-executed") as a water-filling + greedy-selection
//!   algorithm, plus the exponential exhaustive solver (the problem is
//!   NP-hard even here).
//! * [`fork`] — the polynomial-time fork algorithm: split the deadline
//!   between source and parallel phase; each branch independently picks
//!   execute-once vs re-execute; 1-D search over the split.
//! * [`heuristics`] — the two complementary heuristic families for general
//!   DAGs (H-A chain-oriented, H-B parallel-oriented) and their best-of.
//! * [`vdd`] — the VDD-HOPPING adaptation: bracket each continuous speed
//!   with the two closest modes while preserving execution time *and*
//!   reliability (TRI-CRIT VDD is NP-complete; this is the paper's
//!   constructive heuristic).

pub mod chain;
pub mod fork;
pub mod heuristics;
pub mod vdd;

use crate::schedule::Schedule;

/// A TRI-CRIT solution: schedule (with re-executions), its energy, and the
/// re-execution set.
#[derive(Debug, Clone)]
pub struct TriCritSolution {
    /// The witness schedule (one or two executions per task).
    pub schedule: Schedule,
    /// Total worst-case energy (both executions charged).
    pub energy: f64,
    /// `reexecuted[i]` is true iff task `i` is executed twice.
    pub reexecuted: Vec<bool>,
}
