//! The reliability model of the paper (Section II, Eq. (1)).
//!
//! The reliability of task `T_i` executed once at speed `f` is
//!
//! ```text
//! R_i(f) = 1 − λ₀ · e^{ d·(f_max − f)/(f_max − f_min) } · w_i / f
//! ```
//!
//! i.e. the transient-failure probability grows *exponentially* as DVFS
//! lowers the speed — the "antagonistic" coupling that makes TRI-CRIT hard.
//! The per-task constraint is `R_i ≥ R_i(f_rel)`: each task must be at
//! least as reliable as a single execution at the threshold speed `f_rel`.
//! Re-execution succeeds iff at least one of the two attempts does, so the
//! constraint becomes `(1 − R_i(f⁽¹⁾))·(1 − R_i(f⁽²⁾)) ≤ 1 − R_i(f_rel)`.

use serde::{Deserialize, Serialize};

/// Parameters of Eq. (1) plus the reliability threshold speed `f_rel`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityModel {
    /// Average fault rate at `f_max` (per unit of execution time).
    pub lambda0: f64,
    /// Sensitivity of the fault rate to DVFS (`d ≥ 0` in the paper).
    pub d: f64,
    /// Lowest admissible speed.
    pub fmin: f64,
    /// Highest admissible speed.
    pub fmax: f64,
    /// Threshold speed defining the per-task reliability requirement.
    pub frel: f64,
}

impl ReliabilityModel {
    /// Builds a model, validating parameter sanity.
    pub fn new(lambda0: f64, d: f64, fmin: f64, fmax: f64, frel: f64) -> Self {
        assert!(lambda0 > 0.0 && lambda0.is_finite(), "λ₀ must be positive");
        assert!(d >= 0.0, "sensitivity d must be ≥ 0");
        assert!(0.0 < fmin && fmin < fmax, "need 0 < fmin < fmax");
        assert!(
            (fmin..=fmax).contains(&frel),
            "frel must lie within [fmin, fmax]"
        );
        ReliabilityModel {
            lambda0,
            d,
            fmin,
            fmax,
            frel,
        }
    }

    /// A set of defaults in the regime used by the literature the paper
    /// cites (λ₀ = 10⁻⁵, d = 3): failures are rare at `f_max` and ~e^d
    /// times more likely at `f_min`.
    pub fn typical(fmin: f64, fmax: f64, frel: f64) -> Self {
        Self::new(1e-5, 3.0, fmin, fmax, frel)
    }

    /// Instantaneous fault rate `λ(f) = λ₀·e^{d(f_max−f)/(f_max−f_min)}`.
    pub fn rate(&self, f: f64) -> f64 {
        self.lambda0 * ((self.d * (self.fmax - f) / (self.fmax - self.fmin)).exp())
    }

    /// Failure probability of one execution of a weight-`w` task at
    /// constant speed `f`: `λ(f)·w/f` (Eq. (1)).
    pub fn failure_prob(&self, w: f64, f: f64) -> f64 {
        self.rate(f) * w / f
    }

    /// Failure probability of a mixed-speed (VDD-hopping) execution: the
    /// fault rate integrated over the segments, `Σ λ(f_s)·t_s`. With a
    /// single segment of duration `w/f` this reduces to Eq. (1).
    pub fn failure_prob_segments(&self, segments: &[(f64, f64)]) -> f64 {
        segments.iter().map(|&(f, t)| self.rate(f) * t).sum()
    }

    /// The per-task failure-probability budget `1 − R_i(f_rel)`.
    pub fn target(&self, w: f64) -> f64 {
        self.failure_prob(w, self.frel)
    }

    /// Whether a single execution at speed `f` meets the constraint
    /// (⇔ `f ≥ f_rel`, since the failure probability decreases with `f`).
    pub fn single_ok(&self, w: f64, f: f64) -> bool {
        self.failure_prob(w, f) <= self.target(w) * (1.0 + 1e-9)
    }

    /// Whether a re-executed pair at speeds `(f1, f2)` meets the
    /// constraint: `p(f1)·p(f2) ≤ p(f_rel)`.
    pub fn pair_ok(&self, w: f64, f1: f64, f2: f64) -> bool {
        self.failure_prob(w, f1) * self.failure_prob(w, f2) <= self.target(w) * (1.0 + 1e-9)
    }

    /// The minimum *equal* speed `g` such that re-executing twice at `g`
    /// meets the constraint: solves `p(g)² = p(f_rel)` by bisection
    /// (`p` is strictly decreasing in `g`), clamped to `[fmin, frel]`.
    ///
    /// Equal speeds are optimal for a re-executed pair by convexity of the
    /// energy and symmetry of the constraint, so this is the quantity the
    /// TRI-CRIT algorithms need.
    pub fn reexec_equal_speed_min(&self, w: f64) -> f64 {
        let target = self.target(w);
        let p2 = |g: f64| {
            let p = self.failure_prob(w, g);
            p * p
        };
        if p2(self.fmin) <= target {
            return self.fmin;
        }
        // p(frel)² = p(frel)·p(frel) ≤ p(frel) iff p(frel) ≤ 1; with
        // meaningful parameters p(frel) ≪ 1, so frel always satisfies it.
        let (mut lo, mut hi) = (self.fmin, self.frel);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if p2(mid) <= target {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo <= 1e-14 * self.fmax {
                break;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ReliabilityModel {
        ReliabilityModel::typical(1.0, 2.0, 1.6)
    }

    #[test]
    fn rate_monotone_decreasing_in_speed() {
        let m = model();
        assert!(m.rate(1.0) > m.rate(1.5));
        assert!(m.rate(1.5) > m.rate(2.0));
        assert!((m.rate(2.0) - m.lambda0).abs() < 1e-18);
    }

    #[test]
    fn rate_at_fmin_is_exp_d_times_lambda0() {
        let m = model();
        assert!((m.rate(1.0) - m.lambda0 * m.d.exp()).abs() < 1e-12);
    }

    #[test]
    fn failure_prob_matches_eq1() {
        let m = model();
        let w = 3.0;
        let f = 1.2;
        let expected = m.lambda0 * ((3.0f64 * (2.0 - 1.2) / 1.0).exp()) * w / f;
        assert!((m.failure_prob(w, f) - expected).abs() < 1e-15);
    }

    #[test]
    fn single_ok_iff_speed_at_least_frel() {
        let m = model();
        let w = 2.0;
        assert!(m.single_ok(w, m.frel));
        assert!(m.single_ok(w, 1.9));
        assert!(!m.single_ok(w, 1.5));
    }

    #[test]
    fn segments_reduce_to_eq1_for_constant_speed() {
        let m = model();
        let w = 2.0;
        let f = 1.4;
        let p_seg = m.failure_prob_segments(&[(f, w / f)]);
        assert!((p_seg - m.failure_prob(w, f)).abs() < 1e-15);
    }

    #[test]
    fn pair_constraint_much_weaker_than_single() {
        // Two slow executions can beat one fast one: p small ⇒ p² ≪ p.
        let m = model();
        let w = 1.0;
        let g = m.reexec_equal_speed_min(w);
        assert!(g <= m.frel);
        assert!(m.pair_ok(w, g, g));
        // Just below g the pair constraint must fail (unless clamped at fmin).
        if g > m.fmin + 1e-9 {
            assert!(!m.pair_ok(w, g - 1e-6, g - 1e-6));
        }
    }

    #[test]
    fn reexec_speed_clamped_at_fmin_for_tiny_tasks() {
        // A very light task has a tiny failure probability: re-execution at
        // fmin is already reliable enough.
        let m = model();
        let g = m.reexec_equal_speed_min(1e-6);
        assert_eq!(g, m.fmin);
    }

    #[test]
    fn heavier_tasks_need_faster_reexecution() {
        let m = model();
        let g1 = m.reexec_equal_speed_min(1.0);
        let g2 = m.reexec_equal_speed_min(100.0);
        assert!(g2 >= g1);
    }

    #[test]
    #[should_panic(expected = "frel must lie")]
    fn frel_out_of_range_rejected() {
        ReliabilityModel::new(1e-5, 3.0, 1.0, 2.0, 2.5);
    }
}
