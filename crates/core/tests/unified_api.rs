//! Cross-model consistency through the unified `bicrit::solve` API.
//!
//! The paper's model-refinement hierarchy on one shared instance:
//! CONTINUOUS relaxes VDD-HOPPING (mixing two adjacent modes
//! under-approximates any real speed), which relaxes DISCRETE (hopping may
//! mix, DISCRETE may not); and the INCREMENTAL approximation stays within
//! its proven factor of the continuous optimum.

use ea_core::bicrit::{self, BnbBound, SolveOptions};
use ea_core::platform::Platform;
use ea_core::speed::SpeedModel;
use ea_core::Instance;
use ea_taskgraph::generators;

const FMIN: f64 = 1.0;
const FMAX: f64 = 2.0;

fn shared_instance(seed: u64, mult: f64) -> Instance {
    let dag = generators::random_layered(3, 3, 0.4, 0.5, 2.0, seed);
    let inst = Instance::mapped_by_list_scheduling(dag, Platform::new(2), FMAX, f64::MAX)
        .expect("mapping succeeds");
    let d = mult * inst.makespan_at_uniform_speed(FMAX);
    inst.with_deadline(d).expect("positive deadline")
}

#[test]
fn vdd_never_beats_continuous_and_discrete_never_beats_vdd() {
    let modes = vec![1.0, 1.25, 1.5, 1.75, 2.0];
    let opts = SolveOptions::default();
    for seed in 0..6u64 {
        let inst = shared_instance(seed, 1.5);
        let cont =
            bicrit::solve(&inst, &SpeedModel::continuous(FMIN, FMAX), &opts).expect("feasible");
        let vdd =
            bicrit::solve(&inst, &SpeedModel::vdd_hopping(modes.clone()), &opts).expect("feasible");
        let disc =
            bicrit::solve(&inst, &SpeedModel::discrete(modes.clone()), &opts).expect("feasible");
        // Continuous relaxes hopping: E(CONTINUOUS) ≤ E(VDD).
        assert!(
            cont.energy <= vdd.energy * (1.0 + 1e-6),
            "seed {seed}: continuous {} vs VDD {}",
            cont.energy,
            vdd.energy
        );
        // Hopping relaxes discrete: E(VDD) ≤ E(DISCRETE).
        assert!(
            vdd.energy <= disc.energy * (1.0 + 1e-6),
            "seed {seed}: VDD {} vs DISCRETE {}",
            vdd.energy,
            disc.energy
        );
    }
}

#[test]
fn incremental_with_small_delta_stays_within_its_proven_factor_of_continuous() {
    let delta = 0.05;
    let opts = SolveOptions::default().with_accuracy_k(100);
    for seed in 0..4u64 {
        let inst = shared_instance(seed, 1.6);
        let cont =
            bicrit::solve(&inst, &SpeedModel::continuous(FMIN, FMAX), &opts).expect("feasible");
        let inc = bicrit::solve(&inst, &SpeedModel::incremental(FMIN, FMAX, delta), &opts)
            .expect("feasible");
        let factor = inc.stats.proven_factor.expect("proven factor");
        // Paper bound relative to the *continuous* optimum (which
        // lower-bounds the incremental optimum).
        assert!(
            inc.energy <= factor * cont.energy * (1.0 + 1e-6),
            "seed {seed}: E_inc {} vs bound {} × E_cont {}",
            inc.energy,
            factor,
            cont.energy
        );
        // And never cheaper than the continuous relaxation.
        assert!(cont.energy <= inc.energy * (1.0 + 1e-6), "seed {seed}");
    }
}

#[test]
fn bnb_bound_choice_changes_work_not_result() {
    let modes = vec![1.0, 1.5, 2.0];
    let model = SpeedModel::discrete(modes);
    for seed in 0..3u64 {
        let inst = shared_instance(seed, 1.5);
        let simple = bicrit::solve(
            &inst,
            &model,
            &SolveOptions::default().with_bnb_bound(BnbBound::Simple),
        )
        .expect("feasible");
        let lp = bicrit::solve(
            &inst,
            &model,
            &SolveOptions::default().with_bnb_bound(BnbBound::VddRelaxation),
        )
        .expect("feasible");
        assert!(
            (simple.energy - lp.energy).abs() <= 1e-9 * simple.energy,
            "seed {seed}: both bounds are exact"
        );
        assert!(
            lp.stats.bnb_nodes.expect("nodes") <= simple.stats.bnb_nodes.expect("nodes"),
            "seed {seed}: the LP bound must not explore more nodes"
        );
    }
}

#[test]
fn every_model_validates_and_meets_the_deadline() {
    let opts = SolveOptions::default();
    let inst = shared_instance(9, 1.6);
    let models = [
        SpeedModel::continuous(FMIN, FMAX),
        SpeedModel::vdd_hopping(vec![1.0, 1.4, 2.0]),
        SpeedModel::discrete(vec![1.0, 1.4, 2.0]),
        SpeedModel::incremental(FMIN, FMAX, 0.2),
    ];
    for model in &models {
        let sol = bicrit::solve(&inst, model, &opts).expect("feasible");
        assert!(sol.makespan <= inst.deadline * (1.0 + 1e-6), "{model:?}");
        sol.to_schedule()
            .validate(&inst.dag, model, &inst.mapping, Some(inst.deadline))
            .unwrap_or_else(|e| panic!("{model:?}: {e}"));
    }
}
