//! Property tests for the Pareto-front tracer: traced fronts are
//! monotone non-increasing in energy as the deadline grows, and every
//! front point's energy matches a cold `bicrit::solve` at that point's
//! deadline within the model's tolerance.

use ea_core::bicrit::pareto::{trace_front, FrontOptions, PointSource};
use ea_core::bicrit::{self, SolveOptions};
use ea_core::instance::Instance;
use ea_core::platform::Platform;
use ea_core::speed::SpeedModel;
use ea_taskgraph::generators;
use proptest::prelude::*;

/// A mapped random-layered instance (usually non-series-parallel, so the
/// CONTINUOUS arm exercises the barrier and its warm start).
fn instance(seed: u64, procs: usize) -> Instance {
    let dag = generators::random_layered(3, 3, 0.4, 0.5, 2.0, seed);
    Instance::mapped_by_list_scheduling(dag, Platform::new(procs), 2.0, f64::MAX)
        .expect("mapping succeeds")
}

fn models() -> [SpeedModel; 4] {
    [
        SpeedModel::continuous(1.0, 2.0),
        SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]),
        SpeedModel::discrete(vec![1.0, 1.5, 2.0]),
        SpeedModel::incremental(1.0, 2.0, 0.25),
    ]
}

/// Cold-resolve tolerance per model: DISCRETE and the VDD LP are exact,
/// the barrier models carry the solver gap, and INCREMENTAL may round a
/// near-tie to the adjacent grid speed (bounded by one δ step).
fn resolve_tol(model: &SpeedModel) -> f64 {
    match model {
        SpeedModel::Incremental { .. } => 0.08,
        SpeedModel::Continuous { .. } => 1e-4,
        _ => 1e-6,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Monotonicity: traced energies never increase along the deadline
    /// axis, for every model and random instance.
    #[test]
    fn fronts_are_monotone_non_increasing(seed in 0u64..40, procs in 2usize..4) {
        let inst = instance(seed, procs);
        let opts = FrontOptions::default().with_initial_points(7).with_max_points(10);
        for model in &models() {
            let front = trace_front(&inst, model, &opts)
                .unwrap_or_else(|e| panic!("{model:?} seed {seed}: {e}"));
            prop_assert!(front.points.len() >= 2);
            for w in front.points.windows(2) {
                prop_assert!(w[1].deadline > w[0].deadline, "{model:?}: deadlines not sorted");
                prop_assert!(
                    w[1].energy <= w[0].energy * (1.0 + 1e-12) + 1e-12,
                    "{model:?} seed {seed}: energy rises {} -> {} at D {} -> {}",
                    w[0].energy, w[1].energy, w[0].deadline, w[1].deadline
                );
            }
            prop_assert!(front.is_monotone());
        }
    }

    /// Cold-resolve agreement: a warm-started front point's energy
    /// matches a fresh `bicrit::solve` at that deadline within tolerance.
    #[test]
    fn front_points_match_cold_solves(seed in 0u64..40) {
        let inst = instance(seed, 2);
        let opts = FrontOptions::default().with_initial_points(5).with_max_points(7);
        for model in &models() {
            let front = trace_front(&inst, model, &opts)
                .unwrap_or_else(|e| panic!("{model:?} seed {seed}: {e}"));
            let tol = resolve_tol(model);
            for p in &front.points {
                let cold = bicrit::solve(
                    &inst.with_deadline(p.deadline).expect("positive deadline"),
                    model,
                    &SolveOptions::default(),
                )
                .unwrap_or_else(|e| panic!("{model:?} cold resolve at D={}: {e}", p.deadline));
                prop_assert!(
                    (p.energy - cold.energy).abs() <= tol * cold.energy.max(1e-9),
                    "{model:?} seed {seed} at D={}: front {} vs cold {} ({:?})",
                    p.deadline, p.energy, cold.energy, p.source
                );
                // The front's certified makespan stays within its deadline.
                prop_assert!(p.makespan <= p.deadline * (1.0 + 1e-6));
            }
        }
    }

    /// Saturated copies are honest: a cold solve at a saturated point's
    /// deadline reaches the same (floor) energy.
    #[test]
    fn saturated_points_match_cold_solves(seed in 0u64..20) {
        let inst = instance(seed, 2);
        let model = SpeedModel::discrete(vec![1.0, 2.0]);
        let d_sat = inst.makespan_at_uniform_speed(1.0);
        let opts = FrontOptions::default()
            .with_range(None, Some(2.0 * d_sat))
            .with_initial_points(8)
            .with_max_points(10);
        let front = trace_front(&inst, &model, &opts).expect("traces");
        for p in front.points.iter().filter(|p| p.source == PointSource::Saturated) {
            let cold = bicrit::solve(
                &inst.with_deadline(p.deadline).expect("positive deadline"),
                &model,
                &SolveOptions::default(),
            )
            .expect("feasible");
            prop_assert!(
                (p.energy - cold.energy).abs() <= 1e-9 * cold.energy,
                "saturated copy {} vs cold {} at D={}",
                p.energy, cold.energy, p.deadline
            );
        }
    }
}
