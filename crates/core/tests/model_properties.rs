//! Property tests for the speed and reliability models.

use ea_core::reliability::ReliabilityModel;
use ea_core::speed::SpeedModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// round_up returns an admissible speed ≥ the request, and the
    /// *smallest* such grid point for the INCREMENTAL model.
    #[test]
    fn round_up_minimal_admissible(
        fmin in 0.2f64..1.0,
        span in 0.5f64..2.0,
        delta in 0.01f64..0.4,
        q in 0.0f64..1.0,
    ) {
        let fmax = fmin + span;
        let model = SpeedModel::incremental(fmin, fmax, delta);
        let f = fmin + q * (model.fmax() - fmin);
        let r = model.round_up(f).expect("within grid range");
        prop_assert!(model.admissible(r), "{r} not admissible");
        prop_assert!(r >= f - 1e-9, "rounded down: {r} < {f}");
        // Minimality: one grid step below r is < f (or r is the floor).
        if r > fmin + 1e-9 {
            prop_assert!(r - delta < f + 1e-6, "not minimal: {r} vs {f} (δ={delta})");
        }
    }

    /// bracket() returns adjacent modes that actually bracket the speed.
    #[test]
    fn bracket_brackets(seed in 0u64..1000, q in 0.0f64..1.0) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = rng.random_range(2..8usize);
        let modes: Vec<f64> = (0..m).map(|_| rng.random_range(0.5..3.0)).collect();
        let model = SpeedModel::vdd_hopping(modes.clone());
        let sorted = model.modes().expect("has modes");
        let f = sorted[0] + q * (sorted[sorted.len() - 1] - sorted[0]);
        let (lo, hi) = model.bracket(f).expect("inside range");
        prop_assert!(lo <= f + 1e-9 && f <= hi + 1e-9, "({lo},{hi}) vs {f}");
        prop_assert!(model.admissible(lo) && model.admissible(hi));
        // Adjacency: no mode strictly between lo and hi.
        prop_assert!(!sorted.iter().any(|&x| x > lo + 1e-9 && x < hi - 1e-9));
    }

    /// Failure probability decreases with speed and increases with weight
    /// (Eq. (1) monotonicity).
    #[test]
    fn failure_prob_monotone(
        w in 0.1f64..5.0,
        f1 in 1.0f64..1.99,
        bump_f in 0.001f64..0.5,
        bump_w in 0.001f64..2.0,
    ) {
        let rel = ReliabilityModel::typical(1.0, 2.5, 2.0);
        let f2 = (f1 + bump_f).min(2.5);
        prop_assert!(rel.failure_prob(w, f2) <= rel.failure_prob(w, f1) + 1e-15);
        prop_assert!(rel.failure_prob(w + bump_w, f1) >= rel.failure_prob(w, f1));
    }

    /// The equal re-execution speed is the true threshold: the pair
    /// constraint holds at g_min and fails just below (unless clamped).
    #[test]
    fn reexec_floor_is_tight(w in 0.1f64..20.0) {
        let rel = ReliabilityModel::typical(1.0, 2.0, 1.8);
        let g = rel.reexec_equal_speed_min(w);
        prop_assert!(g >= rel.fmin && g <= rel.frel + 1e-12);
        prop_assert!(rel.pair_ok(w, g, g));
        if g > rel.fmin + 1e-6 {
            prop_assert!(!rel.pair_ok(w, g - 1e-5, g - 1e-5), "floor not tight at w={w}");
        }
    }

    /// Re-execution always meets the constraint more easily than a single
    /// execution at the same speed: pair_ok(f_rel, f_rel) for every weight.
    #[test]
    fn reexec_at_frel_always_ok(w in 0.01f64..50.0) {
        let rel = ReliabilityModel::typical(1.0, 2.0, 1.8);
        prop_assert!(rel.pair_ok(w, rel.frel, rel.frel));
        prop_assert!(rel.single_ok(w, rel.frel));
    }
}
