//! Property tests for the canonical cache-key digest
//! ([`ea_core::digest`]): relabelling task indices or reordering the edge
//! list never changes the digest, while perturbing any semantic knob —
//! a weight, the deadline, a model parameter, a solver option — always
//! does.

use ea_core::bicrit::{BnbBound, SolveOptions};
use ea_core::digest::solve_request_digest;
use ea_core::instance::Instance;
use ea_core::platform::{Mapping, Platform};
use ea_core::speed::SpeedModel;
use ea_taskgraph::{generators, Dag, TaskId};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A random mapped instance: layered DAG, critical-path list scheduling.
fn random_instance(seed: u64, procs: usize, deadline_mult: f64) -> Instance {
    let dag = generators::random_layered(3, 3, 0.4, 0.5, 2.5, seed);
    let inst = Instance::mapped_by_list_scheduling(dag, Platform::new(procs), 2.0, f64::MAX)
        .expect("mapping succeeds");
    let d = deadline_mult * inst.makespan_at_uniform_speed(2.0);
    inst.with_deadline(d).expect("positive deadline")
}

/// Rebuilds `inst` with task indices permuted by `perm` (new index `i`
/// holds old task `perm[i]`) and the edge insertion order shuffled —
/// the same semantic instance under a different labelling.
fn permuted_instance(inst: &Instance, perm: &[TaskId], shuffle_seed: u64) -> Instance {
    let n = inst.n_tasks();
    assert_eq!(perm.len(), n);
    // inv[old] = new
    let mut inv = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    let weights: Vec<f64> = perm.iter().map(|&old| inst.dag.weights()[old]).collect();
    let mut edges: Vec<(TaskId, TaskId)> = inst
        .dag
        .edges()
        .iter()
        .map(|&(s, d)| (inv[s], inv[d]))
        .collect();
    shuffle(&mut edges, shuffle_seed);
    let dag = Dag::from_parts(weights, edges).expect("permuted DAG is the same DAG");
    let proc_of: Vec<usize> = perm
        .iter()
        .map(|&old| inst.mapping.processor_of(old))
        .collect();
    let order: Vec<Vec<TaskId>> = (0..inst.mapping.n_processors())
        .map(|p| inst.mapping.order_on(p).iter().map(|&t| inv[t]).collect())
        .collect();
    let mapping = Mapping::new(proc_of, order).expect("permuted mapping is consistent");
    Instance::new(dag, inst.platform, mapping, inst.deadline).expect("same semantic instance")
}

fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

fn random_permutation(n: usize, seed: u64) -> Vec<TaskId> {
    let mut perm: Vec<TaskId> = (0..n).collect();
    shuffle(&mut perm, seed);
    perm
}

fn models() -> [SpeedModel; 4] {
    [
        SpeedModel::continuous(1.0, 2.0),
        SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]),
        SpeedModel::discrete(vec![1.0, 1.5, 2.0]),
        SpeedModel::incremental(1.0, 2.0, 0.25),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Relabelling task indices (and shuffling edge insertion order)
    /// leaves the canonical digest unchanged, under every model.
    #[test]
    fn digest_invariant_under_task_relabelling(
        seed in 0u64..500,
        perm_seed in 0u64..1000,
        procs in 1usize..4,
    ) {
        let inst = random_instance(seed, procs, 1.5);
        let perm = random_permutation(inst.n_tasks(), perm_seed);
        let relabelled = permuted_instance(&inst, &perm, perm_seed.wrapping_add(1));
        prop_assert_eq!(inst.canonical_digest(), relabelled.canonical_digest());
        let opts = SolveOptions::default();
        for model in &models() {
            prop_assert_eq!(
                solve_request_digest(&inst, model, &opts),
                solve_request_digest(&relabelled, model, &opts),
                "{} digest not relabelling-invariant", model.name()
            );
        }
    }

    /// Perturbing any task weight changes the digest.
    #[test]
    fn digest_sensitive_to_weights(
        seed in 0u64..500,
        task_pick in 0usize..64,
        bump in 0.01f64..0.5,
    ) {
        let inst = random_instance(seed, 2, 1.5);
        let t = task_pick % inst.n_tasks();
        let mut weights = inst.dag.weights().to_vec();
        weights[t] += bump;
        let dag = Dag::from_parts(weights, inst.dag.edges().iter().copied())
            .expect("same structure");
        let bumped = Instance::new(dag, inst.platform, inst.mapping.clone(), inst.deadline)
            .expect("valid instance");
        prop_assert_ne!(inst.canonical_digest(), bumped.canonical_digest());
    }

    /// Perturbing the deadline changes the digest.
    #[test]
    fn digest_sensitive_to_deadline(seed in 0u64..500, bump in 0.001f64..0.5) {
        let inst = random_instance(seed, 2, 1.5);
        let later = inst.with_deadline(inst.deadline * (1.0 + bump)).expect("valid");
        prop_assert_ne!(inst.canonical_digest(), later.canonical_digest());
    }

    /// Perturbing any model knob (fmin, fmax, δ, a mode) changes the
    /// request digest.
    #[test]
    fn digest_sensitive_to_model_knobs(seed in 0u64..200, bump in 0.001f64..0.2) {
        let inst = random_instance(seed, 2, 1.5);
        let opts = SolveOptions::default();
        let d = |m: &SpeedModel| solve_request_digest(&inst, m, &opts);

        let base = SpeedModel::continuous(1.0, 2.0);
        prop_assert_ne!(d(&base), d(&SpeedModel::continuous(1.0 + bump, 2.0)));
        prop_assert_ne!(d(&base), d(&SpeedModel::continuous(1.0, 2.0 + bump)));

        let inc = SpeedModel::incremental(1.0, 2.0, 0.25);
        prop_assert_ne!(d(&inc), d(&SpeedModel::incremental(1.0, 2.0, 0.25 + bump)));
        prop_assert_ne!(d(&inc), d(&SpeedModel::incremental(1.0 - bump / 2.0, 2.0, 0.25)));

        let disc = SpeedModel::discrete(vec![1.0, 1.5, 2.0]);
        prop_assert_ne!(d(&disc), d(&SpeedModel::discrete(vec![1.0, 1.5 + bump, 2.0])));
        prop_assert_ne!(d(&disc), d(&SpeedModel::discrete(vec![1.0, 2.0])));

        let vdd = SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]);
        prop_assert_ne!(d(&vdd), d(&SpeedModel::vdd_hopping(vec![1.0, 1.5 + bump, 2.0])));
    }

    /// Mode *order* does not matter (constructors normalise; the digest
    /// re-sorts), but the set does.
    #[test]
    fn digest_invariant_under_mode_order(seed in 0u64..200) {
        let inst = random_instance(seed, 2, 1.5);
        let opts = SolveOptions::default();
        let a = SpeedModel::discrete(vec![1.0, 1.5, 2.0]);
        let b = SpeedModel::discrete(vec![2.0, 1.0, 1.5]);
        prop_assert_eq!(
            solve_request_digest(&inst, &a, &opts),
            solve_request_digest(&inst, &b, &opts)
        );
    }

    /// Perturbing any `SolveOptions` knob changes the request digest.
    #[test]
    fn digest_sensitive_to_solve_options(seed in 0u64..200, k in 2usize..500) {
        let inst = random_instance(seed, 2, 1.5);
        let model = SpeedModel::discrete(vec![1.0, 1.5, 2.0]);
        let base = solve_request_digest(&inst, &model, &SolveOptions::default());

        let bound = SolveOptions::default().with_bnb_bound(BnbBound::Simple);
        prop_assert_ne!(base, solve_request_digest(&inst, &model, &bound));

        if k != 50 {
            let acc = SolveOptions::default().with_accuracy_k(k);
            prop_assert_ne!(base, solve_request_digest(&inst, &model, &acc));
        }

        let mut barrier = SolveOptions::default();
        barrier.barrier.tol *= 2.0;
        prop_assert_ne!(base, solve_request_digest(&inst, &model, &barrier));

        let mut newton = SolveOptions::default();
        newton.barrier.max_newton += 1;
        prop_assert_ne!(base, solve_request_digest(&inst, &model, &newton));
    }
}

/// Deterministic non-property check: the digest is stable across calls
/// and across structurally equal clones.
#[test]
fn digest_is_stable_across_clones() {
    let inst = random_instance(11, 2, 1.5);
    let clone = inst.clone();
    assert_eq!(inst.canonical_digest(), clone.canonical_digest());
    assert_eq!(inst.canonical_digest(), inst.canonical_digest());
}
