//! # ea-bench
//!
//! The experiment harness of the reproduction. The paper is a theory
//! paper — its "evaluation" is a set of theorems and complexity claims —
//! so every experiment validates one claim empirically (see DESIGN.md §4
//! for the claim ↔ experiment map):
//!
//! | experiment | claim |
//! |------------|-------|
//! | E1  | fork closed form = numerical optimum |
//! | E2  | chain/tree/SP closed forms = numerical optimum |
//! | E3  | VDD-HOPPING LP: polynomial, ≤ 2 adjacent modes per task |
//! | E4  | DISCRETE is NP-complete: exact search blows up; 2-PARTITION gadget |
//! | E5  | INCREMENTAL approximation ratio ≤ (1+δ/f_min)²(1+1/K)² |
//! | E6  | TRI-CRIT chain strategy ≈ exhaustive optimum |
//! | E7  | TRI-CRIT fork polynomial algorithm = brute force |
//! | E8  | heuristics H-A/H-B are complementary; BEST dominates |
//! | E9  | Eq. (1): re-execution restores DVFS-lost reliability |
//! | E10 | VDD adaptation loss shrinks with mode count |
//!
//! `cargo run -p ea-bench --bin experiments --release` regenerates every
//! table recorded in EXPERIMENTS.md; the Criterion benches under
//! `benches/` time the underlying solvers.

pub mod ablations;
pub mod experiments;
pub mod table;
pub mod workloads;
