//! The ten experiments (E1–E10): table generators validating every claim
//! of the paper. Each function is deterministic (seeded) and returns the
//! tables recorded in EXPERIMENTS.md.

use crate::table::{fmt_f, Table};
use crate::workloads;
use ea_convex::BarrierOptions;
use ea_core::bicrit::{self, continuous, BnbBound, SolveOptions};
use ea_core::instance::Instance;
use ea_core::reductions;
use ea_core::speed::SpeedModel;
use ea_core::tricrit;
use ea_sim::run_monte_carlo;
use ea_taskgraph::{analysis, generators, SpTree};
use std::time::Instant;

/// E1 — the fork theorem vs the numerical optimum.
pub fn e01_fork_closed_form() -> Vec<Table> {
    let mut t = Table::new(
        "E1: fork theorem — closed form vs convex solver (CONTINUOUS BI-CRIT)",
        &[
            "n branches",
            "E closed",
            "E convex",
            "rel.err",
            "closed µs",
            "convex ms",
        ],
    );
    for &n in &[2usize, 4, 8, 16, 32] {
        let ws = generators::random_weights(n, 0.5, 2.5, n as u64);
        let w0 = 1.5;
        let d = 3.0 * (w0 + ws.iter().fold(0.0f64, |m, &w| m.max(w))) / 2.0;
        let t0 = Instant::now();
        let closed = continuous::fork_theorem(w0, &ws, d, 1e-6, 2.0).expect("feasible");
        let us_closed = t0.elapsed().as_micros();
        let inst = Instance::fork(w0, &ws, d).expect("valid");
        let t1 = Instant::now();
        let num = continuous::solve_general(
            inst.augmented_dag(),
            d,
            1e-6,
            2.0,
            &BarrierOptions::default(),
        )
        .expect("feasible");
        let ms_convex = t1.elapsed().as_secs_f64() * 1e3;
        let rel_err = (num.energy - closed.energy).abs() / closed.energy;
        t.push(vec![
            n.to_string(),
            fmt_f(closed.energy),
            fmt_f(num.energy),
            format!("{rel_err:.2e}"),
            us_closed.to_string(),
            format!("{ms_convex:.1}"),
        ]);
    }
    vec![t]
}

/// E2 — chain / tree / series-parallel closed forms vs the solver.
pub fn e02_sp_closed_forms() -> Vec<Table> {
    let mut t = Table::new(
        "E2: SP equivalent-weight algebra vs convex solver",
        &["structure", "n", "E closed", "E convex", "rel.err"],
    );
    let mut row = |label: &str, tree: &SpTree| {
        let dag = tree.to_dag();
        let d = 3.0 * analysis::critical_path_length(&dag, dag.weights()) / 2.0;
        let (_, e_closed) = continuous::sp_optimal(tree, d);
        let num = continuous::solve_general(&dag, d, 1e-6, 1e6, &BarrierOptions::default())
            .expect("feasible");
        let rel_err = (num.energy - e_closed).abs() / e_closed;
        t.push(vec![
            label.to_string(),
            dag.len().to_string(),
            fmt_f(e_closed),
            fmt_f(num.energy),
            format!("{rel_err:.2e}"),
        ]);
    };
    // chain
    let chain = SpTree::series(
        generators::random_weights(20, 0.5, 2.5, 1)
            .into_iter()
            .map(SpTree::leaf)
            .collect(),
    );
    row("chain", &chain);
    // out-tree (recognised from the DAG)
    let tree_dag = generators::out_tree(2, 3, 1.0);
    let tree = SpTree::from_dag(&tree_dag).expect("trees are SP");
    row("out-tree", &tree);
    // random SP graphs
    for seed in 0..3u64 {
        let sp = generators::random_sp_tree(24, 0.5, 2.5, seed);
        row("random SP", &sp);
    }
    vec![t]
}

/// E3 — the VDD-HOPPING LP: polynomial scaling, ≤ 2 adjacent modes per
/// task, and the CONTINUOUS ≤ VDD ≤ DISCRETE energy sandwich — entirely
/// through the unified `bicrit::solve` dispatcher.
pub fn e03_vdd_lp() -> Vec<Table> {
    let modes = workloads::standard_modes(5);
    let vdd_model = SpeedModel::vdd_hopping(modes.clone());
    let cont_model = SpeedModel::continuous(1.0, 2.0);
    let opts = SolveOptions::default();
    let mut t = Table::new(
        "E3: VDD-HOPPING LP (m = 5 modes)",
        &[
            "n tasks",
            "LP rows",
            "pivots",
            "ms",
            "max modes/task",
            "adjacent",
            "E_cont ≤ E_vdd ≤ E_disc",
        ],
    );
    for &(layers, width) in &[(4usize, 3usize), (6, 4), (8, 5), (10, 6)] {
        let inst = workloads::layered_instance(layers, width, width, 1.6, 42);
        let aug = inst.augmented_dag();
        let n = aug.len();
        let t0 = Instant::now();
        let sol = bicrit::solve(&inst, &vdd_model, &opts).expect("feasible");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let cont = bicrit::solve(&inst, &cont_model, &opts).expect("feasible");
        // Discrete upper bound: round the continuous speeds up.
        let model = SpeedModel::discrete(modes.clone());
        let e_disc: f64 = aug
            .weights()
            .iter()
            .zip(&cont.constant_speeds().expect("continuous is single-speed"))
            .map(|(w, &f)| {
                let fr = model.round_up(f).expect("within range");
                w * fr * fr
            })
            .sum();
        let sandwich =
            cont.energy <= sol.energy * (1.0 + 1e-6) && sol.energy <= e_disc * (1.0 + 1e-6);
        t.push(vec![
            n.to_string(),
            (n + aug.edge_count() + n).to_string(),
            sol.stats.lp_pivots.expect("VDD records pivots").to_string(),
            format!("{ms:.1}"),
            sol.max_modes_per_task().to_string(),
            sol.speeds_adjacent().to_string(),
            sandwich.to_string(),
        ]);
    }
    vec![t]
}

/// E4 — DISCRETE NP-completeness: exponential node growth of the exact
/// search and the executable 2-PARTITION gadget.
pub fn e04_discrete_exact() -> Vec<Table> {
    let mut t = Table::new(
        "E4a: exact DISCRETE B&B node growth (gadget instances, m = 2 modes)",
        &[
            "n tasks",
            "nodes (simple bound)",
            "nodes (VDD LP bound)",
            "ms (simple)",
        ],
    );
    for &n in &[6usize, 8, 10, 12, 14] {
        // Hard no-instances: odd total sum (never a perfect partition).
        let a: Vec<u64> = (0..n as u64).map(|i| 2 * i + 3).collect();
        let g = reductions::two_partition_gadget(&a).expect("valid gadget");
        let model = SpeedModel::discrete(g.modes.clone());
        let t0 = Instant::now();
        let simple = bicrit::solve(
            &g.instance,
            &model,
            &SolveOptions::default().with_bnb_bound(BnbBound::Simple),
        )
        .expect("feasible");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let lp = bicrit::solve(
            &g.instance,
            &model,
            &SolveOptions::default().with_bnb_bound(BnbBound::VddRelaxation),
        )
        .expect("feasible");
        assert!((simple.energy - lp.energy).abs() < 1e-6 * simple.energy);
        t.push(vec![
            n.to_string(),
            simple.stats.bnb_nodes.expect("nodes recorded").to_string(),
            lp.stats.bnb_nodes.expect("nodes recorded").to_string(),
            format!("{ms:.2}"),
        ]);
    }

    let mut t2 = Table::new(
        "E4b: 2-PARTITION gadget — OPT = 5S iff a perfect partition exists",
        &["instance", "S", "OPT", "5S", "decided", "truth"],
    );
    let cases: &[(&str, Vec<u64>, bool)] = &[
        ("{3,5,8}", vec![3, 5, 8], true),
        ("{2,3,4}", vec![2, 3, 4], false),
        ("{1,1,1,9}", vec![1, 1, 1, 9], false),
        ("{1..7}", vec![1, 2, 3, 4, 5, 6, 7], true),
        ("{10,20,30,40,50,90}", vec![10, 20, 30, 40, 50, 90], true),
    ];
    for (label, a, truth) in cases {
        let g = reductions::two_partition_gadget(a).expect("valid gadget");
        let opt = bicrit::solve(
            &g.instance,
            &SpeedModel::discrete(g.modes.clone()),
            &SolveOptions::default().with_bnb_bound(BnbBound::Simple),
        )
        .expect("feasible")
        .energy;
        let decided = g.decide_via_energy(opt);
        assert_eq!(decided, *truth, "gadget decision must match ground truth");
        t2.push(vec![
            label.to_string(),
            fmt_f(g.half_sum),
            fmt_f(opt),
            fmt_f(g.yes_energy),
            decided.to_string(),
            truth.to_string(),
        ]);
    }
    vec![t, t2]
}

/// E5 — INCREMENTAL approximation: measured ratio vs the proven factor.
pub fn e05_incremental_approx() -> Vec<Table> {
    let mut t = Table::new(
        "E5: INCREMENTAL rounding — measured ratio vs (1+δ/fmin)²(1+1/K)²",
        &[
            "δ",
            "K",
            "E_inc",
            "continuous LB",
            "ratio",
            "proven bound",
            "within",
        ],
    );
    let inst = workloads::layered_instance(5, 3, 3, 1.7, 7);
    for &delta in &[0.5, 0.25, 0.1, 0.05] {
        let model = SpeedModel::incremental(1.0, 2.0, delta);
        for &k in &[1usize, 10, 100] {
            let s = bicrit::solve(&inst, &model, &SolveOptions::default().with_accuracy_k(k))
                .expect("feasible");
            let ratio = s.stats.approx_ratio.expect("measured ratio");
            let bound = s.stats.proven_factor.expect("proven factor");
            let ok = ratio <= bound + 1e-9;
            assert!(ok, "δ={delta} K={k}: ratio {ratio} > bound {bound}");
            t.push(vec![
                fmt_f(delta),
                k.to_string(),
                fmt_f(s.energy),
                fmt_f(s.lower_bound.expect("continuous LB")),
                format!("{ratio:.4}"),
                format!("{bound:.4}"),
                ok.to_string(),
            ]);
        }
    }
    vec![t]
}

/// E6 — TRI-CRIT chain: the paper's strategy vs exhaustive optimum, and
/// its polynomial scaling.
pub fn e06_tricrit_chain() -> Vec<Table> {
    let rel = workloads::standard_reliability();
    let mut t = Table::new(
        "E6a: TRI-CRIT chain — greedy strategy vs exhaustive optimum (n = 10)",
        &["deadline mult", "mean gap %", "max gap %", "instances"],
    );
    for &mult in &[1.2, 1.6, 2.2, 3.5] {
        let mut gaps = Vec::new();
        for seed in 0..10u64 {
            let w = generators::random_weights(10, 0.5, 2.5, seed);
            let d = mult * w.iter().sum::<f64>() / rel.fmax;
            let (g, x) = (
                tricrit::chain::solve_greedy(&w, d, &rel),
                tricrit::chain::solve_exhaustive(&w, d, &rel),
            );
            if let (Ok(g), Ok(x)) = (g, x) {
                gaps.push(100.0 * (g.energy / x.energy - 1.0));
            }
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let max = gaps.iter().copied().fold(0.0f64, f64::max);
        t.push(vec![
            fmt_f(mult),
            format!("{mean:.3}"),
            format!("{max:.3}"),
            gaps.len().to_string(),
        ]);
    }

    let mut t2 = Table::new(
        "E6b: greedy chain strategy scaling (polynomial) vs exhaustive (exponential)",
        &["n", "greedy ms", "exhaustive ms", "#re-executed"],
    );
    for &n in &[8usize, 12, 16, 64, 200] {
        let w = generators::random_weights(n, 0.5, 2.5, 99);
        let d = 2.0 * w.iter().sum::<f64>() / rel.fmax;
        let t0 = Instant::now();
        let g = tricrit::chain::solve_greedy(&w, d, &rel).expect("feasible");
        let g_ms = t0.elapsed().as_secs_f64() * 1e3;
        let x_ms = if n <= 16 {
            let t1 = Instant::now();
            let _ = tricrit::chain::solve_exhaustive(&w, d, &rel).expect("feasible");
            format!("{:.1}", t1.elapsed().as_secs_f64() * 1e3)
        } else {
            "—".to_string()
        };
        t2.push(vec![
            n.to_string(),
            format!("{g_ms:.1}"),
            x_ms,
            g.reexecuted.iter().filter(|&&r| r).count().to_string(),
        ]);
    }
    vec![t, t2]
}

/// E7 — TRI-CRIT fork: the polynomial algorithm vs brute force, plus
/// scaling.
pub fn e07_tricrit_fork() -> Vec<Table> {
    let rel = workloads::standard_reliability();
    let mut t = Table::new(
        "E7a: TRI-CRIT fork — polynomial algorithm vs brute force (n = 6 branches)",
        &["deadline mult", "mean gap %", "max gap %", "instances"],
    );
    for &mult in &[1.3, 2.0, 4.0] {
        let mut gaps = Vec::new();
        for seed in 0..8u64 {
            let ws = generators::random_weights(6, 0.5, 2.5, seed);
            let w0 = 1.5;
            let base = w0 / rel.fmax + ws.iter().fold(0.0f64, |m, &w| m.max(w / rel.fmax));
            let d = mult * base;
            let fast = tricrit::fork::solve(w0, &ws, d, &rel);
            let brute = tricrit::fork::solve_brute_force(w0, &ws, d, &rel, 600);
            if let (Ok(f), Ok(b)) = (fast, brute) {
                gaps.push(100.0 * (f.energy / b.energy - 1.0));
            }
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
        let max = gaps.iter().copied().fold(f64::MIN, f64::max);
        t.push(vec![
            fmt_f(mult),
            format!("{mean:.4}"),
            format!("{max:.4}"),
            gaps.len().to_string(),
        ]);
    }

    let mut t2 = Table::new(
        "E7b: fork algorithm scaling",
        &["n branches", "ms", "#re-executed"],
    );
    for &n in &[16usize, 64, 256, 512] {
        let ws = generators::random_weights(n, 0.5, 2.5, 5);
        let w0 = 1.5;
        let base = w0 / rel.fmax + ws.iter().fold(0.0f64, |m, &w| m.max(w / rel.fmax));
        let d = 2.5 * base;
        let t0 = Instant::now();
        let sol = tricrit::fork::solve(w0, &ws, d, &rel).expect("feasible");
        t2.push(vec![
            n.to_string(),
            format!("{:.1}", t0.elapsed().as_secs_f64() * 1e3),
            sol.reexecuted.iter().filter(|&&r| r).count().to_string(),
        ]);
    }
    vec![t, t2]
}

/// E8 — heuristic complementarity: H-A wins on chain-like DAGs, H-B on
/// highly parallel ones, BEST dominates everywhere.
pub fn e08_heuristics() -> Vec<Table> {
    let rel = workloads::standard_reliability();
    let mut t = Table::new(
        "E8: TRI-CRIT heuristics across DAG families (energy normalised to BEST)",
        &["family", "D mult", "E_A/BEST", "E_B/BEST", "winner"],
    );
    let mut a_wins_chain = 0usize;
    let mut b_wins_fork = 0usize;
    for &mult in &[1.3, 1.8, 3.0] {
        for (label, inst) in workloads::e8_families(mult, 11) {
            let a = tricrit::heuristics::heuristic_a(&inst, &rel);
            let b = tricrit::heuristics::heuristic_b(&inst, &rel);
            let (ea, eb) = match (&a, &b) {
                (Ok(a), Ok(b)) => (a.energy, b.energy),
                (Ok(a), Err(_)) => (a.energy, f64::INFINITY),
                (Err(_), Ok(b)) => (f64::INFINITY, b.energy),
                (Err(_), Err(_)) => continue,
            };
            let best = ea.min(eb);
            let winner = if ea <= eb { "A" } else { "B" };
            if label == "chain" && winner == "A" {
                a_wins_chain += 1;
            }
            if label == "fork" && winner == "B" {
                b_wins_fork += 1;
            }
            t.push(vec![
                label.to_string(),
                fmt_f(mult),
                format!("{:.4}", ea / best),
                format!("{:.4}", eb / best),
                winner.to_string(),
            ]);
        }
    }
    let mut t2 = Table::new(
        "E8 summary: complementarity (paper claim: chain-like → H-A, parallel → H-B)",
        &["claim", "observed"],
    );
    t2.push(vec![
        "H-A wins on chains".into(),
        format!("{a_wins_chain}/3 deadline settings"),
    ]);
    t2.push(vec![
        "H-B wins on forks".into(),
        format!("{b_wins_fork}/3 deadline settings"),
    ]);
    vec![t, t2]
}

/// E9 — fault injection: DVFS destroys reliability, re-execution restores
/// it (Monte-Carlo vs Eq. (1)), plus the energy story under the standard
/// (realistic λ₀) model.
pub fn e09_fault_injection() -> Vec<Table> {
    let rel = workloads::hot_reliability();
    let runs = 30_000usize;
    let w = generators::random_weights(10, 0.5, 1.5, 21);
    let dag = generators::chain(&w);
    let mapping = ea_core::platform::Mapping::single_processor((0..w.len()).collect());
    let d = 3.2 * w.iter().sum::<f64>() / rel.fmax;

    // Three schedules: reliable baseline (all at frel), naive DVFS (slowed
    // to fill the deadline, reliability ignored), forced re-execution
    // (every task twice at the water-filled reliable speeds).
    let baseline = ea_core::schedule::Schedule::uniform(w.len(), rel.frel);
    let naive_speed = (w.iter().sum::<f64>() / d).max(rel.fmin);
    let naive = ea_core::schedule::Schedule::uniform(w.len(), naive_speed);
    let all_twice = vec![true; w.len()];
    let (re_speeds, _) = tricrit::chain::evaluate_subset(&w, d, &rel, &all_twice)
        .expect("re-execution fits the loose deadline");
    let reexec = ea_core::schedule::Schedule {
        tasks: re_speeds
            .iter()
            .map(|&g| ea_core::schedule::TaskSchedule::twice(g, g))
            .collect(),
    };

    let target_worst = w.iter().map(|&wi| rel.target(wi)).fold(0.0f64, f64::max);

    let mut t = Table::new(
        format!(
            "E9a: Monte-Carlo fault injection ({runs} runs, hot λ₀; worst per-task budget {:.4})",
            target_worst
        ),
        &[
            "schedule",
            "E worst case",
            "E actual (mean)",
            "worst task fail rate",
            "analytic worst p",
            "meets constraint",
            "app success",
        ],
    );
    for (label, sched) in [
        ("single @ frel (baseline)", &baseline),
        ("naive DVFS (no re-exec)", &naive),
        ("re-execution (twice, slow)", &reexec),
    ] {
        let stats = run_monte_carlo(&dag, &mapping, sched, &rel, runs, 2024);
        let probs = sched.failure_probs(&dag, &rel);
        let analytic_worst = probs.iter().copied().fold(0.0f64, f64::max);
        let meets = probs
            .iter()
            .zip(w.iter())
            .all(|(p, &wi)| *p <= rel.target(wi) * (1.0 + 1e-9));
        t.push(vec![
            label.to_string(),
            fmt_f(sched.energy(&dag)),
            fmt_f(stats.mean_energy),
            format!("{:.5}", stats.worst_task_failure_rate()),
            format!("{:.5}", analytic_worst.min(1.0)),
            meets.to_string(),
            format!("{:.4}", stats.app_success_rate),
        ]);
    }

    // Under the *standard* model (λ₀ = 10⁻⁵) failures are too rare to
    // Monte-Carlo cheaply, but the energy story is the point: with slack,
    // TRI-CRIT's re-execution beats the frel baseline while keeping the
    // constraint analytically.
    let rel_std = workloads::standard_reliability();
    let mut t2 = Table::new(
        "E9b: energy under the standard model (λ₀ = 10⁻⁵): re-execution pays off",
        &[
            "deadline mult",
            "E baseline@frel",
            "E TRI-CRIT",
            "saving %",
            "#re-exec",
            "constraint",
        ],
    );
    for &mult in &[1.2, 2.0, 3.2, 5.0] {
        let d = mult * w.iter().sum::<f64>() / rel_std.fmax;
        let tri = tricrit::chain::solve_greedy(&w, d, &rel_std).expect("feasible");
        let e_base: f64 = w.iter().map(|wi| wi * rel_std.frel * rel_std.frel).sum();
        let ok = tri.schedule.reliability_ok(&dag, &rel_std);
        assert!(ok, "TRI-CRIT schedule must keep the constraint");
        t2.push(vec![
            fmt_f(mult),
            fmt_f(e_base),
            fmt_f(tri.energy),
            format!("{:.1}", 100.0 * (1.0 - tri.energy / e_base)),
            tri.reexecuted.iter().filter(|&&r| r).count().to_string(),
            ok.to_string(),
        ]);
    }
    vec![t, t2]
}

/// E10 — VDD adaptation of the continuous TRI-CRIT heuristics: the loss
/// factor shrinks as the mode set grows.
pub fn e10_vdd_adaptation() -> Vec<Table> {
    let rel = workloads::standard_reliability();
    let w = generators::random_weights(12, 0.5, 2.5, 31);
    let d = 2.0 * w.iter().sum::<f64>() / rel.fmax;
    let cont = tricrit::chain::solve_greedy(&w, d, &rel).expect("feasible");
    let dag = generators::chain(&w);
    let mapping = ea_core::platform::Mapping::single_processor((0..w.len()).collect());

    let mut t = Table::new(
        "E10: VDD-HOPPING adaptation of the continuous TRI-CRIT solution",
        &[
            "modes m",
            "E continuous",
            "E adapted",
            "loss factor",
            "constraints kept",
        ],
    );
    for &m in &[2usize, 3, 5, 9, 17] {
        let model = SpeedModel::vdd_hopping(workloads::standard_modes(m));
        let adapted = tricrit::vdd::adapt(&dag, &cont, &rel, &model).expect("adaptable");
        let ok = adapted.schedule.reliability_ok(&dag, &rel)
            && adapted.schedule.makespan(&dag, &mapping).expect("valid") <= d * (1.0 + 1e-6);
        assert!(ok, "adaptation must preserve feasibility (m = {m})");
        t.push(vec![
            m.to_string(),
            fmt_f(adapted.continuous_energy),
            fmt_f(adapted.energy),
            format!("{:.5}", adapted.loss_factor),
            ok.to_string(),
        ]);
    }
    vec![t]
}

/// Runs every experiment in order, returning all tables.
pub fn run_all() -> Vec<Table> {
    let mut out = Vec::new();
    out.extend(e01_fork_closed_form());
    out.extend(e02_sp_closed_forms());
    out.extend(e03_vdd_lp());
    out.extend(e04_discrete_exact());
    out.extend(e05_incremental_approx());
    out.extend(e06_tricrit_chain());
    out.extend(e07_tricrit_fork());
    out.extend(e08_heuristics());
    out.extend(e09_fault_injection());
    out.extend(e10_vdd_adaptation());
    out
}

#[cfg(test)]
mod tests {
    // Smoke tests keep the experiment harness itself under test; the
    // heavier experiments run in release via the `experiments` binary.
    use super::*;

    #[test]
    fn e01_runs_and_agrees() {
        let t = &e01_fork_closed_form()[0];
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let err: f64 = row[3].parse().expect("rel.err cell");
            assert!(err < 1e-2, "closed form vs convex divergence: {err}");
        }
    }

    #[test]
    fn e05_bound_holds() {
        let t = &e05_incremental_approx()[0];
        assert!(t.rows.iter().all(|r| r[6] == "true"));
    }

    #[test]
    fn e10_loss_decreases() {
        let t = &e10_vdd_adaptation()[0];
        let losses: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[3].parse().expect("loss cell"))
            .collect();
        assert!(losses.windows(2).all(|w| w[1] <= w[0] * (1.0 + 1e-6)));
        assert!(losses.last().expect("non-empty") < &1.05);
    }
}
