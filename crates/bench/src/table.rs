//! Minimal aligned-column table printer for the experiment reports.

use std::fmt;

/// A simple table: caption, headers, string rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Caption printed above the table.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(caption: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity differs from the headers.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders as GitHub-flavoured markdown (used for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("**{}**\n\n", self.caption);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "── {} ──", self.caption)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
                first = false;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e4 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.push(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("bbbb"));
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("cap", &["x", "y"]);
        t.push(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| x | y |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("cap", &["x", "y"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1.5), "1.5000");
        assert!(fmt_f(123456.0).contains('e'));
        assert!(fmt_f(0.00001).contains('e'));
    }
}
