//! Regenerates every experiment table (E1–E10).
//!
//! Usage:
//! ```text
//! cargo run -p ea-bench --bin experiments --release            # all, text
//! cargo run -p ea-bench --bin experiments --release -- --md    # markdown
//! cargo run -p ea-bench --bin experiments --release -- e3 e5   # a subset
//! ```

use ea_bench::experiments as ex;
use ea_bench::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--md");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();

    type Generator = fn() -> Vec<Table>;
    let suite: Vec<(&str, Generator)> = vec![
        ("e1", ex::e01_fork_closed_form),
        ("e2", ex::e02_sp_closed_forms),
        ("e3", ex::e03_vdd_lp),
        ("e4", ex::e04_discrete_exact),
        ("e5", ex::e05_incremental_approx),
        ("e6", ex::e06_tricrit_chain),
        ("e7", ex::e07_tricrit_fork),
        ("e8", ex::e08_heuristics),
        ("e9", ex::e09_fault_injection),
        ("e10", ex::e10_vdd_adaptation),
    ];

    for (name, f) in suite {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == name) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let tables = f();
        let secs = t0.elapsed().as_secs_f64();
        for t in &tables {
            if markdown {
                println!("{}", t.to_markdown());
            } else {
                println!("{t}");
            }
        }
        eprintln!("[{name} done in {secs:.2}s]\n");
    }
}
