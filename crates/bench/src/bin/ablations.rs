//! Prints the ablation tables A1–A4 (the paper's future-work directions).
//!
//! ```text
//! cargo run -p ea-bench --bin ablations --release [-- --md]
//! ```

use ea_bench::ablations;

fn main() {
    let markdown = std::env::args().any(|a| a == "--md");
    for t in ablations::run_all() {
        if markdown {
            println!("{}", t.to_markdown());
        } else {
            println!("{t}");
        }
    }
}
