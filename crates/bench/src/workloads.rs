//! Canonical workloads shared by the experiments and the Criterion
//! benches, so both measure the same instances.

use ea_core::instance::Instance;
use ea_core::platform::Platform;
use ea_core::reliability::ReliabilityModel;
use ea_taskgraph::{generators, Dag};

/// The reliability model used by every TRI-CRIT experiment:
/// `λ₀ = 10⁻⁵`, `d = 3`, speeds in `[1, 2]`, threshold `f_rel = 1.8` —
/// the regime of the literature the paper builds on (Zhu et al.).
pub fn standard_reliability() -> ReliabilityModel {
    ReliabilityModel::typical(1.0, 2.0, 1.8)
}

/// A "hot" variant (λ₀ = 0.01) for Monte-Carlo experiments: failures are
/// frequent enough to measure accurately with 10⁴–10⁵ runs while keeping
/// per-execution probabilities well below 1.
pub fn hot_reliability() -> ReliabilityModel {
    ReliabilityModel::new(0.01, 3.0, 1.0, 2.0, 1.8)
}

/// The mode set used by the discrete-model experiments.
pub fn standard_modes(m: usize) -> Vec<f64> {
    assert!(m >= 2);
    (0..m)
        .map(|k| 1.0 + (k as f64) * 1.0 / (m as f64 - 1.0))
        .collect()
}

/// A random fork instance: source weight 1.5, `n` branches in `[0.5, 2.5)`.
pub fn fork_instance(n: usize, deadline_mult: f64, seed: u64) -> Instance {
    let ws = generators::random_weights(n, 0.5, 2.5, seed);
    let critical = 1.5 / 2.0 + ws.iter().fold(0.0f64, |m, &w| m.max(w)) / 2.0;
    Instance::fork(1.5, &ws, deadline_mult * critical).expect("valid fork instance")
}

/// A random chain of `n` tasks with deadline `mult · Σw / f_max`.
pub fn chain_instance(n: usize, deadline_mult: f64, seed: u64) -> Instance {
    let w = generators::random_weights(n, 0.5, 2.5, seed);
    let d = deadline_mult * w.iter().sum::<f64>() / 2.0;
    Instance::single_chain(&w, d).expect("valid chain instance")
}

/// A layered random DAG mapped by critical-path list scheduling on
/// `p` processors; the deadline is `mult ×` the f_max makespan.
pub fn layered_instance(
    layers: usize,
    width: usize,
    p: usize,
    deadline_mult: f64,
    seed: u64,
) -> Instance {
    let dag = generators::random_layered(layers, width, 0.35, 0.5, 2.5, seed);
    let inst = Instance::mapped_by_list_scheduling(dag, Platform::new(p), 2.0, 1e12)
        .expect("valid layered instance");
    let d = deadline_mult * inst.makespan_at_uniform_speed(2.0);
    inst.with_deadline(d).expect("positive deadline")
}

/// The DAG-family sweep of experiment E8, from chain-like to highly
/// parallel: (label, instance) pairs at the given deadline multiplier.
pub fn e8_families(deadline_mult: f64, seed: u64) -> Vec<(&'static str, Instance)> {
    vec![
        ("chain", chain_instance(24, deadline_mult, seed)),
        (
            "layered w=2",
            layered_instance(12, 2, 2, deadline_mult, seed),
        ),
        (
            "layered w=6",
            layered_instance(4, 6, 6, deadline_mult, seed),
        ),
        ("fork", fork_instance(23, deadline_mult, seed)),
    ]
}

/// An application-shaped DAG for the examples and E2: a Gaussian
/// elimination kernel DAG.
pub fn gauss_dag(b: usize) -> Dag {
    generators::gaussian_elimination(b, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_feasible_at_fmax() {
        let rel = standard_reliability();
        for inst in [
            chain_instance(10, 1.3, 1),
            fork_instance(6, 1.3, 2),
            layered_instance(4, 3, 3, 1.3, 3),
        ] {
            assert!(
                inst.makespan_at_uniform_speed(rel.fmax) <= inst.deadline,
                "instance must be feasible at fmax"
            );
        }
    }

    #[test]
    fn standard_modes_span_1_to_2() {
        let m = standard_modes(5);
        assert_eq!(m.len(), 5);
        assert!((m[0] - 1.0).abs() < 1e-12);
        assert!((m[4] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn e8_families_cover_the_parallelism_axis() {
        let fams = e8_families(1.5, 9);
        assert_eq!(fams.len(), 4);
        let widths: Vec<usize> = fams
            .iter()
            .map(|(_, i)| ea_taskgraph::analysis::width_proxy(i.augmented_dag()))
            .collect();
        assert!(widths[0] <= widths[3], "families ordered by parallelism");
    }
}
