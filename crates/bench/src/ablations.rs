//! Ablations (A1–A3): the paper's future-work directions, measured.
//!
//! * A1 — replication vs. re-execution on forks, across deadline
//!   tightness and spare-processor budgets (paper, Section V).
//! * A2 — list-scheduling policy vs. downstream BI-CRIT energy
//!   (paper, Section V).
//! * A3 — the power exponent α: how the closed-form optimum and the
//!   energy savings shift between the quadratic and cubic models.

use crate::table::{fmt_f, Table};
use crate::workloads;
use ea_core::bicrit::{self, continuous, SolveOptions};
use ea_core::ext::{mapping, power, replication};
use ea_core::instance::Instance;
use ea_core::platform::Platform;
use ea_core::speed::SpeedModel;
use ea_core::tricrit;
use ea_taskgraph::generators;

/// A1 — replication vs re-execution on a fork, sweeping deadline
/// tightness × spare budget.
pub fn a01_replication() -> Vec<Table> {
    let rel = workloads::standard_reliability();
    let ws = generators::random_weights(8, 1.2, 2.2, 3);
    let w0 = 1.0;
    let base = w0 / rel.fmax + ws.iter().fold(0.0f64, |m, &w| m.max(w / rel.fmax));
    let mut t = Table::new(
        "A1: replication vs re-execution on a fork (8 branches)",
        &[
            "D mult",
            "spares",
            "energy",
            "#replicated",
            "#re-executed",
            "vs re-exec only %",
        ],
    );
    for &mult in &[1.25, 1.6, 2.5] {
        let d = mult * base;
        let Ok(reexec_only) = replication::solve_fork(w0, &ws, d, &rel, 0) else {
            continue;
        };
        for &spares in &[0usize, 2, 4, 8] {
            let sol = replication::solve_fork(w0, &ws, d, &rel, spares).expect("feasible");
            let n_rep = sol
                .decisions
                .iter()
                .filter(|dc| dc.strategy == replication::Strategy::Replicate)
                .count();
            let n_re = sol
                .decisions
                .iter()
                .filter(|dc| dc.strategy == replication::Strategy::ReExecute)
                .count();
            t.push(vec![
                fmt_f(mult),
                spares.to_string(),
                fmt_f(sol.energy),
                n_rep.to_string(),
                n_re.to_string(),
                format!("{:+.2}", 100.0 * (sol.energy / reexec_only.energy - 1.0)),
            ]);
        }
    }
    vec![t]
}

/// A2 — mapping policy vs downstream CONTINUOUS BI-CRIT energy.
pub fn a02_mapping() -> Vec<Table> {
    let mut t = Table::new(
        "A2: list-scheduling policy vs downstream BI-CRIT energy (3 procs)",
        &[
            "DAG",
            "policy",
            "makespan@fmax",
            "E continuous",
            "E vs EF %",
        ],
    );
    let fmax = 2.0;
    let dags: Vec<(&str, ea_taskgraph::Dag)> = vec![
        (
            "layered",
            generators::random_layered(6, 4, 0.3, 0.5, 2.0, 11),
        ),
        ("gauss b=4", generators::gaussian_elimination(4, 1.0)),
        ("stencil 5×5", generators::stencil_wavefront(5, 5, 1.0)),
    ];
    for (label, dag) in dags {
        let mut e_ef = None;
        for (pname, policy) in [
            ("earliest-finish", mapping::Policy::EarliestFinish),
            ("load-balance", mapping::Policy::LoadBalance),
            ("slack-preserving", mapping::Policy::SlackPreserving),
        ] {
            let (m, ms) = mapping::schedule_with_policy(&dag, Platform::new(3), fmax, policy);
            // Common deadline across policies: 1.5× the EF makespan.
            let d_ref = match e_ef {
                None => 1.5 * ms,
                Some((_, d)) => d,
            };
            let Ok(inst) = Instance::new(dag.clone(), Platform::new(3), m, d_ref) else {
                continue;
            };
            let model = SpeedModel::continuous(0.5, fmax);
            let Ok(sol) = bicrit::solve(&inst, &model, &SolveOptions::default()) else {
                t.push(vec![
                    label.into(),
                    pname.into(),
                    fmt_f(ms),
                    "infeasible".into(),
                    "—".into(),
                ]);
                continue;
            };
            let base = match e_ef {
                None => {
                    e_ef = Some((sol.energy, d_ref));
                    sol.energy
                }
                Some((e, _)) => e,
            };
            t.push(vec![
                label.into(),
                pname.into(),
                fmt_f(ms),
                fmt_f(sol.energy),
                format!("{:+.2}", 100.0 * (sol.energy / base - 1.0)),
            ]);
        }
    }
    vec![t]
}

/// A3 — the power exponent α ∈ [2, 3]: closed-form energies and the
/// α-sensitivity of the DVFS savings.
pub fn a03_power_exponent() -> Vec<Table> {
    let mut t = Table::new(
        "A3: power exponent α — SP closed-form energy and savings vs all-fmax",
        &["α", "E*(D = 1.5·CP)", "E all-fmax", "saved %"],
    );
    let tree = generators::random_sp_tree(24, 0.5, 2.5, 5);
    let dag = tree.to_dag();
    let fmax = 2.0f64;
    let cp = ea_taskgraph::analysis::critical_path_length(&dag, dag.weights()) / fmax;
    let d = 1.5 * cp * fmax; // deadline in the same units as sp_optimal
    for &alpha in &[2.0, 2.25, 2.5, 2.75, 3.0] {
        let e_opt = power::sp_optimal_energy(&tree, d, alpha);
        let e_fmax: f64 = dag
            .weights()
            .iter()
            .map(|w| w * fmax.powf(alpha - 1.0))
            .sum();
        t.push(vec![
            fmt_f(alpha),
            fmt_f(e_opt),
            fmt_f(e_fmax),
            format!("{:.1}", 100.0 * (1.0 - e_opt / e_fmax)),
        ]);
    }

    let mut t2 = Table::new(
        "A3b: generalised fork theorem sanity (α = 3 equals the paper's formula)",
        &["α", "E fork(α)", "E fork theorem (α=3)"],
    );
    let ws = [1.0, 3.0, 2.0];
    let th = continuous::fork_theorem(2.0, &ws, 10.0, 1e-9, 1e9)
        .expect("feasible")
        .energy;
    for &alpha in &[2.0, 2.5, 3.0] {
        t2.push(vec![
            fmt_f(alpha),
            fmt_f(power::fork_energy(2.0, &ws, 10.0, alpha)),
            fmt_f(th),
        ]);
    }
    vec![t, t2]
}

/// A4 — checkpointing vs task-level re-execution on chains (Section II's
/// third fault-tolerance mechanism).
pub fn a04_checkpoint() -> Vec<Table> {
    use ea_core::ext::checkpoint::{solve_chain, CheckpointCost};
    // A hot model so reliability actually constrains segment lengths.
    let rel = ea_core::reliability::ReliabilityModel::new(0.01, 3.0, 1.0, 2.0, 1.8);
    let w = generators::random_weights(20, 0.5, 1.5, 13);
    let total: f64 = w.iter().sum();
    let mut t = Table::new(
        "A4: checkpointing on a chain (worst-case semantics) vs re-execution",
        &[
            "D mult",
            "ckpt cost",
            "segments",
            "speed",
            "E ckpt (worst)",
            "E re-exec (worst)",
        ],
    );
    for &mult in &[2.5, 3.5] {
        let d = mult * total / rel.fmax;
        for &c in &[0.05, 0.4] {
            let cost = CheckpointCost { time: c, energy: c };
            let Ok(plan) = solve_chain(&w, d, &rel, &cost) else {
                t.push(vec![
                    fmt_f(mult),
                    fmt_f(c),
                    "—".into(),
                    "—".into(),
                    "infeasible".into(),
                    "—".into(),
                ]);
                continue;
            };
            let re = tricrit::chain::solve_greedy(&w, d, &rel)
                .map(|s| fmt_f(s.energy))
                .unwrap_or_else(|_| "infeasible".into());
            t.push(vec![
                fmt_f(mult),
                fmt_f(c),
                plan.segments.len().to_string(),
                format!("{:.3}", plan.speed),
                fmt_f(plan.worst_energy),
                re,
            ]);
        }
    }
    vec![t]
}

/// Runs all ablations.
pub fn run_all() -> Vec<Table> {
    let mut out = Vec::new();
    out.extend(a01_replication());
    out.extend(a02_mapping());
    out.extend(a03_power_exponent());
    out.extend(a04_checkpoint());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a01_has_rows_and_spares_help_or_tie() {
        let t = &a01_replication()[0];
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let delta: f64 = row[5].parse().expect("delta cell");
            assert!(delta <= 1e-6, "spares must never increase energy: {delta}");
        }
    }

    #[test]
    fn a03_alpha3_matches_theorem() {
        let t2 = &a03_power_exponent()[1];
        let last = t2.rows.last().expect("rows");
        assert_eq!(last[1], last[2], "α = 3 must reproduce the fork theorem");
    }

    #[test]
    fn a04_runs() {
        let t = &a04_checkpoint()[0];
        assert!(!t.rows.is_empty());
    }
}
