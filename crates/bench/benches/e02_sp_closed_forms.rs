//! E2 bench: SP recognition + equivalent-weight closed form vs the convex
//! solver on series-parallel DAGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_convex::BarrierOptions;
use ea_core::bicrit::continuous;
use ea_taskgraph::{analysis, generators, SpTree};
use std::hint::black_box;
use std::time::Duration;

fn bench_sp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e02_sp");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);
    for &n in &[16usize, 64, 256] {
        let tree = generators::random_sp_tree(n, 0.5, 2.5, 7);
        let dag = tree.to_dag();
        let d = 1.5 * analysis::critical_path_length(&dag, dag.weights());
        group.bench_with_input(BenchmarkId::new("recognise_and_solve", n), &n, |b, _| {
            b.iter(|| {
                let t = SpTree::from_dag(black_box(&dag)).expect("SP");
                continuous::sp_optimal(&t, d)
            })
        });
    }
    // The numerical reference at a single comparable size.
    let tree = generators::random_sp_tree(24, 0.5, 2.5, 7);
    let dag = tree.to_dag();
    let d = 1.5 * analysis::critical_path_length(&dag, dag.weights());
    group.bench_function("convex_reference_n24", |b| {
        b.iter(|| {
            continuous::solve_general(black_box(&dag), d, 1e-6, 1e6, &BarrierOptions::default())
                .expect("feasible")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sp);
criterion_main!(benches);
