//! A1 bench: the replication-aware fork solver across spare budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_bench::workloads;
use ea_core::ext::replication;
use ea_taskgraph::generators;
use std::hint::black_box;
use std::time::Duration;

fn bench_replication(c: &mut Criterion) {
    let rel = workloads::standard_reliability();
    let ws = generators::random_weights(8, 1.2, 2.2, 3);
    let base = 1.0 / rel.fmax + ws.iter().fold(0.0f64, |m, &w| m.max(w / rel.fmax));
    let d = 1.6 * base;
    let mut group = c.benchmark_group("a01_replication");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &spares in &[0usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("spares", spares), &spares, |b, &s| {
            b.iter(|| replication::solve_fork(black_box(1.0), &ws, d, &rel, s).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
