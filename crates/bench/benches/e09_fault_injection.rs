//! E9 bench: the fault-injection simulator — single-run cost and the
//! parallel Monte-Carlo harness throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_bench::workloads;
use ea_core::platform::Mapping;
use ea_core::schedule::{Schedule, TaskSchedule};
use ea_sim::{run_monte_carlo, simulate};
use ea_taskgraph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_sim(c: &mut Criterion) {
    let rel = workloads::hot_reliability();
    let mut group = c.benchmark_group("e09_fault_injection");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &n in &[10usize, 100, 1000] {
        let w = generators::random_weights(n, 0.5, 1.5, 21);
        let dag = generators::chain(&w);
        let mapping = Mapping::single_processor((0..n).collect());
        let sched = Schedule {
            tasks: (0..n).map(|_| TaskSchedule::twice(1.5, 1.5)).collect(),
        };
        group.bench_with_input(BenchmarkId::new("single_run", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| simulate(black_box(&dag), &mapping, &sched, &rel, &mut rng))
        });
    }
    let n = 20usize;
    let w = generators::random_weights(n, 0.5, 1.5, 21);
    let dag = generators::chain(&w);
    let mapping = Mapping::single_processor((0..n).collect());
    let sched = Schedule::uniform(n, 1.5);
    for &runs in &[1000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("monte_carlo", runs), &runs, |b, &runs| {
            b.iter(|| run_monte_carlo(black_box(&dag), &mapping, &sched, &rel, runs, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
