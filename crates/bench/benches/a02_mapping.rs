//! A2 bench: the three list-scheduling placement policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_core::ext::mapping::{schedule_with_policy, Policy};
use ea_core::platform::Platform;
use ea_taskgraph::generators;
use std::hint::black_box;
use std::time::Duration;

fn bench_mapping(c: &mut Criterion) {
    let dag = generators::gaussian_elimination(6, 1.0);
    let mut group = c.benchmark_group("a02_mapping");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);
    for (name, policy) in [
        ("earliest_finish", Policy::EarliestFinish),
        ("load_balance", Policy::LoadBalance),
        ("slack_preserving", Policy::SlackPreserving),
    ] {
        group.bench_with_input(BenchmarkId::new("policy", name), &policy, |b, &p| {
            b.iter(|| schedule_with_policy(black_box(&dag), Platform::new(4), 2.0, p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
