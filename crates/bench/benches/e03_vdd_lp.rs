//! E3 bench: the VDD-HOPPING linear program — polynomial scaling in the
//! task count and the mode count (the paper's Section IV positive result).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_bench::workloads;
use ea_core::bicrit::vdd;
use std::hint::black_box;
use std::time::Duration;

fn bench_vdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_vdd_lp");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &(layers, width) in &[(4usize, 3usize), (6, 4), (8, 5)] {
        let inst = workloads::layered_instance(layers, width, width, 1.6, 42);
        let modes = workloads::standard_modes(5);
        let n = inst.n_tasks();
        group.bench_with_input(BenchmarkId::new("tasks", n), &n, |b, _| {
            b.iter(|| {
                vdd::solve_on_dag(black_box(inst.augmented_dag()), inst.deadline, &modes)
                    .expect("feasible")
            })
        });
    }
    let inst = workloads::layered_instance(5, 4, 4, 1.6, 42);
    for &m in &[3usize, 5, 9] {
        let modes = workloads::standard_modes(m);
        group.bench_with_input(BenchmarkId::new("modes", m), &m, |b, _| {
            b.iter(|| {
                vdd::solve_on_dag(black_box(inst.augmented_dag()), inst.deadline, &modes)
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vdd);
criterion_main!(benches);
