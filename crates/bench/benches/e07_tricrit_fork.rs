//! E7 bench: the polynomial TRI-CRIT fork algorithm vs the exponential
//! brute force.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_bench::workloads;
use ea_core::tricrit::fork;
use ea_taskgraph::generators;
use std::hint::black_box;
use std::time::Duration;

fn bench_fork(c: &mut Criterion) {
    let rel = workloads::standard_reliability();
    let mut group = c.benchmark_group("e07_tricrit_fork");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &n in &[16usize, 64, 256] {
        let ws = generators::random_weights(n, 0.5, 2.5, 5);
        let base = 1.5 / rel.fmax + ws.iter().fold(0.0f64, |m, &w| m.max(w / rel.fmax));
        let d = 2.5 * base;
        group.bench_with_input(BenchmarkId::new("polynomial", n), &n, |b, _| {
            b.iter(|| fork::solve(black_box(1.5), &ws, d, &rel).expect("feasible"))
        });
    }
    for &n in &[6usize, 10] {
        let ws = generators::random_weights(n, 0.5, 2.5, 5);
        let base = 1.5 / rel.fmax + ws.iter().fold(0.0f64, |m, &w| m.max(w / rel.fmax));
        let d = 2.5 * base;
        group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
            b.iter(|| fork::solve_brute_force(black_box(1.5), &ws, d, &rel, 100).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fork);
criterion_main!(benches);
