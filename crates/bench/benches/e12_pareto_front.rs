//! E12 bench: Pareto-front tracing, warm-started vs cold per-point
//! resolves.
//!
//! One non-series-parallel mapped instance (so CONTINUOUS exercises the
//! barrier, not the closed form) is traced over a 12-point deadline grid
//! under three models, once with warm starts (barrier restarts from the
//! previous interior iterate, B&B seeded with the previous incumbent,
//! INCREMENTAL reusing its accuracy bracketing) and once with every
//! point solved cold. The warm/cold time ratio is the headline number.
//! INCREMENTAL shows the largest gap (≈ 4× here: its cold path pays a
//! tight rough solve per point that warm starting skips entirely);
//! CONTINUOUS saves the early barrier stages; exact DISCRETE saves the
//! least — its exploration is bound-limited (the optimality *proof*
//! visits every node the LP bound cannot close regardless of the
//! incumbent), so the seeded incumbent trims only ~10% of nodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_core::bicrit::pareto::{trace_front, FrontOptions};
use ea_core::instance::Instance;
use ea_core::platform::Platform;
use ea_core::speed::SpeedModel;
use ea_taskgraph::generators;
use std::hint::black_box;
use std::time::Duration;

fn bench_instance() -> Instance {
    let dag = generators::random_layered(4, 3, 0.5, 0.5, 2.0, 11);
    Instance::mapped_by_list_scheduling(dag, Platform::new(2), 2.0, f64::MAX)
        .expect("mapping succeeds")
}

fn bench_pareto_front(c: &mut Criterion) {
    let inst = bench_instance();
    let models = [
        ("continuous", SpeedModel::continuous(1.0, 2.0)),
        (
            "discrete",
            SpeedModel::discrete(vec![1.0, 1.25, 1.5, 1.75, 2.0]),
        ),
        ("incremental", SpeedModel::incremental(1.0, 2.0, 0.25)),
    ];
    let base = FrontOptions::default()
        .with_initial_points(12)
        .with_max_points(12);

    let mut group = c.benchmark_group("e12_pareto_front");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for (name, model) in &models {
        for (mode, warm) in [("warm", true), ("cold", false)] {
            let opts = base.clone().with_warm_start(warm);
            group.bench_with_input(BenchmarkId::new(*name, mode), &opts, |b, opts| {
                b.iter(|| trace_front(black_box(&inst), model, opts).expect("front traces"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pareto_front);
criterion_main!(benches);
