//! E4 bench: exact DISCRETE B&B on 2-PARTITION gadget instances — the
//! exponential wall (NP-completeness made measurable), and how much the
//! VDD LP relaxation bound flattens it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_core::bicrit::discrete::{self, BnbBound};
use ea_core::reductions;
use std::hint::black_box;
use std::time::Duration;

fn gadget(n: usize) -> reductions::TwoPartitionGadget {
    let a: Vec<u64> = (0..n as u64).map(|i| 2 * i + 3).collect(); // odd sum: no-instance
    reductions::two_partition_gadget(&a).expect("valid gadget")
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("e04_discrete_exact");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &n in &[8usize, 10, 12] {
        let g = gadget(n);
        group.bench_with_input(BenchmarkId::new("bnb_simple", n), &n, |b, _| {
            b.iter(|| {
                discrete::solve_bnb(
                    black_box(g.instance.augmented_dag()),
                    g.instance.deadline,
                    &g.modes,
                    BnbBound::Simple,
                )
                .expect("feasible")
            })
        });
    }
    for &n in &[8usize, 12] {
        let g = gadget(n);
        group.bench_with_input(BenchmarkId::new("bnb_lp_bound", n), &n, |b, _| {
            b.iter(|| {
                discrete::solve_bnb(
                    black_box(g.instance.augmented_dag()),
                    g.instance.deadline,
                    &g.modes,
                    BnbBound::VddRelaxation,
                )
                .expect("feasible")
            })
        });
    }
    // The pseudo-polynomial DP on the same family: polynomial in D.
    for &n in &[8usize, 12] {
        let a: Vec<u64> = (0..n as u64).map(|i| 2 * i + 3).collect();
        let durations: Vec<Vec<u64>> = a.iter().map(|&x| vec![2 * x, x]).collect();
        let energies: Vec<Vec<f64>> = a.iter().map(|&x| vec![x as f64, 4.0 * x as f64]).collect();
        let tmax = 3 * a.iter().sum::<u64>() / 2;
        group.bench_with_input(BenchmarkId::new("chain_dp", n), &n, |b, _| {
            b.iter(|| {
                discrete::chain_dp_integral(black_box(&durations), &energies, tmax)
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
