//! A3 bench: the generalised-α equivalent-weight algebra (and the
//! checkpoint DP from A4, which shares the ablation suite).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_core::ext::checkpoint::{solve_chain, CheckpointCost};
use ea_core::ext::power;
use ea_core::reliability::ReliabilityModel;
use ea_taskgraph::generators;
use std::hint::black_box;
use std::time::Duration;

fn bench_power_and_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("a03_power_exponent");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);
    for &n in &[64usize, 256] {
        let tree = generators::random_sp_tree(n, 0.5, 2.5, 5);
        group.bench_with_input(BenchmarkId::new("sp_alpha_speeds", n), &n, |b, _| {
            b.iter(|| power::sp_optimal_speeds(black_box(&tree), 10.0, 2.5))
        });
    }
    let rel = ReliabilityModel::new(0.01, 3.0, 1.0, 2.0, 1.8);
    for &n in &[16usize, 64] {
        let w = generators::random_weights(n, 0.5, 1.5, 13);
        let d = 3.0 * w.iter().sum::<f64>() / rel.fmax;
        let cost = CheckpointCost {
            time: 0.1,
            energy: 0.1,
        };
        group.bench_with_input(BenchmarkId::new("checkpoint_dp", n), &n, |b, _| {
            b.iter(|| solve_chain(black_box(&w), d, &rel, &cost).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_power_and_checkpoint);
criterion_main!(benches);
