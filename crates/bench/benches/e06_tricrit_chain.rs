//! E6 bench: TRI-CRIT chain — the polynomial greedy strategy vs the
//! exponential exhaustive optimum (NP-hardness of the subset choice).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_bench::workloads;
use ea_core::tricrit::chain;
use ea_taskgraph::generators;
use std::hint::black_box;
use std::time::Duration;

fn bench_chain(c: &mut Criterion) {
    let rel = workloads::standard_reliability();
    let mut group = c.benchmark_group("e06_tricrit_chain");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for &n in &[16usize, 64, 128] {
        let w = generators::random_weights(n, 0.5, 2.5, 99);
        let d = 2.0 * w.iter().sum::<f64>() / rel.fmax;
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| chain::solve_greedy(black_box(&w), d, &rel).expect("feasible"))
        });
    }
    for &n in &[8usize, 12, 14] {
        let w = generators::random_weights(n, 0.5, 2.5, 99);
        let d = 2.0 * w.iter().sum::<f64>() / rel.fmax;
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &n, |b, _| {
            b.iter(|| chain::solve_exhaustive(black_box(&w), d, &rel).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);
