//! E5 bench: the INCREMENTAL approximation — polynomial in the instance
//! size and in K (the paper's claim), across grid resolutions δ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_bench::workloads;
use ea_core::bicrit::incremental;
use std::hint::black_box;
use std::time::Duration;

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("e05_incremental");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    let inst = workloads::layered_instance(5, 3, 3, 1.7, 7);
    for &delta in &[0.5, 0.1, 0.02] {
        group.bench_with_input(
            BenchmarkId::new("delta", format!("{delta}")),
            &delta,
            |b, &delta| {
                b.iter(|| {
                    incremental::solve_on_dag(
                        black_box(inst.augmented_dag()),
                        inst.deadline,
                        1.0,
                        2.0,
                        delta,
                        10,
                    )
                    .expect("feasible")
                })
            },
        );
    }
    for &k in &[1usize, 100, 10000] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                incremental::solve_on_dag(
                    black_box(inst.augmented_dag()),
                    inst.deadline,
                    1.0,
                    2.0,
                    0.1,
                    k,
                )
                .expect("feasible")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
