//! E1 bench: the fork closed form (O(n)) vs the convex solver (O(n³) per
//! Newton step) on CONTINUOUS BI-CRIT. Regenerates the timing columns of
//! the E1 table; the energy agreement itself is asserted in unit tests
//! and by `--bin experiments`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_bench::workloads;
use ea_convex::BarrierOptions;
use ea_core::bicrit::continuous;
use ea_taskgraph::generators;
use std::hint::black_box;
use std::time::Duration;

fn bench_fork(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_fork");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);
    for &n in &[8usize, 32, 128] {
        let ws = generators::random_weights(n, 0.5, 2.5, n as u64);
        let d = 3.0 * (1.5 + 2.5) / 2.0;
        group.bench_with_input(BenchmarkId::new("closed_form", n), &n, |b, _| {
            b.iter(|| {
                continuous::fork_theorem(black_box(1.5), black_box(&ws), d, 1e-6, 2.0)
                    .expect("feasible")
            })
        });
    }
    for &n in &[8usize, 32] {
        let inst = workloads::fork_instance(n, 3.0, n as u64);
        group.bench_with_input(BenchmarkId::new("convex_solver", n), &n, |b, _| {
            b.iter(|| {
                continuous::solve_general(
                    black_box(inst.augmented_dag()),
                    inst.deadline,
                    1e-6,
                    2.0,
                    &BarrierOptions::default(),
                )
                .expect("feasible")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fork);
criterion_main!(benches);
