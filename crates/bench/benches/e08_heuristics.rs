//! E8 bench: the two TRI-CRIT heuristic families and their best-of across
//! the DAG-family axis (chain-like → highly parallel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_bench::workloads;
use ea_core::tricrit::heuristics;
use std::hint::black_box;
use std::time::Duration;

fn bench_heuristics(c: &mut Criterion) {
    let rel = workloads::standard_reliability();
    let mut group = c.benchmark_group("e08_heuristics");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for (label, inst) in workloads::e8_families(1.8, 11) {
        group.bench_with_input(BenchmarkId::new("heuristic_a", label), &(), |b, _| {
            b.iter(|| heuristics::heuristic_a(black_box(&inst), &rel).expect("feasible"))
        });
        group.bench_with_input(BenchmarkId::new("heuristic_b", label), &(), |b, _| {
            b.iter(|| heuristics::heuristic_b(black_box(&inst), &rel).expect("feasible"))
        });
        group.bench_with_input(BenchmarkId::new("best_of", label), &(), |b, _| {
            b.iter(|| heuristics::best_of(black_box(&inst), &rel).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
