//! E11 bench: scenario-engine batch throughput across rayon thread
//! counts — the parallel-scaling anchor of the ROADMAP's batch layer.
//!
//! A 36-scenario grid (2 DAG families × 3 speed models × 2 deadlines ×
//! 3 seeds) is evaluated by `run_batch` with 1, 2, and 4 worker threads;
//! the wall-clock ratio between the 1- and 4-thread groups makes the
//! rayon fan-out visible (`scenarios/sec = 36 / mean time`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_core::speed::SpeedModel;
use ea_engine::{run_batch, BatchOptions, DagSpec, Scenario};
use std::hint::black_box;
use std::time::Duration;

fn batch_scenarios() -> Vec<Scenario> {
    let specs = [
        DagSpec::Chain { n: 16 },
        DagSpec::Layered {
            layers: 4,
            width: 3,
        },
    ];
    let models = [
        SpeedModel::continuous(1.0, 2.0),
        SpeedModel::vdd_hopping(vec![1.0, 1.5, 2.0]),
        SpeedModel::incremental(1.0, 2.0, 0.25),
    ];
    Scenario::grid(&specs, &models, &[1.3, 1.7], &[0, 1, 2])
}

fn bench_batch_engine(c: &mut Criterion) {
    let scenarios = batch_scenarios();
    assert!(
        scenarios.len() >= 32,
        "acceptance batch must be ≥ 32 scenarios"
    );
    let opts = BatchOptions::default();

    let mut group = c.benchmark_group("e11_batch_engine");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        // The vendored rayon reads RAYON_NUM_THREADS per scatter call, so
        // the worker count can be pinned per measurement.
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| run_batch(black_box(&scenarios), &opts))
        });
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    group.finish();
}

criterion_group!(benches, bench_batch_engine);
criterion_main!(benches);
