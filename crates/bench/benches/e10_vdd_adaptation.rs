//! E10 bench: adapting a continuous TRI-CRIT solution to VDD-HOPPING mode
//! sets of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ea_bench::workloads;
use ea_core::speed::SpeedModel;
use ea_core::tricrit::{chain, vdd};
use ea_taskgraph::generators;
use std::hint::black_box;
use std::time::Duration;

fn bench_adaptation(c: &mut Criterion) {
    let rel = workloads::standard_reliability();
    let w = generators::random_weights(32, 0.5, 2.5, 31);
    let d = 2.0 * w.iter().sum::<f64>() / rel.fmax;
    let cont = chain::solve_greedy(&w, d, &rel).expect("feasible");
    let dag = generators::chain(&w);

    let mut group = c.benchmark_group("e10_vdd_adaptation");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);
    for &m in &[2usize, 5, 17] {
        let model = SpeedModel::vdd_hopping(workloads::standard_modes(m));
        group.bench_with_input(BenchmarkId::new("modes", m), &m, |b, _| {
            b.iter(|| vdd::adapt(black_box(&dag), &cont, &rel, &model).expect("adaptable"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adaptation);
criterion_main!(benches);
