//! LP model builder.

use crate::simplex::{self, LpOutcome};

/// Comparison direction of a row constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// A row constraint: sparse coefficients, direction and right-hand side.
#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub coeffs: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A linear program `min c·x` subject to row constraints and `x ≥ 0`.
///
/// ```
/// use ea_lp::{LpProblem, Cmp, LpOutcome};
/// // min x0 + 2 x1   s.t.  x0 + x1 ≥ 1,  x1 ≤ 0.4,  x ≥ 0
/// let mut lp = LpProblem::new(2);
/// lp.set_objective(0, 1.0);
/// lp.set_objective(1, 2.0);
/// lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Ge, 1.0);
/// lp.add_constraint(&[(1, 1.0)], Cmp::Le, 0.4);
/// match lp.solve() {
///     LpOutcome::Optimal(sol) => {
///         assert!((sol.objective - 1.0).abs() < 1e-9); // x0 = 1, x1 = 0
///     }
///     other => panic!("unexpected outcome {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct LpProblem {
    pub(crate) n_vars: usize,
    pub(crate) objective: Vec<f64>,
    pub(crate) rows: Vec<Row>,
}

impl LpProblem {
    /// A minimisation problem over `n_vars` non-negative variables with a
    /// zero objective (set coefficients with [`LpProblem::set_objective`]).
    pub fn new(n_vars: usize) -> Self {
        LpProblem {
            n_vars,
            objective: vec![0.0; n_vars],
            rows: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of row constraints.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficient of variable `var`.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.n_vars, "objective variable out of range");
        self.objective[var] = coeff;
    }

    /// Adds a constraint `Σ coeffs·x  cmp  rhs`. Repeated variable indices
    /// within one row are summed.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], cmp: Cmp, rhs: f64) {
        for &(v, _) in coeffs {
            assert!(v < self.n_vars, "constraint variable {v} out of range");
        }
        assert!(rhs.is_finite(), "rhs must be finite");
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        for &(v, c) in coeffs {
            if let Some(slot) = merged.iter_mut().find(|(mv, _)| *mv == v) {
                slot.1 += c;
            } else {
                merged.push((v, c));
            }
        }
        self.rows.push(Row {
            coeffs: merged,
            cmp,
            rhs,
        });
    }

    /// Solves with the two-phase primal simplex.
    pub fn solve(&self) -> LpOutcome {
        simplex::solve(self)
    }

    /// Evaluates the objective at a point (for cross-checking solutions).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_vars);
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Maximum constraint violation of `x` (0 means feasible), including
    /// non-negativity.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_vars);
        let mut worst = x.iter().fold(0.0f64, |m, &v| m.max(-v));
        for row in &self.rows {
            let lhs: f64 = row.coeffs.iter().map(|&(v, c)| c * x[v]).sum();
            let viol = match row.cmp {
                Cmp::Le => lhs - row.rhs,
                Cmp::Ge => row.rhs - lhs,
                Cmp::Eq => (lhs - row.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_merges_duplicate_coeffs() {
        let mut lp = LpProblem::new(2);
        lp.add_constraint(&[(0, 1.0), (0, 2.0), (1, 1.0)], Cmp::Le, 5.0);
        assert_eq!(lp.rows[0].coeffs, vec![(0, 3.0), (1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_variable() {
        let mut lp = LpProblem::new(1);
        lp.add_constraint(&[(3, 1.0)], Cmp::Le, 1.0);
    }

    #[test]
    fn violation_measure() {
        let mut lp = LpProblem::new(2);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Ge, 2.0);
        assert!((lp.max_violation(&[1.0, 1.0]) - 0.0).abs() < 1e-12);
        assert!((lp.max_violation(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert!((lp.max_violation(&[-1.0, 3.0]) - 1.0).abs() < 1e-12);
    }
}
