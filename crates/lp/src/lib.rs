//! # ea-lp
//!
//! A self-contained linear-programming solver: problem builder
//! ([`LpProblem`]) plus a dense two-phase primal simplex ([`simplex`]).
//!
//! The paper's headline polynomial-complexity result (BI-CRIT under the
//! VDD-HOPPING model is in P, Section IV) is *constructive*: it exhibits a
//! linear program. No LP crate is available offline, so this crate
//! implements the solver from scratch — it is a first-class substrate of
//! the reproduction, exercised both directly (`ea-core::bicrit::vdd`) and
//! as the relaxation oracle inside the DISCRETE branch-and-bound solver.
//!
//! Scope: minimisation over `x ≥ 0` with `≤ / = / ≥` row constraints —
//! exactly the shape of the VDD-HOPPING program. Two-phase method with
//! Dantzig pricing and automatic fallback to Bland's rule for anti-cycling.

pub mod problem;
pub mod simplex;

pub use problem::{Cmp, LpProblem};
pub use simplex::{LpOutcome, LpSolution, SimplexError};
