//! Two-phase dense primal simplex.
//!
//! Standard textbook construction: the problem is brought to equational
//! form with slack/surplus variables, phase 1 minimises the sum of
//! artificial variables to find a basic feasible solution, phase 2
//! optimises the true objective. Pricing is Dantzig's rule with an
//! automatic switch to Bland's rule after a stall, which guarantees
//! termination on degenerate instances.

use crate::problem::{Cmp, LpProblem};

/// Numerical tolerance for pivoting and feasibility decisions.
const EPS: f64 = 1e-9;
/// Iterations of non-improvement before switching to Bland's rule.
const STALL_LIMIT: usize = 200;
/// Hard iteration cap (defensive; Bland guarantees finiteness well below).
const MAX_ITER: usize = 2_000_000;

/// A primal solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal objective value (minimisation).
    pub objective: f64,
    /// Optimal point, one entry per problem variable.
    pub x: Vec<f64>,
    /// Simplex pivot count (phases 1 + 2) — used by the polynomial-scaling
    /// experiment E3.
    pub pivots: usize,
}

/// Outcome of a solve.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// Finite optimum found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The iteration cap was hit (never observed in practice; reported
    /// rather than panicking so callers can degrade gracefully).
    Stalled,
}

impl LpOutcome {
    /// Unwraps the optimal solution, panicking otherwise (test helper).
    pub fn expect_optimal(self, msg: &str) -> LpSolution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("{msg}: {other:?}"),
        }
    }

    /// The optimal solution if any.
    pub fn optimal(self) -> Option<LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// Errors surfaced by lower-level tableau operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimplexError {
    /// Pivot element too small — indicates a modelling/numeric problem.
    BadPivot { row: usize, col: usize },
}

impl std::fmt::Display for SimplexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimplexError::BadPivot { row, col } => write!(f, "bad pivot at ({row},{col})"),
        }
    }
}

impl std::error::Error for SimplexError {}

/// Dense simplex tableau in equational form.
struct Tableau {
    /// rows × (cols+1); last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length cols+1; last entry is −value.
    z: Vec<f64>,
    /// Basis: for each row, the column index of its basic variable.
    basis: Vec<usize>,
    n_cols: usize,
    pivots: usize,
}

impl Tableau {
    fn pivot(&mut self, r: usize, c: usize) {
        let piv = self.a[r][c];
        debug_assert!(piv.abs() > EPS, "pivot too small");
        let inv = 1.0 / piv;
        for v in self.a[r].iter_mut() {
            *v *= inv;
        }
        let (pr, rows) = {
            let row = self.a[r].clone();
            (row, &mut self.a)
        };
        for (ri, row) in rows.iter_mut().enumerate() {
            if ri == r {
                continue;
            }
            let f = row[c];
            if f == 0.0 {
                continue;
            }
            for (v, p) in row.iter_mut().zip(&pr) {
                *v -= f * p;
            }
            row[c] = 0.0; // exact zero to fight drift
        }
        let f = self.z[c];
        if f != 0.0 {
            for (v, p) in self.z.iter_mut().zip(&pr) {
                *v -= f * p;
            }
            self.z[c] = 0.0;
        }
        self.basis[r] = c;
        self.pivots += 1;
    }

    /// Runs the simplex loop on the current objective row.
    /// Returns false if unbounded.
    fn optimise(&mut self) -> Option<bool> {
        let mut stall = 0usize;
        let mut best = f64::INFINITY;
        for _ in 0..MAX_ITER {
            let bland = stall > STALL_LIMIT;
            // Entering column: most negative reduced cost (Dantzig) or the
            // first negative (Bland).
            let mut enter: Option<usize> = None;
            let mut best_rc = -EPS;
            for c in 0..self.n_cols {
                let rc = self.z[c];
                if rc < -EPS {
                    if bland {
                        enter = Some(c);
                        break;
                    }
                    if rc < best_rc {
                        best_rc = rc;
                        enter = Some(c);
                    }
                }
            }
            let Some(c) = enter else {
                return Some(true); // optimal
            };
            // Leaving row: minimum ratio; Bland tie-break on basic variable
            // index.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.a.len() {
                let coef = self.a[r][c];
                if coef > EPS {
                    let ratio = self.a[r][self.n_cols] / coef;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|lr| self.basis[r] < self.basis[lr]));
                    if leave.is_none() || better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(r) = leave else {
                return Some(false); // unbounded
            };
            self.pivot(r, c);
            let val = -self.z[self.n_cols];
            if val < best - EPS {
                best = val;
                stall = 0;
            } else {
                stall += 1;
            }
        }
        None // iteration cap
    }

    fn value(&self) -> f64 {
        -self.z[self.n_cols]
    }
}

/// Solves an [`LpProblem`] with the two-phase method.
pub fn solve(lp: &LpProblem) -> LpOutcome {
    let m = lp.rows.len();
    let n = lp.n_vars;

    // Column layout: [problem vars | slack/surplus | artificials].
    let mut n_slack = 0usize;
    for row in &lp.rows {
        if row.cmp != Cmp::Eq {
            n_slack += 1;
        }
    }
    // Artificials are added per row lazily; at most one per row.
    let mut cols = n + n_slack;
    let mut art_cols: Vec<Option<usize>> = vec![None; m];

    let mut a: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n;

    // First pass: lay out rows with slack/surplus and normalise rhs ≥ 0.
    for (ri, row) in lp.rows.iter().enumerate() {
        let mut dense = vec![0.0; cols + 1];
        for &(v, cf) in &row.coeffs {
            dense[v] += cf;
        }
        let mut rhs = row.rhs;
        let mut cmp = row.cmp;
        if rhs < 0.0 {
            for v in dense.iter_mut() {
                *v = -*v;
            }
            rhs = -rhs;
            cmp = match cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
        match cmp {
            Cmp::Le => {
                dense[slack_idx] = 1.0;
                basis[ri] = slack_idx; // slack starts basic, rhs ≥ 0 ⇒ feasible
                slack_idx += 1;
            }
            Cmp::Ge => {
                dense[slack_idx] = -1.0; // surplus
                slack_idx += 1;
                art_cols[ri] = Some(0); // placeholder, resolved below
            }
            Cmp::Eq => {
                art_cols[ri] = Some(0);
            }
        }
        dense[cols] = rhs;
        a.push(dense);
    }

    // Allocate artificial columns.
    let n_art = art_cols.iter().filter(|c| c.is_some()).count();
    let total = cols + n_art;
    let mut next_art = cols;
    for row_vec in a.iter_mut() {
        let rhs = row_vec.pop().expect("rhs present");
        row_vec.resize(total, 0.0);
        row_vec.push(rhs);
    }
    for (ri, slot) in art_cols.iter_mut().enumerate() {
        if slot.is_some() {
            a[ri][next_art] = 1.0;
            basis[ri] = next_art;
            *slot = Some(next_art);
            next_art += 1;
        }
    }
    cols = total;

    let mut t = Tableau {
        a,
        z: vec![0.0; cols + 1],
        basis,
        n_cols: cols,
        pivots: 0,
    };

    // ---- Phase 1: minimise the sum of artificials. ----
    if n_art > 0 {
        for c in (cols - n_art)..cols {
            t.z[c] = 1.0;
        }
        // Price out the basic artificials.
        for r in 0..m {
            if t.basis[r] >= cols - n_art {
                let row = t.a[r].clone();
                for (zv, rv) in t.z.iter_mut().zip(&row) {
                    *zv -= *rv;
                }
            }
        }
        match t.optimise() {
            Some(true) => {}
            Some(false) => return LpOutcome::Infeasible, // phase-1 can't be unbounded; defensive
            None => return LpOutcome::Stalled,
        }
        if t.value() > 1e-6 {
            return LpOutcome::Infeasible;
        }
        // Drive remaining artificials out of the basis where possible.
        for r in 0..m {
            if t.basis[r] >= cols - n_art {
                // Find any non-artificial column with a usable pivot.
                if let Some(c) = (0..cols - n_art).find(|&c| t.a[r][c].abs() > 1e-7) {
                    t.pivot(r, c);
                }
                // Otherwise the row is redundant (all-zero in original
                // columns); the artificial stays basic at value 0 — harmless.
            }
        }
    }

    // ---- Phase 2: true objective. ----
    t.z = vec![0.0; cols + 1];
    for v in 0..n {
        t.z[v] = lp.objective[v];
    }
    // Forbid artificials from re-entering.
    for c in (cols - n_art)..cols {
        t.z[c] = 1e30;
    }
    // Price out basics.
    for r in 0..m {
        let b = t.basis[r];
        let cb = t.z[b];
        if cb != 0.0 {
            let row = t.a[r].clone();
            for (zv, rv) in t.z.iter_mut().zip(&row) {
                *zv -= cb * *rv;
            }
            t.z[b] = 0.0;
        }
    }
    match t.optimise() {
        Some(true) => {}
        Some(false) => return LpOutcome::Unbounded,
        None => return LpOutcome::Stalled,
    }

    let mut x = vec![0.0; n];
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            x[b] = t.a[r][cols];
        }
    }
    let objective = lp.objective_value(&x);
    LpOutcome::Optimal(LpSolution {
        objective,
        x,
        pivots: t.pivots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, LpProblem};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn basic_le_problem() {
        // max x + y  s.t. x ≤ 2, y ≤ 3, x + y ≤ 4   (as min of negative)
        let mut lp = LpProblem::new(2);
        lp.set_objective(0, -1.0);
        lp.set_objective(1, -1.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 2.0);
        lp.add_constraint(&[(1, 1.0)], Cmp::Le, 3.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 4.0);
        let s = lp.solve().expect_optimal("solvable");
        assert_close(s.objective, -4.0);
        assert!(lp.max_violation(&s.x) < 1e-9);
    }

    #[test]
    fn equality_and_ge() {
        // min 2x + 3y  s.t. x + y = 10, x ≥ 4  → x=10? no: y free ≥ 0.
        // optimum: y = 0 impossible? x + y = 10, x ≥ 4 ⇒ take x = 10, y = 0:
        // cost 20; or x = 4, y = 6: cost 8 + 18 = 26. So min is 20.
        let mut lp = LpProblem::new(2);
        lp.set_objective(0, 2.0);
        lp.set_objective(1, 3.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 10.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 4.0);
        let s = lp.solve().expect_optimal("solvable");
        assert_close(s.objective, 20.0);
        assert_close(s.x[0], 10.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LpProblem::new(1);
        lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 5.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 2.0);
        assert!(matches!(lp.solve(), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LpProblem::new(1);
        lp.set_objective(0, -1.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 1.0);
        assert!(matches!(lp.solve(), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_normalised() {
        // x ≥ 0, constraint -x ≤ -3  ⇔  x ≥ 3
        let mut lp = LpProblem::new(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(&[(0, -1.0)], Cmp::Le, -3.0);
        let s = lp.solve().expect_optimal("solvable");
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Beale's classic cycling example (with Dantzig pricing it cycles
        // unless anti-cycling kicks in).
        let mut lp = LpProblem::new(4);
        lp.set_objective(0, -0.75);
        lp.set_objective(1, 150.0);
        lp.set_objective(2, -0.02);
        lp.set_objective(3, 6.0);
        lp.add_constraint(
            &[(0, 0.25), (1, -60.0), (2, -1.0 / 25.0), (3, 9.0)],
            Cmp::Le,
            0.0,
        );
        lp.add_constraint(
            &[(0, 0.5), (1, -90.0), (2, -1.0 / 50.0), (3, 3.0)],
            Cmp::Le,
            0.0,
        );
        lp.add_constraint(&[(2, 1.0)], Cmp::Le, 1.0);
        let s = lp.solve().expect_optimal("Beale instance is solvable");
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y = 2 appears twice — a redundant row keeps an artificial
        // basic at zero; the solve must still succeed.
        let mut lp = LpProblem::new(2);
        lp.set_objective(0, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 2.0);
        let s = lp.solve().expect_optimal("solvable");
        assert_close(s.objective, 0.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn zero_variable_problem() {
        let lp = LpProblem::new(0);
        let s = lp.solve().expect_optimal("trivially optimal");
        assert_eq!(s.x.len(), 0);
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn reports_pivot_counts() {
        let mut lp = LpProblem::new(2);
        lp.set_objective(0, -1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 1.0);
        let s = lp.solve().expect_optimal("solvable");
        assert!(s.pivots >= 1);
    }
}
