//! Property tests for the simplex solver: solutions are always feasible,
//! agree with brute-force vertex enumeration on small random LPs, and
//! obey weak duality against hand-constructed dual certificates.

use ea_lp::{Cmp, LpOutcome, LpProblem};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Brute-force optimum of `min c·x` over `{x ≥ 0 : A x ≤ b}` for 2-D
/// problems by enumerating all constraint-pair intersections (vertices of
/// the polytope) plus the axes intersections.
fn brute_force_2d(c: &[f64; 2], rows: &[([f64; 2], f64)]) -> Option<f64> {
    let mut cands: Vec<[f64; 2]> = vec![[0.0, 0.0]];
    // Axis intercepts.
    for &(a, b) in rows {
        if a[0].abs() > 1e-12 {
            cands.push([b / a[0], 0.0]);
        }
        if a[1].abs() > 1e-12 {
            cands.push([0.0, b / a[1]]);
        }
    }
    // Pairwise intersections.
    for i in 0..rows.len() {
        for j in (i + 1)..rows.len() {
            let (a1, b1) = rows[i];
            let (a2, b2) = rows[j];
            let det = a1[0] * a2[1] - a1[1] * a2[0];
            if det.abs() > 1e-9 {
                let x = (b1 * a2[1] - b2 * a1[1]) / det;
                let y = (a1[0] * b2 - a2[0] * b1) / det;
                cands.push([x, y]);
            }
        }
    }
    let feasible = |p: &[f64; 2]| {
        p[0] >= -1e-9
            && p[1] >= -1e-9
            && rows
                .iter()
                .all(|&(a, b)| a[0] * p[0] + a[1] * p[1] <= b + 1e-7)
    };
    cands
        .into_iter()
        .filter(feasible)
        .map(|p| c[0] * p[0] + c[1] * p[1])
        .min_by(|x, y| x.partial_cmp(y).expect("finite"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Simplex = brute-force vertex enumeration on random 2-D LPs with
    /// bounded feasible regions.
    #[test]
    fn matches_vertex_enumeration_2d(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c: [f64; 2] = [rng.random_range(0.1..3.0), rng.random_range(0.1..3.0)];
        // 2–5 random ≤-rows with positive coefficients (region bounded by
        // x,y ≥ 0 and at least one row, and non-empty since 0 is feasible).
        let m = rng.random_range(2..6usize);
        let rows: Vec<([f64; 2], f64)> = (0..m)
            .map(|_| {
                (
                    [rng.random_range(0.1..2.0), rng.random_range(0.1..2.0)],
                    rng.random_range(0.5..5.0),
                )
            })
            .collect();
        // Maximise c·x (minimise -c·x) so the optimum is a non-trivial vertex.
        let mut lp = LpProblem::new(2);
        lp.set_objective(0, -c[0]);
        lp.set_objective(1, -c[1]);
        for &(a, b) in &rows {
            lp.add_constraint(&[(0, a[0]), (1, a[1])], Cmp::Le, b);
        }
        let neg_c = [-c[0], -c[1]];
        let brute = brute_force_2d(&neg_c, &rows).expect("0 is feasible");
        match lp.solve() {
            LpOutcome::Optimal(s) => {
                prop_assert!(lp.max_violation(&s.x) <= 1e-7, "infeasible solution");
                prop_assert!((s.objective - brute).abs() <= 1e-6 * brute.abs().max(1.0),
                    "simplex {} vs brute {}", s.objective, brute);
            }
            other => prop_assert!(false, "bounded LP must solve: {other:?}"),
        }
    }

    /// Weak duality: for covering LPs `min c·x, A x ≥ b, x ≥ 0` any
    /// feasible dual `y ≥ 0` with `Aᵀy ≤ c` gives `b·y ≤ OPT`.
    #[test]
    fn weak_duality_covering(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(2..5usize);
        let m = rng.random_range(1..4usize);
        let a: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.random_range(0.1..2.0)).collect())
            .collect();
        let b: Vec<f64> = (0..m).map(|_| rng.random_range(0.5..4.0)).collect();
        let c: Vec<f64> = (0..n).map(|_| rng.random_range(0.5..3.0)).collect();
        let mut lp = LpProblem::new(n);
        for (j, &cj) in c.iter().enumerate() {
            lp.set_objective(j, cj);
        }
        for (i, row) in a.iter().enumerate() {
            let coeffs: Vec<(usize, f64)> =
                row.iter().enumerate().map(|(j, &v)| (j, v)).collect();
            lp.add_constraint(&coeffs, Cmp::Ge, b[i]);
        }
        let opt = match lp.solve() {
            LpOutcome::Optimal(s) => {
                prop_assert!(lp.max_violation(&s.x) <= 1e-7);
                s.objective
            }
            other => return Err(TestCaseError::fail(format!("must solve: {other:?}"))),
        };
        // Construct a feasible dual: y = t·1 with t = min_j c_j / Σ_i a_ij.
        let t = (0..n)
            .map(|j| c[j] / a.iter().map(|row| row[j]).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        let dual_value: f64 = b.iter().map(|&bi| t * bi).sum();
        prop_assert!(dual_value <= opt + 1e-6 * opt.abs().max(1.0),
            "weak duality violated: dual {} > primal {}", dual_value, opt);
    }

    /// Scaling invariance: scaling the objective scales the optimum.
    #[test]
    fn objective_scaling(seed in 0u64..5_000, scale in 0.1f64..10.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lp = LpProblem::new(3);
        for j in 0..3 {
            lp.set_objective(j, rng.random_range(0.1..2.0));
        }
        lp.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], Cmp::Ge, 2.0);
        let base = lp.solve().optimal().expect("covering LP solves").objective;
        let mut scaled = lp.clone();
        for j in 0..3 {
            let cj = scale * match j { 0..=2 => {
                // reconstruct: objective_value of unit vector
                let mut unit = vec![0.0; 3];
                unit[j] = 1.0;
                lp.objective_value(&unit)
            }, _ => unreachable!() };
            scaled.set_objective(j, cj);
        }
        let s2 = scaled.solve().optimal().expect("still solves").objective;
        prop_assert!((s2 - scale * base).abs() <= 1e-6 * (scale * base).abs().max(1.0));
    }
}
