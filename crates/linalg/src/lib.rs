//! # ea-linalg
//!
//! A small, dependency-free dense linear-algebra kernel: exactly the pieces
//! the convex solver (`ea-convex`) needs to run damped Newton steps on the
//! KKT systems of the CONTINUOUS BI-CRIT programs.
//!
//! * [`Matrix`] — dense row-major `f64` matrix with the usual arithmetic.
//! * [`lu::LuFactors`] — LU with partial pivoting, for general square
//!   systems (the Newton/KKT solve).
//! * [`cholesky::Cholesky`] — `L·Lᵀ` factorisation for symmetric positive
//!   definite systems (the Schur complements produced by barrier Hessians).
//!
//! Sizes in this workspace stay in the hundreds, so an `O(n³)` dense kernel
//! is the right tool: simple, cache-friendly, allocation-light.

// Dense factorisation kernels are written with explicit index loops on
// purpose: the triangular access patterns do not map onto iterators without
// obscuring the algorithm.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod lu;
pub mod matrix;
pub mod vector;

pub use cholesky::Cholesky;
pub use lu::LuFactors;
pub use matrix::{Matrix, MatrixError};
