//! Vector helpers shared by the solvers.

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// `y ← y + alpha·x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise `a − b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `alpha · a`, freshly allocated.
pub fn scale(alpha: f64, a: &[f64]) -> Vec<f64> {
    a.iter().map(|x| alpha * x).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(sub(&b, &a), vec![3.0, 3.0, 3.0]);
        assert_eq!(scale(2.0, &a), vec![2.0, 4.0, 6.0]);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }
}
