//! Cholesky factorisation for symmetric positive definite matrices.

use crate::matrix::{Matrix, MatrixError};

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive definite matrix.
    ///
    /// Only the lower triangle of `a` is read; positive definiteness is
    /// detected during factorisation (a non-positive pivot fails).
    pub fn new(a: &Matrix) -> Result<Self, MatrixError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(MatrixError::DimensionMismatch {
                expected: (n, n),
                got: (a.rows(), a.cols()),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(MatrixError::NotPositiveDefinite { row: i });
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` via forward then backward substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n, "rhs length");
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn factor_known_spd() {
        let a = Matrix::from_nested(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.factor();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_nested(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(MatrixError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn random_spd_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 3, 10, 40] {
            // A = Bᵀ·B + n·I is SPD.
            let mut b = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    b[(i, j)] = rng.random_range(-1.0..1.0);
                }
            }
            let mut a = b.transpose().mul(&b).unwrap();
            for i in 0..n {
                a[(i, i)] += n as f64;
            }
            let x_true: Vec<f64> = (0..n).map(|_| rng.random_range(-2.0..2.0)).collect();
            let rhs = a.mul_vec(&x_true);
            let x = Cholesky::new(&a).unwrap().solve(&rhs);
            for (xi, ti) in x.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-8, "n={n}");
            }
        }
    }
}
