//! LU factorisation with partial pivoting.

use crate::matrix::{Matrix, MatrixError};

/// LU factors `P·A = L·U` of a square matrix, stored compactly: the strict
/// lower triangle of `lu` holds `L` (unit diagonal implied), the upper
/// triangle holds `U`; `perm[i]` is the source row of pivoted row `i`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

impl LuFactors {
    /// Factors `a`; fails on non-square or numerically singular inputs.
    pub fn new(a: &Matrix) -> Result<Self, MatrixError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(MatrixError::DimensionMismatch {
                expected: (n, n),
                got: (a.rows(), a.cols()),
            });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 {
                return Err(MatrixError::Singular { pivot: k });
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= m * ukj;
                }
            }
        }
        Ok(LuFactors { lu, perm, sign })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n, "rhs length");
        // Apply permutation, forward-substitute L, back-substitute U.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        x
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.order() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn solve_small_system() {
        let a = Matrix::from_nested(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let lu = LuFactors::new(&a).unwrap();
        let x = lu.solve(&[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_and_pivoting() {
        // Requires a row swap (zero pivot in (0,0)).
        let a = Matrix::from_nested(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuFactors::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
        let x = lu.solve(&[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_nested(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuFactors::new(&a),
            Err(MatrixError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuFactors::new(&a),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn random_round_trip() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 5, 20, 50] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.random_range(-1.0..1.0);
                }
                a[(i, i)] += 4.0; // diagonally dominant ⇒ nonsingular
            }
            let x_true: Vec<f64> = (0..n).map(|_| rng.random_range(-2.0..2.0)).collect();
            let b = a.mul_vec(&x_true);
            let x = LuFactors::new(&a).unwrap().solve(&b);
            for (xi, ti) in x.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-8, "n={n}: {xi} vs {ti}");
            }
        }
    }
}
