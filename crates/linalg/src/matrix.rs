//! Dense row-major matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Errors from matrix construction and factorisation.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// Dimensions do not agree for the requested operation.
    DimensionMismatch {
        expected: (usize, usize),
        got: (usize, usize),
    },
    /// The matrix is singular (or numerically so) at the given pivot.
    Singular { pivot: usize },
    /// Cholesky requires a symmetric positive definite input.
    NotPositiveDefinite { row: usize },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected:?}, got {got:?}")
            }
            MatrixError::Singular { pivot } => write!(f, "singular matrix at pivot {pivot}"),
            MatrixError::NotPositiveDefinite { row } => {
                write!(f, "matrix not positive definite at row {row}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major data vector.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::DimensionMismatch {
                expected: (rows, cols),
                got: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds from nested slices (each inner slice is a row).
    pub fn from_nested(rows: &[&[f64]]) -> Result<Self, MatrixError> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(MatrixError::DimensionMismatch {
                    expected: (r, c),
                    got: (r, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-vector product `A·x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transposed matrix-vector product `Aᵀ·y`.
    pub fn mul_vec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "mul_vec_transposed dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let yi = y[i];
            if yi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += a * yi;
            }
        }
        out
    }

    /// Matrix product `A·B`.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != other.rows {
            return Err(MatrixError::DimensionMismatch {
                expected: (self.cols, other.rows),
                got: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// True if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mul() {
        let i3 = Matrix::identity(3);
        let a =
            Matrix::from_nested(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]]).unwrap();
        assert_eq!(i3.mul(&a).unwrap(), a);
        assert_eq!(a.mul(&i3).unwrap(), a);
    }

    #[test]
    fn mul_vec_basic() {
        let a = Matrix::from_nested(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(a.mul_vec_transposed(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_nested(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn dimension_checks() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.mul(&b),
            Err(MatrixError::DimensionMismatch { .. })
        ));
        assert!(Matrix::from_rows(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_nested(&[&[1.0, 2.0], &[1.0]]).is_err());
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_nested(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_nested(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_nested(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
