//! Property tests for the dense kernel: LU and Cholesky act as inverses
//! of matrix multiplication, determinants multiply, and solves are
//! backward-stable on well-conditioned random systems.

use ea_linalg::{Cholesky, LuFactors, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_dd_matrix(n: usize, seed: u64) -> Matrix {
    // Diagonally dominant ⇒ nonsingular and well conditioned.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = rng.random_range(-1.0..1.0);
        }
        a[(i, i)] += n as f64 + 1.0;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `solve(A, A·x) = x` for random diagonally-dominant systems.
    #[test]
    fn lu_solve_round_trip(n in 1usize..30, seed in 0u64..10_000) {
        let a = random_dd_matrix(n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let x: Vec<f64> = (0..n).map(|_| rng.random_range(-3.0..3.0)).collect();
        let b = a.mul_vec(&x);
        let got = LuFactors::new(&a).expect("nonsingular").solve(&b);
        for (g, t) in got.iter().zip(&x) {
            prop_assert!((g - t).abs() < 1e-7, "{g} vs {t}");
        }
    }

    /// det(A·B) = det(A)·det(B).
    #[test]
    fn determinant_multiplicative(n in 1usize..8, s1 in 0u64..1_000, s2 in 0u64..1_000) {
        let a = random_dd_matrix(n, s1);
        let b = random_dd_matrix(n, s2.wrapping_add(77));
        let da = LuFactors::new(&a).expect("ok").determinant();
        let db = LuFactors::new(&b).expect("ok").determinant();
        let dab = LuFactors::new(&a.mul(&b).expect("square")).expect("ok").determinant();
        prop_assert!((dab - da * db).abs() <= 1e-6 * dab.abs().max(1.0),
            "det(AB) {} vs det(A)det(B) {}", dab, da * db);
    }

    /// Cholesky reconstructs: L·Lᵀ = A for random SPD matrices.
    #[test]
    fn cholesky_reconstructs(n in 1usize..15, seed in 0u64..10_000) {
        let b = random_dd_matrix(n, seed);
        let mut a = b.transpose().mul(&b).expect("square");
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let ch = Cholesky::new(&a).expect("SPD");
        let l = ch.factor();
        let llt = l.mul(&l.transpose()).expect("square");
        for i in 0..n {
            for j in 0..n {
                prop_assert!((llt[(i, j)] - a[(i, j)]).abs() <= 1e-8 * a[(i, i)].max(1.0));
            }
        }
    }

    /// LU and Cholesky agree on SPD systems.
    #[test]
    fn lu_and_cholesky_agree(n in 1usize..12, seed in 0u64..10_000) {
        let b = random_dd_matrix(n, seed);
        let mut a = b.transpose().mul(&b).expect("square");
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let rhs: Vec<f64> = (0..n).map(|_| rng.random_range(-2.0..2.0)).collect();
        let x1 = LuFactors::new(&a).expect("ok").solve(&rhs);
        let x2 = Cholesky::new(&a).expect("ok").solve(&rhs);
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    /// Transpose is an involution and preserves the Frobenius norm.
    #[test]
    fn transpose_involution(r in 1usize..10, c in 1usize..10, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Matrix::zeros(r, c);
        for i in 0..r {
            for j in 0..c {
                a[(i, j)] = rng.random_range(-5.0..5.0);
            }
        }
        let t = a.transpose();
        prop_assert_eq!(t.transpose(), a.clone());
        prop_assert!((t.frobenius_norm() - a.frobenius_norm()).abs() < 1e-12);
    }
}
