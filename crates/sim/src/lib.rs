//! # ea-sim
//!
//! A discrete-event, fault-injecting execution simulator — the substitute
//! for the DVFS hardware and fault-prone large-scale platforms the paper
//! reasons about (petascale/exascale machines; see DESIGN.md §2).
//!
//! The simulator executes a [`ea_core::schedule::Schedule`] on its mapped
//! platform. Each execution of task `i` at speed `f` suffers a transient
//! fault with probability `p_i(f) = λ(f)·w_i/f` (Eq. (1) of the paper,
//! integrated over segments for VDD-hopping executions). A re-executed
//! task runs its second attempt only if the first fails — so the *actual*
//! energy and makespan are at most the schedule's worst-case values, which
//! the paper charges by design.
//!
//! * [`engine::simulate`] — one seeded run.
//! * [`montecarlo::run_monte_carlo`] — many runs in parallel (rayon),
//!   aggregating empirical task failure rates, application success rate,
//!   actual energy and makespan. Experiment E9 uses this to show that
//!   re-execution restores the reliability that DVFS destroys.

pub mod engine;
pub mod montecarlo;

pub use engine::{simulate, SimResult};
pub use montecarlo::{run_monte_carlo, MonteCarloStats};
