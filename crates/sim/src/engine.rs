//! Single-run discrete-event execution with fault injection.

use ea_core::platform::Mapping;
use ea_core::reliability::ReliabilityModel;
use ea_core::schedule::Schedule;
use ea_taskgraph::Dag;
use rand::Rng;

/// Outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// True iff every task eventually succeeded (some execution worked).
    pub success: bool,
    /// Observed makespan (second executions only run after failures, so
    /// this is ≤ the schedule's worst-case makespan).
    pub makespan: f64,
    /// Energy actually consumed (skipped second executions cost nothing).
    pub energy: f64,
    /// Number of transient faults injected.
    pub faults: usize,
    /// Per-task: did the task ultimately fail (all executions faulted)?
    pub task_failed: Vec<bool>,
}

/// Simulates one execution of `schedule` on the mapped platform, injecting
/// transient faults per Eq. (1).
///
/// Tasks start as early as possible: the start of task `t` is the maximum
/// finish time among its predecessors in the augmented DAG (precedence ∪
/// same-processor order), which is exactly the semantics the makespan
/// criterion assumes. A failed task does not block its successors' timing
/// (the run is already lost; we keep timing to measure the full horizon),
/// but the run is marked unsuccessful.
pub fn simulate<R: Rng + ?Sized>(
    dag: &Dag,
    mapping: &Mapping,
    schedule: &Schedule,
    rel: &ReliabilityModel,
    rng: &mut R,
) -> SimResult {
    let aug = mapping
        .augmented_dag(dag)
        .expect("mapping validated before simulation");
    let n = dag.len();
    assert_eq!(schedule.len(), n, "schedule must cover every task");

    let mut finish = vec![0.0f64; n];
    let mut task_failed = vec![false; n];
    let mut energy = 0.0f64;
    let mut faults = 0usize;
    let mut makespan = 0.0f64;

    for &t in &aug.topological_order() {
        let start = aug
            .predecessors(t)
            .iter()
            .map(|&p| finish[p])
            .fold(0.0, f64::max);
        let w = dag.weight(t);
        let mut clock = start;
        let mut succeeded = false;
        for exec in &schedule.tasks[t].executions {
            clock += exec.duration(w);
            energy += exec.energy(w);
            let p = exec.failure_prob(rel, w).clamp(0.0, 1.0);
            if rng.random_bool(p) {
                faults += 1;
            } else {
                succeeded = true;
                break; // later executions are skipped on success
            }
        }
        task_failed[t] = !succeeded;
        finish[t] = clock;
        makespan = makespan.max(clock);
    }

    SimResult {
        success: task_failed.iter().all(|&f| !f),
        makespan,
        energy,
        faults,
        task_failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_core::schedule::TaskSchedule;
    use ea_taskgraph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rel() -> ReliabilityModel {
        ReliabilityModel::typical(1.0, 2.0, 1.8)
    }

    #[test]
    fn fault_free_run_matches_schedule_metrics() {
        // λ₀ so small that faults essentially never occur.
        let rel = ReliabilityModel::new(1e-300, 3.0, 1.0, 2.0, 1.8);
        let dag = generators::chain(&[2.0, 4.0]);
        let mapping = Mapping::single_processor(vec![0, 1]);
        let sched = Schedule::from_speeds(&[1.0, 2.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let r = simulate(&dag, &mapping, &sched, &rel, &mut rng);
        assert!(r.success);
        assert_eq!(r.faults, 0);
        assert!((r.makespan - 4.0).abs() < 1e-12);
        assert!((r.energy - sched.energy(&dag)).abs() < 1e-12);
    }

    #[test]
    fn certain_failure_marks_task() {
        // λ₀ huge: every execution faults.
        let rel = ReliabilityModel::new(1e9, 0.0, 1.0, 2.0, 1.8);
        let dag = generators::chain(&[1.0]);
        let mapping = Mapping::single_processor(vec![0]);
        let sched = Schedule::from_speeds(&[1.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let r = simulate(&dag, &mapping, &sched, &rel, &mut rng);
        assert!(!r.success);
        assert!(r.task_failed[0]);
        assert_eq!(r.faults, 1);
    }

    #[test]
    fn reexecution_skipped_on_success() {
        let rel = ReliabilityModel::new(1e-300, 3.0, 1.0, 2.0, 1.8);
        let dag = generators::chain(&[2.0]);
        let mapping = Mapping::single_processor(vec![0]);
        let sched = Schedule {
            tasks: vec![TaskSchedule::twice(1.0, 1.0)],
        };
        let mut rng = StdRng::seed_from_u64(3);
        let r = simulate(&dag, &mapping, &sched, &rel, &mut rng);
        // only the first execution ran: energy w·f² = 2, makespan 2
        assert!((r.energy - 2.0).abs() < 1e-12);
        assert!((r.makespan - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reexecution_runs_on_failure() {
        let rel = ReliabilityModel::new(1e9, 0.0, 1.0, 2.0, 1.8);
        let dag = generators::chain(&[2.0]);
        let mapping = Mapping::single_processor(vec![0]);
        let sched = Schedule {
            tasks: vec![TaskSchedule::twice(1.0, 1.0)],
        };
        let mut rng = StdRng::seed_from_u64(4);
        let r = simulate(&dag, &mapping, &sched, &rel, &mut rng);
        assert!(!r.success);
        assert_eq!(r.faults, 2);
        assert!((r.energy - 4.0).abs() < 1e-12);
        assert!((r.makespan - 4.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_branches_overlap_in_time() {
        let rel = ReliabilityModel::new(1e-300, 3.0, 1.0, 2.0, 1.8);
        let dag = generators::fork(1.0, &[2.0, 2.0]);
        let mapping = Mapping::new(vec![0, 0, 1], vec![vec![0, 1], vec![2]]).unwrap();
        let sched = Schedule::uniform(3, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let r = simulate(&dag, &mapping, &sched, &rel, &mut rng);
        // source 1, then branches run in parallel: makespan 3, not 5.
        assert!((r.makespan - 3.0).abs() < 1e-12);
    }

    #[test]
    fn determinism_per_seed() {
        let rel = rel();
        let dag = generators::chain(&[1.0, 1.0, 1.0]);
        let mapping = Mapping::single_processor(vec![0, 1, 2]);
        let sched = Schedule::uniform(3, 1.2);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate(&dag, &mapping, &sched, &rel, &mut rng).faults
        };
        assert_eq!(run(42), run(42));
    }
}
