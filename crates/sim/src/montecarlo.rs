//! Monte-Carlo harness: many seeded runs in parallel.

use crate::engine::{simulate, SimResult};
use ea_core::platform::Mapping;
use ea_core::reliability::ReliabilityModel;
use ea_core::schedule::Schedule;
use ea_taskgraph::Dag;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Aggregated statistics over a Monte-Carlo campaign.
#[derive(Debug, Clone)]
pub struct MonteCarloStats {
    /// Number of runs.
    pub runs: usize,
    /// Fraction of runs where *every* task succeeded.
    pub app_success_rate: f64,
    /// Per-task empirical ultimate-failure rate (all executions faulted).
    pub task_failure_rate: Vec<f64>,
    /// Mean energy actually consumed (≤ worst case when re-executing).
    pub mean_energy: f64,
    /// Mean observed makespan.
    pub mean_makespan: f64,
    /// Largest observed makespan (must stay ≤ the worst-case makespan).
    pub max_makespan: f64,
    /// Mean number of injected faults per run.
    pub mean_faults: f64,
}

impl MonteCarloStats {
    /// The worst per-task empirical failure rate.
    pub fn worst_task_failure_rate(&self) -> f64 {
        self.task_failure_rate.iter().copied().fold(0.0, f64::max)
    }
}

/// Runs `runs` independent simulations (seeds `seed, seed+1, …`) in
/// parallel with rayon and aggregates the results.
pub fn run_monte_carlo(
    dag: &Dag,
    mapping: &Mapping,
    schedule: &Schedule,
    rel: &ReliabilityModel,
    runs: usize,
    seed: u64,
) -> MonteCarloStats {
    assert!(runs > 0, "need at least one run");
    let n = dag.len();

    struct Acc {
        ok: usize,
        task_fail: Vec<u64>,
        energy: f64,
        makespan: f64,
        max_makespan: f64,
        faults: u64,
    }
    impl Acc {
        fn new(n: usize) -> Self {
            Acc {
                ok: 0,
                task_fail: vec![0; n],
                energy: 0.0,
                makespan: 0.0,
                max_makespan: 0.0,
                faults: 0,
            }
        }
        fn add(mut self, r: &SimResult) -> Self {
            if r.success {
                self.ok += 1;
            }
            for (c, &f) in self.task_fail.iter_mut().zip(&r.task_failed) {
                *c += u64::from(f);
            }
            self.energy += r.energy;
            self.makespan += r.makespan;
            self.max_makespan = self.max_makespan.max(r.makespan);
            self.faults += r.faults as u64;
            self
        }
        fn merge(mut self, other: Acc) -> Self {
            self.ok += other.ok;
            for (a, b) in self.task_fail.iter_mut().zip(&other.task_fail) {
                *a += b;
            }
            self.energy += other.energy;
            self.makespan += other.makespan;
            self.max_makespan = self.max_makespan.max(other.max_makespan);
            self.faults += other.faults;
            self
        }
    }

    let acc = (0..runs)
        .into_par_iter()
        .fold(
            || Acc::new(n),
            |acc, k| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(k as u64));
                let r = simulate(dag, mapping, schedule, rel, &mut rng);
                acc.add(&r)
            },
        )
        .reduce(|| Acc::new(n), Acc::merge);

    let rf = runs as f64;
    MonteCarloStats {
        runs,
        app_success_rate: acc.ok as f64 / rf,
        task_failure_rate: acc.task_fail.iter().map(|&c| c as f64 / rf).collect(),
        mean_energy: acc.energy / rf,
        mean_makespan: acc.makespan / rf,
        max_makespan: acc.max_makespan,
        mean_faults: acc.faults as f64 / rf,
    }
}

/// Analytic per-task ultimate-failure probabilities of a schedule — what
/// the empirical rates should converge to.
pub fn expected_failure_probs(dag: &Dag, schedule: &Schedule, rel: &ReliabilityModel) -> Vec<f64> {
    schedule
        .tasks
        .iter()
        .zip(dag.weights())
        .map(|(ts, &w)| ts.failure_prob(rel, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ea_core::schedule::TaskSchedule;
    use ea_taskgraph::generators;

    /// A hot reliability model (large λ₀) so failures are frequent enough
    /// to measure with few runs.
    fn hot_rel() -> ReliabilityModel {
        ReliabilityModel::new(0.05, 3.0, 1.0, 2.0, 1.8)
    }

    #[test]
    fn empirical_failure_rate_matches_eq1() {
        let rel = hot_rel();
        let dag = generators::chain(&[1.0]);
        let mapping = Mapping::single_processor(vec![0]);
        let f = 1.2;
        let sched = Schedule::from_speeds(&[f]);
        let stats = run_monte_carlo(&dag, &mapping, &sched, &rel, 40_000, 7);
        let expected = rel.failure_prob(1.0, f);
        let got = stats.task_failure_rate[0];
        // 40k samples: ±3σ ≈ ±3·sqrt(p/n) — generous band.
        let tol = 3.0 * (expected / 40_000.0).sqrt() + 1e-3;
        assert!(
            (got - expected).abs() < tol,
            "empirical {got} vs analytic {expected} (tol {tol})"
        );
    }

    #[test]
    fn reexecution_squares_the_failure_rate() {
        let rel = hot_rel();
        let dag = generators::chain(&[1.0]);
        let mapping = Mapping::single_processor(vec![0]);
        let f = 1.2;
        let once = Schedule::from_speeds(&[f]);
        let twice = Schedule {
            tasks: vec![TaskSchedule::twice(f, f)],
        };
        let s1 = run_monte_carlo(&dag, &mapping, &once, &rel, 60_000, 1);
        let s2 = run_monte_carlo(&dag, &mapping, &twice, &rel, 60_000, 2);
        let p = rel.failure_prob(1.0, f);
        assert!(s2.task_failure_rate[0] < s1.task_failure_rate[0]);
        // The pair fails with probability p², versus p for one execution.
        let tol = 3.0 * (p * p / 60_000.0).sqrt() + 5e-4;
        assert!(
            (s2.task_failure_rate[0] - p * p).abs() < tol,
            "empirical {} vs p² = {}",
            s2.task_failure_rate[0],
            p * p
        );
    }

    #[test]
    fn makespan_never_exceeds_worst_case() {
        let rel = hot_rel();
        let w = generators::random_weights(6, 0.5, 2.0, 5);
        let dag = generators::chain(&w);
        let mapping = Mapping::single_processor((0..w.len()).collect());
        let sched = Schedule {
            tasks: w.iter().map(|_| TaskSchedule::twice(1.5, 1.5)).collect(),
        };
        let worst = sched.makespan(&dag, &mapping).unwrap();
        let stats = run_monte_carlo(&dag, &mapping, &sched, &rel, 5_000, 9);
        assert!(stats.max_makespan <= worst * (1.0 + 1e-9));
        assert!(stats.mean_energy <= sched.energy(&dag) * (1.0 + 1e-9));
    }

    #[test]
    fn expected_probs_helper_agrees_with_schedule() {
        let rel = hot_rel();
        let dag = generators::chain(&[1.0, 2.0]);
        let sched = Schedule {
            tasks: vec![TaskSchedule::once(1.5), TaskSchedule::twice(1.2, 1.2)],
        };
        let probs = expected_failure_probs(&dag, &sched, &rel);
        assert!((probs[0] - rel.failure_prob(1.0, 1.5)).abs() < 1e-15);
        let p2 = rel.failure_prob(2.0, 1.2);
        assert!((probs[1] - p2 * p2).abs() < 1e-15);
    }

    #[test]
    fn deterministic_given_seed() {
        let rel = hot_rel();
        let dag = generators::chain(&[1.0, 1.0]);
        let mapping = Mapping::single_processor(vec![0, 1]);
        let sched = Schedule::uniform(2, 1.3);
        let a = run_monte_carlo(&dag, &mapping, &sched, &rel, 2_000, 11);
        let b = run_monte_carlo(&dag, &mapping, &sched, &rel, 2_000, 11);
        assert_eq!(a.app_success_rate, b.app_success_rate);
        assert_eq!(a.mean_faults, b.mean_faults);
    }
}
