//! Log-barrier interior-point method.
//!
//! Minimises `f(x)` over `A·x ≤ b` by the standard scheme (Boyd &
//! Vandenberghe, ch. 11): for an increasing sequence of `t`, Newton-minimise
//! the centring objective `t·f(x) − Σ_r log(s_r)` with slacks
//! `s = b − A·x`, starting each stage from the previous centre. The duality
//! gap after a stage is at most `m/t`, giving a certified suboptimality.

use crate::problem::{LinearConstraints, Objective};
use ea_linalg::{vector, Cholesky, Matrix};

/// Solver options.
#[derive(Debug, Clone)]
pub struct BarrierOptions {
    /// Initial barrier weight `t₀`.
    pub t0: f64,
    /// Geometric growth factor `μ` of the barrier weight.
    pub mu: f64,
    /// Target duality gap `m/t ≤ tol` (absolute).
    pub tol: f64,
    /// Newton decrement threshold terminating each centring stage.
    pub newton_tol: f64,
    /// Cap on Newton iterations per stage.
    pub max_newton: usize,
    /// Backtracking line-search parameters (Armijo).
    pub ls_alpha: f64,
    /// Step shrink factor.
    pub ls_beta: f64,
}

impl Default for BarrierOptions {
    fn default() -> Self {
        BarrierOptions {
            t0: 1.0,
            mu: 20.0,
            tol: 1e-8,
            newton_tol: 1e-10,
            max_newton: 80,
            ls_alpha: 0.25,
            ls_beta: 0.5,
        }
    }
}

impl BarrierOptions {
    /// Options achieving a relative accuracy of roughly `1/K` on the
    /// objective — the "K" knob of the paper's INCREMENTAL approximation
    /// factor `(1 + δ/f_min)²·(1 + 1/K)²` (experiment E5).
    pub fn with_accuracy_k(k: usize) -> Self {
        let k = k.max(1) as f64;
        BarrierOptions {
            tol: 1.0 / k,
            ..Self::default()
        }
    }
}

/// Result of a successful solve.
#[derive(Debug, Clone)]
pub struct ConvexSolution {
    /// Final (strictly feasible) point.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Certified upper bound on the suboptimality (`m / t_final`).
    pub gap: f64,
    /// Total Newton iterations across all barrier stages.
    pub newton_steps: usize,
}

/// Solver failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ConvexError {
    /// The starting point is not strictly inside `A·x < b`.
    NotStrictlyFeasible { row: usize, slack: f64 },
    /// Objective and constraint dimensions disagree.
    DimensionMismatch,
    /// The Newton system became numerically singular.
    Numerical,
}

impl std::fmt::Display for ConvexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvexError::NotStrictlyFeasible { row, slack } => {
                write!(
                    f,
                    "start not strictly feasible: row {row} slack {slack:.3e}"
                )
            }
            ConvexError::DimensionMismatch => write!(f, "dimension mismatch"),
            ConvexError::Numerical => write!(f, "numerical failure in Newton solve"),
        }
    }
}

impl std::error::Error for ConvexError {}

/// Minimises `obj` over `cons` starting from a strictly feasible `x0`.
pub fn solve(
    obj: &dyn Objective,
    cons: &LinearConstraints,
    x0: &[f64],
    opts: &BarrierOptions,
) -> Result<ConvexSolution, ConvexError> {
    let n = obj.dim();
    if cons.dim() != n || x0.len() != n {
        return Err(ConvexError::DimensionMismatch);
    }
    let m = cons.len();
    // Strict feasibility check.
    let slacks = cons.slacks(x0);
    for (r, &s) in slacks.iter().enumerate() {
        if s <= 0.0 {
            return Err(ConvexError::NotStrictlyFeasible { row: r, slack: s });
        }
    }
    if m == 0 {
        // Unconstrained: plain damped Newton at t = 1.
        let mut x = x0.to_vec();
        let steps = newton_centre(obj, cons, &mut x, 1.0, opts)?;
        let objective = obj.value(&x);
        return Ok(ConvexSolution {
            x,
            objective,
            gap: 0.0,
            newton_steps: steps,
        });
    }

    let mut x = x0.to_vec();
    let mut t = opts.t0;
    let mut total_steps = 0usize;
    loop {
        total_steps += newton_centre(obj, cons, &mut x, t, opts)?;
        let gap = m as f64 / t;
        if gap <= opts.tol {
            let objective = obj.value(&x);
            return Ok(ConvexSolution {
                x,
                objective,
                gap,
                newton_steps: total_steps,
            });
        }
        t *= opts.mu;
    }
}

/// Barrier-augmented value `t·f(x) − Σ log s`, `+∞` outside the interior.
fn merit(obj: &dyn Objective, cons: &LinearConstraints, x: &[f64], t: f64) -> f64 {
    let fv = obj.value(x);
    if !fv.is_finite() {
        return f64::INFINITY;
    }
    let mut v = t * fv;
    for s in cons.slacks(x) {
        if s <= 0.0 {
            return f64::INFINITY;
        }
        v -= s.ln();
    }
    v
}

/// One centring stage: damped Newton on the barrier objective.
/// Returns the number of Newton iterations.
// Hessian assembly walks rows with explicit indices on purpose.
#[allow(clippy::needless_range_loop)]
fn newton_centre(
    obj: &dyn Objective,
    cons: &LinearConstraints,
    x: &mut Vec<f64>,
    t: f64,
    opts: &BarrierOptions,
) -> Result<usize, ConvexError> {
    let n = obj.dim();
    let a = cons.matrix();
    let mut g = vec![0.0; n];
    let mut hdiag = vec![0.0; n];

    for iter in 0..opts.max_newton {
        // Gradient: t·∇f + Aᵀ (1/s).
        obj.gradient(x, &mut g);
        for gi in g.iter_mut() {
            *gi *= t;
        }
        let slacks = cons.slacks(x);
        if !cons.is_empty() {
            let inv_s: Vec<f64> = slacks.iter().map(|s| 1.0 / s).collect();
            let at_inv = a.mul_vec_transposed(&inv_s);
            vector::axpy(1.0, &at_inv, &mut g);
        }

        // Hessian: t·diag(∇²f) + Aᵀ diag(1/s²) A  (+ tiny ridge).
        obj.hessian_diag(x, &mut hdiag);
        let mut h = Matrix::zeros(n, n);
        for i in 0..n {
            h[(i, i)] = t * hdiag[i] + 1e-12;
        }
        for r in 0..cons.len() {
            let w = 1.0 / (slacks[r] * slacks[r]);
            let row = a.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                let wri = w * ri;
                for j in 0..n {
                    if row[j] != 0.0 {
                        h[(i, j)] += wri * row[j];
                    }
                }
            }
        }

        let chol = Cholesky::new(&h).map_err(|_| ConvexError::Numerical)?;
        let step = {
            let mut neg_g = g.clone();
            for v in neg_g.iter_mut() {
                *v = -*v;
            }
            chol.solve(&neg_g)
        };

        // Newton decrement λ² = −gᵀ·step.
        let lambda2 = -vector::dot(&g, &step);
        if lambda2 / 2.0 <= opts.newton_tol {
            return Ok(iter);
        }

        // Backtracking line search on the barrier merit.
        let m0 = merit(obj, cons, x, t);
        let mut alpha = 1.0;
        let mut accepted = false;
        for _ in 0..60 {
            let trial: Vec<f64> = x
                .iter()
                .zip(&step)
                .map(|(xi, si)| xi + alpha * si)
                .collect();
            let mt = merit(obj, cons, &trial, t);
            if mt <= m0 - opts.ls_alpha * alpha * lambda2 {
                *x = trial;
                accepted = true;
                break;
            }
            alpha *= opts.ls_beta;
        }
        if !accepted {
            // Step direction exhausted — the point is as centred as the
            // arithmetic allows.
            return Ok(iter + 1);
        }
    }
    Ok(opts.max_newton)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Quadratic, SeparablePower};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0),
            "{a} vs {b}"
        );
    }

    #[test]
    fn quadratic_hits_active_bound() {
        // min (x−3)² s.t. x ≤ 1  ⇒  x* = 1.
        let obj = Quadratic {
            q: vec![2.0],
            c: vec![3.0],
        };
        let cons = LinearConstraints::from_rows(1, &[(vec![(0, 1.0)], 1.0)]);
        let sol = solve(&obj, &cons, &[0.0], &BarrierOptions::default()).unwrap();
        assert_close(sol.x[0], 1.0, 1e-5);
    }

    #[test]
    fn unconstrained_newton() {
        let obj = Quadratic {
            q: vec![1.0, 4.0],
            c: vec![2.0, -1.0],
        };
        let cons = LinearConstraints::new(2);
        let sol = solve(&obj, &cons, &[0.0, 0.0], &BarrierOptions::default()).unwrap();
        assert_close(sol.x[0], 2.0, 1e-6);
        assert_close(sol.x[1], -1.0, 1e-6);
    }

    #[test]
    fn chain_energy_closed_form() {
        // min Σ w_i³/d_i² s.t. Σ d_i ≤ D, d ≥ 0.01 ⇒ d_i = D·w_i/Σw,
        // E* = (Σw)³/D².
        let w = [1.0f64, 2.0, 3.0];
        let d_total = 2.0;
        let obj = SeparablePower::new(
            3,
            w.iter()
                .enumerate()
                .map(|(i, wi)| (i, wi.powi(3)))
                .collect(),
            2.0,
        );
        let mut rows = vec![(vec![(0, 1.0), (1, 1.0), (2, 1.0)], d_total)];
        for i in 0..3 {
            rows.push((vec![(i, -1.0)], -0.01)); // d_i ≥ 0.01
        }
        let cons = LinearConstraints::from_rows(3, &rows);
        let x0 = [0.2, 0.2, 0.2];
        let sol = solve(&obj, &cons, &x0, &BarrierOptions::default()).unwrap();
        let wsum: f64 = w.iter().sum();
        assert_close(sol.objective, wsum.powi(3) / (d_total * d_total), 1e-5);
        for (i, wi) in w.iter().enumerate() {
            assert_close(sol.x[i], d_total * wi / wsum, 1e-4);
        }
    }

    #[test]
    fn rejects_infeasible_start() {
        let obj = Quadratic {
            q: vec![1.0],
            c: vec![0.0],
        };
        let cons = LinearConstraints::from_rows(1, &[(vec![(0, 1.0)], 1.0)]);
        let err = solve(&obj, &cons, &[2.0], &BarrierOptions::default()).unwrap_err();
        assert!(matches!(err, ConvexError::NotStrictlyFeasible { .. }));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let obj = Quadratic {
            q: vec![1.0],
            c: vec![0.0],
        };
        let cons = LinearConstraints::new(2);
        assert_eq!(
            solve(&obj, &cons, &[0.0], &BarrierOptions::default()).unwrap_err(),
            ConvexError::DimensionMismatch
        );
    }

    #[test]
    fn gap_certificate_shrinks_with_tolerance() {
        let obj = Quadratic {
            q: vec![2.0],
            c: vec![3.0],
        };
        let cons = LinearConstraints::from_rows(1, &[(vec![(0, 1.0)], 1.0)]);
        let loose = solve(
            &obj,
            &cons,
            &[0.0],
            &BarrierOptions {
                tol: 1e-2,
                ..Default::default()
            },
        )
        .unwrap();
        let tight = solve(
            &obj,
            &cons,
            &[0.0],
            &BarrierOptions {
                tol: 1e-9,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(tight.gap < loose.gap);
        assert!(tight.gap <= 1e-9);
    }

    #[test]
    fn accuracy_k_constructor() {
        let o = BarrierOptions::with_accuracy_k(100);
        assert!((o.tol - 0.01).abs() < 1e-15);
        let o1 = BarrierOptions::with_accuracy_k(0);
        assert!((o1.tol - 1.0).abs() < 1e-15);
    }
}
