//! Problem definitions for the barrier solver.

use ea_linalg::Matrix;

/// A smooth convex objective with *separable* curvature (diagonal Hessian).
///
/// Separability is not a real restriction here: every objective in this
/// workspace is a sum of per-task terms (`Σ w_i³/d_i²`, `Σ w_i f_i²`, …).
pub trait Objective {
    /// Number of variables.
    fn dim(&self) -> usize;
    /// Objective value at `x`. May return `f64::INFINITY` outside the
    /// domain (the line search backtracks on infinite values).
    fn value(&self, x: &[f64]) -> f64;
    /// Gradient at `x` (written into `g`).
    fn gradient(&self, x: &[f64], g: &mut [f64]);
    /// Diagonal of the Hessian at `x` (written into `h`).
    fn hessian_diag(&self, x: &[f64], h: &mut [f64]);
}

/// `Σ coeff_i / x_i^p` over a subset of the variables — the energy
/// objective in duration space uses `p = 2`, `coeff_i = w_i³`.
///
/// Convex for `x_i > 0`, `p ≥ 1`, `coeff_i ≥ 0`.
#[derive(Debug, Clone)]
pub struct SeparablePower {
    dim: usize,
    /// `(variable index, coefficient)` terms.
    terms: Vec<(usize, f64)>,
    /// The (positive) exponent `p` in `coeff / x^p`.
    power: f64,
}

impl SeparablePower {
    /// Builds `Σ coeff/x^p` over `dim` variables.
    pub fn new(dim: usize, terms: Vec<(usize, f64)>, power: f64) -> Self {
        assert!(power >= 1.0, "convexity needs p ≥ 1");
        for &(v, c) in &terms {
            assert!(v < dim, "term variable out of range");
            assert!(c >= 0.0 && c.is_finite(), "coefficients must be ≥ 0");
        }
        SeparablePower { dim, terms, power }
    }
}

impl Objective for SeparablePower {
    fn dim(&self) -> usize {
        self.dim
    }

    fn value(&self, x: &[f64]) -> f64 {
        let mut v = 0.0;
        for &(i, c) in &self.terms {
            if x[i] <= 0.0 {
                return f64::INFINITY;
            }
            v += c / x[i].powf(self.power);
        }
        v
    }

    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        g.fill(0.0);
        let p = self.power;
        for &(i, c) in &self.terms {
            g[i] += -p * c / x[i].powf(p + 1.0);
        }
    }

    fn hessian_diag(&self, x: &[f64], h: &mut [f64]) {
        h.fill(0.0);
        let p = self.power;
        for &(i, c) in &self.terms {
            h[i] += p * (p + 1.0) * c / x[i].powf(p + 2.0);
        }
    }
}

/// Convex quadratic `½ Σ q_i (x_i − c_i)²` (diagonal), used in tests and by
/// the projection utilities.
#[derive(Debug, Clone)]
pub struct Quadratic {
    /// Per-variable curvature `q_i ≥ 0`.
    pub q: Vec<f64>,
    /// Per-variable centre `c_i`.
    pub c: Vec<f64>,
}

impl Objective for Quadratic {
    fn dim(&self) -> usize {
        self.q.len()
    }

    fn value(&self, x: &[f64]) -> f64 {
        0.5 * self
            .q
            .iter()
            .zip(&self.c)
            .zip(x)
            .map(|((q, c), xi)| q * (xi - c) * (xi - c))
            .sum::<f64>()
    }

    fn gradient(&self, x: &[f64], g: &mut [f64]) {
        for i in 0..x.len() {
            g[i] = self.q[i] * (x[i] - self.c[i]);
        }
    }

    fn hessian_diag(&self, _x: &[f64], h: &mut [f64]) {
        h.copy_from_slice(&self.q);
    }
}

/// The polyhedron `A·x ≤ b` in dense row form.
#[derive(Debug, Clone)]
pub struct LinearConstraints {
    a: Matrix,
    b: Vec<f64>,
}

impl LinearConstraints {
    /// Builds an empty constraint set over `dim` variables.
    pub fn new(dim: usize) -> Self {
        LinearConstraints {
            a: Matrix::zeros(0, dim),
            b: Vec::new(),
        }
    }

    /// Builds from sparse rows: each row is `Σ coeffs·x ≤ rhs`.
    pub fn from_rows(dim: usize, rows: &[(Vec<(usize, f64)>, f64)]) -> Self {
        let mut a = Matrix::zeros(rows.len(), dim);
        let mut b = Vec::with_capacity(rows.len());
        for (r, (coeffs, rhs)) in rows.iter().enumerate() {
            for &(v, c) in coeffs {
                assert!(v < dim, "constraint variable out of range");
                a[(r, v)] += c;
            }
            b.push(*rhs);
        }
        LinearConstraints { a, b }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.b.len()
    }

    /// True if there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.b.is_empty()
    }

    /// Variable dimension.
    pub fn dim(&self) -> usize {
        self.a.cols()
    }

    /// Row matrix `A`.
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }

    /// Right-hand side `b`.
    pub fn rhs(&self) -> &[f64] {
        &self.b
    }

    /// Slacks `s = b − A·x`; all-positive means strictly feasible.
    pub fn slacks(&self, x: &[f64]) -> Vec<f64> {
        let ax = self.a.mul_vec(x);
        self.b.iter().zip(ax).map(|(bi, axi)| bi - axi).collect()
    }

    /// Worst violation (≤ 0 means feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        self.slacks(x)
            .into_iter()
            .fold(f64::NEG_INFINITY, |m, s| m.max(-s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_power_derivatives() {
        // f(x) = 8/x², f'(x) = -16/x³, f''(x) = 48/x⁴, at x = 2:
        let f = SeparablePower::new(1, vec![(0, 8.0)], 2.0);
        assert!((f.value(&[2.0]) - 2.0).abs() < 1e-12);
        let mut g = [0.0];
        f.gradient(&[2.0], &mut g);
        assert!((g[0] + 2.0).abs() < 1e-12);
        let mut h = [0.0];
        f.hessian_diag(&[2.0], &mut h);
        assert!((h[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn separable_power_domain_guard() {
        let f = SeparablePower::new(1, vec![(0, 1.0)], 2.0);
        assert!(f.value(&[0.0]).is_infinite());
        assert!(f.value(&[-1.0]).is_infinite());
    }

    #[test]
    fn quadratic_derivatives() {
        let f = Quadratic {
            q: vec![2.0],
            c: vec![3.0],
        };
        assert!((f.value(&[5.0]) - 4.0).abs() < 1e-12);
        let mut g = [0.0];
        f.gradient(&[5.0], &mut g);
        assert!((g[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn constraints_slack_and_violation() {
        // x0 + x1 ≤ 3, x0 ≤ 1
        let c = LinearConstraints::from_rows(
            2,
            &[(vec![(0, 1.0), (1, 1.0)], 3.0), (vec![(0, 1.0)], 1.0)],
        );
        assert_eq!(c.len(), 2);
        let s = c.slacks(&[0.5, 1.0]);
        assert!((s[0] - 1.5).abs() < 1e-12);
        assert!((s[1] - 0.5).abs() < 1e-12);
        assert!(c.max_violation(&[0.5, 1.0]) < 0.0);
        assert!((c.max_violation(&[2.0, 2.0]) - 1.0).abs() < 1e-12);
    }
}
