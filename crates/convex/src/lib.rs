//! # ea-convex
//!
//! A log-barrier interior-point solver for **separable convex objectives
//! under linear inequality constraints** — the numerical substrate behind
//! the paper's CONTINUOUS-model results.
//!
//! The paper (Section III) formulates CONTINUOUS BI-CRIT on a general DAG
//! as a geometric program and appeals to Boyd & Vandenberghe §4.5 for
//! "efficient numerical schemes". In *duration space* the program is
//! equivalently a separable convex problem
//!
//! ```text
//! minimise    Σ_i w_i³ / d_i²                 (energy)
//! subject to  b_i + d_i ≤ b_j   for augmented-DAG edges (i → j)
//!             b_i + d_i ≤ D,    b_i ≥ 0
//!             w_i/f_max ≤ d_i ≤ w_i/f_min
//! ```
//!
//! i.e. convex objective + linear constraints, which is exactly the shape
//! this crate solves with a standard barrier method (damped Newton inner
//! loop, backtracking line search, geometric barrier schedule). The KKT
//! systems are solved densely by `ea-linalg` — instance sizes in the
//! paper's regime are a few hundred variables.

pub mod barrier;
pub mod problem;

pub use barrier::{solve, BarrierOptions, ConvexError, ConvexSolution};
pub use problem::{LinearConstraints, Objective, Quadratic, SeparablePower};
