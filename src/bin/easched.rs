//! `easched` — command-line driver for the energy-aware scheduling
//! library: generate a workload, map it, solve BI-CRIT under a chosen
//! speed model via the unified `bicrit::solve` dispatcher, and print the
//! schedule (optionally as JSON).
//!
//! ```text
//! easched --dag chain:12 --model continuous --mult 1.6
//! easched --dag fork:8 --model vdd --modes 1,1.5,2 --mult 1.4 --json
//! easched --dag layered:4x3 --procs 3 --model incremental --delta 0.2
//! easched --dag gauss:4 --model discrete --modes 1,2 --mult 1.5
//! ```
//!
//! Batch mode evaluates a whole scenario grid in parallel through the
//! `ea-engine` scenario engine and prints a JSON report:
//!
//! ```text
//! easched --batch --scenarios chain:10,fork:8 --models continuous,vdd \
//!         --mults 1.2,1.6 --seeds 4 --procs 3
//! ```
//!
//! Front mode traces whole energy/deadline Pareto fronts (warm-started
//! deadline sweeps) instead of single points, as JSON or CSV:
//!
//! ```text
//! easched --front --scenarios chain:10 --models continuous,discrete --csv
//! easched --front --front-points 12 --front-tol 0.01 --json
//! ```
//!
//! The deadline is `--mult ×` the fastest possible makespan *under the
//! chosen model* (its largest mode for vdd/discrete, `--fmax` for
//! continuous/incremental), so `--mult 1.2` always means 20% real slack.
//!
//! Serve mode runs the `ea-service` daemon: newline-delimited JSON solve
//! requests over TCP, answered through a sharded solution cache (one
//! underlying solve per canonical request digest):
//!
//! ```text
//! easched --serve --port 7878 --workers 4
//! easched --serve --port 0              # ephemeral port, printed on stdout
//! ```
//!
//! Exit code 2 signals an infeasible deadline; 1 a usage error.

use energy_aware_scheduling::core::bicrit::pareto::FrontOptions;
use energy_aware_scheduling::core::bicrit::{self, SolveOptions};
use energy_aware_scheduling::engine::{
    run_batch, run_front, BatchOptions, DagSpec, FrontBatchOptions, FrontScenario, Scenario,
};
use energy_aware_scheduling::prelude::*;
use energy_aware_scheduling::service::{serve, ServeOptions};
use std::io::Write as _;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    dag: String,
    model: String,
    modes: Vec<f64>,
    mult: f64,
    procs: usize,
    seed: u64,
    delta: f64,
    fmin: f64,
    fmax: f64,
    json: bool,
    batch: bool,
    scenarios: Vec<String>,
    models: Vec<String>,
    mults: Vec<f64>,
    seeds: u64,
    mc_runs: usize,
    front: bool,
    front_points: usize,
    front_tol: f64,
    csv: bool,
    cold: bool,
    serve: bool,
    port: u16,
    workers: usize,
    queue_cap: usize,
    cache_cap: usize,
    /// Batch-only flags the user actually passed — rejected outside
    /// `--batch` instead of silently ignored.
    batch_only_flags: Vec<&'static str>,
    /// Front-only flags the user actually passed — rejected outside
    /// `--front` instead of silently ignored.
    front_only_flags: Vec<&'static str>,
    /// Single-solve-only flags (`--dag`, `--model`, `--mult`, `--seed`)
    /// the user actually passed — rejected under `--batch`/`--front`.
    single_only_flags: Vec<&'static str>,
    /// Grid-only flags (`--scenarios`, `--models`, `--seeds`) the user
    /// actually passed — rejected in single-solve mode.
    grid_only_flags: Vec<&'static str>,
    /// Serve-only flags (`--port`, `--workers`, `--queue-cap`,
    /// `--cache-cap`) the user actually passed — rejected outside
    /// `--serve`.
    serve_only_flags: Vec<&'static str>,
    /// Solver-shape flags (`--procs`, `--fmin`, …) the user actually
    /// passed — rejected under `--serve`, where every request carries its
    /// own knobs.
    non_serve_flags: Vec<&'static str>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dag: "chain:10".into(),
        model: "continuous".into(),
        modes: vec![1.0, 1.5, 2.0],
        mult: 1.5,
        procs: 2,
        seed: 42,
        delta: 0.25,
        fmin: 1.0,
        fmax: 2.0,
        json: false,
        batch: false,
        scenarios: vec!["chain:10".into(), "layered:4x3".into()],
        models: vec!["continuous".into(), "vdd".into()],
        mults: vec![1.2, 1.6],
        seeds: 2,
        mc_runs: 0,
        front: false,
        front_points: 9,
        front_tol: 0.02,
        csv: false,
        cold: false,
        serve: false,
        port: 7878,
        workers: 4,
        queue_cap: 64,
        cache_cap: 1024,
        batch_only_flags: Vec::new(),
        front_only_flags: Vec::new(),
        single_only_flags: Vec::new(),
        grid_only_flags: Vec::new(),
        serve_only_flags: Vec::new(),
        non_serve_flags: Vec::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
    };
    // Empty segments are dropped (not parse errors), so "--mults ," yields
    // an empty list and surfaces as the clear empty-grid error below.
    let floats = |s: &str, flag: &str| -> Result<Vec<f64>, String> {
        s.split(',')
            .filter(|x| !x.trim().is_empty())
            .map(|x| x.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| format!("{flag}: {e}"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--dag" => {
                args.dag = take(&mut i)?;
                args.single_only_flags.push("--dag");
            }
            "--model" => {
                args.model = take(&mut i)?.to_lowercase();
                args.single_only_flags.push("--model");
            }
            "--mult" => {
                args.mult = take(&mut i)?.parse().map_err(|e| format!("--mult: {e}"))?;
                args.single_only_flags.push("--mult");
            }
            "--procs" => {
                args.procs = take(&mut i)?.parse().map_err(|e| format!("--procs: {e}"))?;
                args.non_serve_flags.push("--procs");
            }
            "--seed" => {
                args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                args.single_only_flags.push("--seed");
            }
            "--delta" => {
                args.delta = take(&mut i)?.parse().map_err(|e| format!("--delta: {e}"))?;
                args.non_serve_flags.push("--delta");
            }
            "--fmin" => {
                args.fmin = take(&mut i)?.parse().map_err(|e| format!("--fmin: {e}"))?;
                args.non_serve_flags.push("--fmin");
            }
            "--fmax" => {
                args.fmax = take(&mut i)?.parse().map_err(|e| format!("--fmax: {e}"))?;
                args.non_serve_flags.push("--fmax");
            }
            "--modes" => {
                args.modes = floats(&take(&mut i)?, "--modes")?;
                args.non_serve_flags.push("--modes");
            }
            "--json" => {
                args.json = true;
                args.non_serve_flags.push("--json");
            }
            "--batch" => args.batch = true,
            "--scenarios" => {
                args.scenarios = take(&mut i)?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                args.grid_only_flags.push("--scenarios");
            }
            "--models" => {
                args.models = take(&mut i)?
                    .split(',')
                    .map(|s| s.trim().to_lowercase())
                    .filter(|s| !s.is_empty())
                    .collect();
                args.grid_only_flags.push("--models");
            }
            "--mults" => {
                args.mults = floats(&take(&mut i)?, "--mults")?;
                args.batch_only_flags.push("--mults");
            }
            "--seeds" => {
                args.seeds = take(&mut i)?.parse().map_err(|e| format!("--seeds: {e}"))?;
                args.grid_only_flags.push("--seeds");
            }
            "--mc-runs" => {
                args.mc_runs = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--mc-runs: {e}"))?;
                args.batch_only_flags.push("--mc-runs");
            }
            "--front" => args.front = true,
            "--front-points" => {
                args.front_points = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--front-points: {e}"))?;
                args.front_only_flags.push("--front-points");
            }
            "--front-tol" => {
                args.front_tol = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--front-tol: {e}"))?;
                args.front_only_flags.push("--front-tol");
            }
            "--csv" => {
                args.csv = true;
                args.front_only_flags.push("--csv");
            }
            "--cold" => {
                args.cold = true;
                args.front_only_flags.push("--cold");
            }
            "--serve" => args.serve = true,
            "--port" => {
                args.port = take(&mut i)?.parse().map_err(|e| format!("--port: {e}"))?;
                args.serve_only_flags.push("--port");
            }
            "--workers" => {
                args.workers = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                args.serve_only_flags.push("--workers");
            }
            "--queue-cap" => {
                args.queue_cap = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
                args.serve_only_flags.push("--queue-cap");
            }
            "--cache-cap" => {
                args.cache_cap = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("--cache-cap: {e}"))?;
                args.serve_only_flags.push("--cache-cap");
            }
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    validate(&args)?;
    Ok(args)
}

/// Rejects parameter combinations that would otherwise surface as panics
/// deep inside the solvers.
fn validate(args: &Args) -> Result<(), String> {
    if args.procs < 1 {
        return Err("--procs must be ≥ 1".into());
    }
    let positive = |v: f64, flag: &str| -> Result<(), String> {
        if !(v.is_finite() && v > 0.0) {
            return Err(format!("{flag} must be finite and > 0, got {v}"));
        }
        Ok(())
    };
    positive(args.fmin, "--fmin")?;
    positive(args.fmax, "--fmax")?;
    positive(args.delta, "--delta")?;
    positive(args.mult, "--mult")?;
    if args.fmin > args.fmax {
        return Err(format!("--fmin {} exceeds --fmax {}", args.fmin, args.fmax));
    }
    if args.modes.is_empty() || args.modes.iter().any(|&m| !(m.is_finite() && m > 0.0)) {
        return Err("--modes must be a non-empty list of positive finite speeds".into());
    }
    for m in &args.mults {
        positive(*m, "--mults")?;
    }
    if (args.batch || args.front) && args.seeds == 0 {
        return Err("--seeds must be ≥ 1".into());
    }
    if args.batch && args.mc_runs > 0 && args.fmin >= args.fmax {
        return Err("--mc-runs needs a non-degenerate speed range (--fmin < --fmax)".into());
    }
    let modes_on = [args.batch, args.front, args.serve];
    if modes_on.iter().filter(|&&m| m).count() > 1 {
        return Err("--batch, --front and --serve are mutually exclusive".into());
    }
    // Mode-exclusive flags are rejected in the wrong mode, not ignored.
    if !args.batch {
        if let Some(f) = args.batch_only_flags.first() {
            return Err(format!("{f} requires --batch"));
        }
    }
    if !args.front {
        if let Some(f) = args.front_only_flags.first() {
            return Err(format!("{f} requires --front"));
        }
    }
    if !args.serve {
        if let Some(f) = args.serve_only_flags.first() {
            return Err(format!("{f} requires --serve"));
        }
    }
    if args.serve {
        if let Some(f) = args.single_only_flags.first() {
            return Err(format!(
                "{f} applies to single-solve mode only (send per-request knobs in --serve mode)"
            ));
        }
        if let Some(f) = args.non_serve_flags.first() {
            return Err(format!(
                "{f} does not apply to --serve (every request carries its own knobs)"
            ));
        }
        if args.workers == 0 {
            return Err("--workers must be ≥ 1".into());
        }
        if args.queue_cap == 0 {
            return Err("--queue-cap must be ≥ 1".into());
        }
        if args.cache_cap == 0 {
            return Err("--cache-cap must be ≥ 1".into());
        }
    }
    if args.batch || args.front {
        if let Some(f) = args.single_only_flags.first() {
            return Err(format!(
                "{f} applies to single-solve mode only (not --batch/--front)"
            ));
        }
    } else if let Some(f) = args.grid_only_flags.first() {
        return Err(format!("{f} requires --batch or --front"));
    }
    if args.front {
        if args.front_points < 2 {
            return Err("--front-points must be ≥ 2".into());
        }
        positive(args.front_tol, "--front-tol")?;
        if args.csv && args.json {
            return Err("--csv and --json are mutually exclusive".into());
        }
    }
    // An empty grid would otherwise surface as a contentless report: name
    // the flag that emptied it instead.
    if args.batch || args.front {
        if args.scenarios.is_empty() {
            return Err("scenario grid is empty: --scenarios has no values".into());
        }
        if args.models.is_empty() {
            return Err("scenario grid is empty: --models has no values".into());
        }
        if args.batch && args.mults.is_empty() {
            return Err("scenario grid is empty: --mults has no values".into());
        }
    }
    Ok(())
}

fn usage() {
    eprintln!(
        "usage: easched [--dag chain:N|fork:N|layered:LxW|stencil:RxC|gauss:B] \
         [--model continuous|vdd|discrete|incremental] [--modes f1,f2,..] \
         [--mult X] [--procs P] [--seed S] [--delta D] [--fmin F] [--fmax F] [--json]\n\
       batch: easched --batch [--scenarios spec1,spec2,..] [--models m1,m2,..] \
         [--mults x1,x2,..] [--seeds N] [--mc-runs R] [--procs P]\n\
       front: easched --front [--scenarios spec1,..] [--models m1,..] [--seeds N] \
         [--front-points N] [--front-tol X] [--cold] [--csv|--json] [--procs P]\n\
       serve: easched --serve [--port P] [--workers N] [--queue-cap Q] [--cache-cap C]"
    );
}

/// Builds the [`SpeedModel`] a model name denotes, through the shared
/// name→model mapping in `ea-engine` (`build_speed_model`) — the CLI and
/// the `--serve` wire protocol interpret model strings identically;
/// everything downstream dispatches on the [`SpeedModel`] itself via
/// `bicrit::solve`.
fn build_model(name: &str, args: &Args) -> Result<SpeedModel, String> {
    energy_aware_scheduling::engine::build_speed_model(
        name,
        args.fmin,
        args.fmax,
        args.delta,
        &args.modes,
    )
}

fn run_single(args: &Args) -> Result<ExitCode, String> {
    let model = build_model(&args.model, args)?;
    let scenario = Scenario {
        dag: DagSpec::parse(&args.dag)?,
        model: model.clone(),
        deadline_mult: args.mult,
        seed: args.seed,
    };
    let inst = scenario
        .instantiate(args.procs)
        .map_err(|e| format!("{e} (empty DAG or bad --mult?)"))?;

    match bicrit::solve(&inst, &model, &SolveOptions::default()) {
        Ok(sol) => {
            let sched = sol.to_schedule();
            if args.json {
                #[derive(serde::Serialize)]
                struct Out<'a> {
                    model: &'a str,
                    deadline: f64,
                    energy: f64,
                    makespan: f64,
                    schedule: &'a Schedule,
                }
                println!(
                    "{}",
                    serde_json::to_string_pretty(&Out {
                        model: &args.model,
                        deadline: inst.deadline,
                        energy: sol.energy,
                        makespan: sol.makespan,
                        schedule: &sched,
                    })
                    .expect("schedule serialises")
                );
            } else {
                println!(
                    "dag {} ({} tasks) on {} procs, D = {:.4} (×{})",
                    args.dag,
                    inst.n_tasks(),
                    args.procs,
                    inst.deadline,
                    args.mult
                );
                println!("model {}: energy = {:.4}", args.model, sol.energy);
                println!(
                    "makespan = {:.4} (deadline {:.4})",
                    sol.makespan, inst.deadline
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("infeasible: {e}");
            Ok(ExitCode::from(2))
        }
    }
}

fn run_batch_mode(args: &Args) -> Result<ExitCode, String> {
    let specs: Vec<DagSpec> = args
        .scenarios
        .iter()
        .map(|s| DagSpec::parse(s))
        .collect::<Result<_, _>>()?;
    let models: Vec<SpeedModel> = args
        .models
        .iter()
        .map(|m| build_model(m, args))
        .collect::<Result<_, _>>()?;
    let seeds: Vec<u64> = (0..args.seeds).collect();
    let scenarios = Scenario::grid(&specs, &models, &args.mults, &seeds);
    if scenarios.is_empty() {
        return Err("scenario grid is empty".into());
    }

    let opts = BatchOptions {
        procs: args.procs,
        reliability: (args.mc_runs > 0).then(|| {
            let frel = (0.9 * args.fmax).clamp(args.fmin, args.fmax);
            ReliabilityModel::typical(args.fmin, args.fmax, frel)
        }),
        mc_runs: args.mc_runs,
        ..BatchOptions::default()
    };
    let report = run_batch(&scenarios, &opts);
    if args.json {
        println!("{}", report.to_json());
    } else {
        eprintln!(
            "batch: {} scenarios, {} solved, {} infeasible in {:.0} ms",
            report.scenarios, report.solved, report.infeasible, report.wall_ms
        );
        println!("{}", report.to_json());
    }
    Ok(ExitCode::SUCCESS)
}

fn run_front_mode(args: &Args) -> Result<ExitCode, String> {
    let specs: Vec<DagSpec> = args
        .scenarios
        .iter()
        .map(|s| DagSpec::parse(s))
        .collect::<Result<_, _>>()?;
    let models: Vec<SpeedModel> = args
        .models
        .iter()
        .map(|m| build_model(m, args))
        .collect::<Result<_, _>>()?;
    let seeds: Vec<u64> = (0..args.seeds).collect();
    let scenarios = FrontScenario::grid(&specs, &models, &seeds);
    if scenarios.is_empty() {
        return Err("scenario grid is empty".into());
    }

    let opts = FrontBatchOptions {
        procs: args.procs,
        front: FrontOptions::default()
            .with_initial_points(args.front_points)
            // Refinement headroom proportional to the requested grid, so
            // the output stays the same order of size as asked for.
            .with_max_points(args.front_points.saturating_mul(2))
            .with_energy_tol(args.front_tol)
            .with_warm_start(!args.cold),
    };
    let report = run_front(&scenarios, &opts);
    if args.csv {
        print!("{}", report.to_csv());
    } else {
        if !args.json {
            eprintln!(
                "front: {} scenarios, {} traced, {} failed ({} coalesced) in {:.0} ms",
                report.scenarios, report.traced, report.failed, report.coalesced, report.wall_ms
            );
        }
        println!("{}", report.to_json());
    }
    Ok(ExitCode::SUCCESS)
}

/// Runs the solve daemon until a client sends `{"cmd":"shutdown"}`. The
/// bound address (resolving `--port 0`) is printed to stdout so scripts
/// can pick the port up.
fn run_serve_mode(args: &Args) -> Result<ExitCode, String> {
    let handle = serve(ServeOptions {
        port: args.port,
        workers: args.workers,
        queue_cap: args.queue_cap,
        cache_capacity: args.cache_cap,
        ..ServeOptions::default()
    })
    .map_err(|e| format!("--serve: {e}"))?;
    println!(
        "easched: serving on {} ({} workers, queue {}, cache {})",
        handle.addr(),
        args.workers,
        args.queue_cap,
        args.cache_cap
    );
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    handle.join();
    eprintln!("easched: shutdown complete");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(1);
        }
    };
    let run = if args.batch {
        run_batch_mode(&args)
    } else if args.front {
        run_front_mode(&args)
    } else if args.serve {
        run_serve_mode(&args)
    } else {
        run_single(&args)
    };
    match run {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::from(1)
        }
    }
}
