//! `easched` — command-line driver for the energy-aware scheduling
//! library: generate a workload, map it, solve BI-CRIT under a chosen
//! speed model and print the schedule (optionally as JSON).
//!
//! ```text
//! easched --dag chain:12 --model continuous --mult 1.6
//! easched --dag fork:8 --model vdd --modes 1,1.5,2 --mult 1.4 --json
//! easched --dag layered:4x3 --procs 3 --model incremental --delta 0.2
//! easched --dag gauss:4 --model discrete --modes 1,2 --mult 1.5
//! ```
//!
//! Exit code 2 signals an infeasible deadline; 1 a usage error.

use energy_aware_scheduling::core::bicrit::{continuous, discrete, incremental, vdd};
use energy_aware_scheduling::core::schedule::Schedule;
use energy_aware_scheduling::prelude::*;
use energy_aware_scheduling::taskgraph::{generators, Dag};
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    dag: String,
    model: String,
    modes: Vec<f64>,
    mult: f64,
    procs: usize,
    seed: u64,
    delta: f64,
    fmin: f64,
    fmax: f64,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dag: "chain:10".into(),
        model: "continuous".into(),
        modes: vec![1.0, 1.5, 2.0],
        mult: 1.5,
        procs: 2,
        seed: 42,
        delta: 0.25,
        fmin: 1.0,
        fmax: 2.0,
        json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--dag" => args.dag = take(&mut i)?,
            "--model" => args.model = take(&mut i)?.to_lowercase(),
            "--mult" => args.mult = take(&mut i)?.parse().map_err(|e| format!("--mult: {e}"))?,
            "--procs" => args.procs = take(&mut i)?.parse().map_err(|e| format!("--procs: {e}"))?,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--delta" => args.delta = take(&mut i)?.parse().map_err(|e| format!("--delta: {e}"))?,
            "--fmin" => args.fmin = take(&mut i)?.parse().map_err(|e| format!("--fmin: {e}"))?,
            "--fmax" => args.fmax = take(&mut i)?.parse().map_err(|e| format!("--fmax: {e}"))?,
            "--modes" => {
                args.modes = take(&mut i)?
                    .split(',')
                    .map(|s| s.trim().parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--modes: {e}"))?
            }
            "--json" => args.json = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: easched [--dag chain:N|fork:N|layered:LxW|stencil:RxC|gauss:B] \
         [--model continuous|vdd|discrete|incremental] [--modes f1,f2,..] \
         [--mult X] [--procs P] [--seed S] [--delta D] [--fmin F] [--fmax F] [--json]"
    );
}

fn build_dag(spec: &str, seed: u64) -> Result<Dag, String> {
    let (kind, param) = spec.split_once(':').ok_or("dag spec needs kind:param")?;
    let dag = match kind {
        "chain" => {
            let n: usize = param.parse().map_err(|e| format!("chain size: {e}"))?;
            generators::chain(&generators::random_weights(n, 0.5, 2.5, seed))
        }
        "fork" => {
            let n: usize = param.parse().map_err(|e| format!("fork size: {e}"))?;
            generators::fork(1.5, &generators::random_weights(n, 0.5, 2.5, seed))
        }
        "layered" => {
            let (l, w) = param.split_once('x').ok_or("layered needs LxW")?;
            generators::random_layered(
                l.parse().map_err(|e| format!("layers: {e}"))?,
                w.parse().map_err(|e| format!("width: {e}"))?,
                0.35,
                0.5,
                2.5,
                seed,
            )
        }
        "stencil" => {
            let (r, c) = param.split_once('x').ok_or("stencil needs RxC")?;
            generators::stencil_wavefront(
                r.parse().map_err(|e| format!("rows: {e}"))?,
                c.parse().map_err(|e| format!("cols: {e}"))?,
                1.0,
            )
        }
        "gauss" => generators::gaussian_elimination(
            param.parse().map_err(|e| format!("tiles: {e}"))?,
            1.0,
        ),
        other => return Err(format!("unknown dag kind {other}")),
    };
    Ok(dag)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(1);
        }
    };
    let dag = match build_dag(&args.dag, args.seed) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };

    let inst = match Instance::mapped_by_list_scheduling(
        dag,
        Platform::new(args.procs),
        args.fmax,
        f64::MAX,
    ) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    let deadline = args.mult * inst.makespan_at_uniform_speed(args.fmax);
    let inst = match inst.with_deadline(deadline) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e} (empty DAG or non-positive --mult?)");
            return ExitCode::from(1);
        }
    };

    let result: Result<(Schedule, f64), _> = match args.model.as_str() {
        "continuous" => continuous::solve(&inst, args.fmin, args.fmax, &Default::default())
            .map(|s| (Schedule::from_speeds(&s.speeds), s.energy)),
        "vdd" => vdd::solve(inst.augmented_dag(), deadline, &args.modes)
            .map(|s| (s.to_schedule(), s.energy)),
        "discrete" => discrete::solve_bnb(
            inst.augmented_dag(),
            deadline,
            &args.modes,
            discrete::BnbBound::VddRelaxation,
        )
        .map(|s| (Schedule::from_speeds(&s.speeds), s.energy)),
        "incremental" => incremental::solve(
            inst.augmented_dag(),
            deadline,
            args.fmin,
            args.fmax,
            args.delta,
            50,
        )
        .map(|s| (Schedule::from_speeds(&s.speeds), s.energy)),
        other => {
            eprintln!("error: unknown model {other}");
            usage();
            return ExitCode::from(1);
        }
    };

    match result {
        Ok((sched, energy)) => {
            if args.json {
                #[derive(serde::Serialize)]
                struct Out<'a> {
                    model: &'a str,
                    deadline: f64,
                    energy: f64,
                    schedule: &'a Schedule,
                }
                println!(
                    "{}",
                    serde_json::to_string_pretty(&Out {
                        model: &args.model,
                        deadline,
                        energy,
                        schedule: &sched,
                    })
                    .expect("schedule serialises")
                );
            } else {
                println!(
                    "dag {} ({} tasks) on {} procs, D = {:.4} (×{})",
                    args.dag,
                    inst.n_tasks(),
                    args.procs,
                    deadline,
                    args.mult
                );
                println!("model {}: energy = {:.4}", args.model, energy);
                let ms = sched
                    .makespan(&inst.dag, &inst.mapping)
                    .expect("valid schedule");
                println!("makespan = {ms:.4} (deadline {deadline:.4})");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("infeasible: {e}");
            ExitCode::from(2)
        }
    }
}
