//! # energy-aware-scheduling
//!
//! Facade crate for the reproduction of *"Energy-aware scheduling: models
//! and complexity results"* (G. Aupy, IPDPSW 2012). Re-exports the workspace
//! crates under one roof:
//!
//! * [`taskgraph`] — weighted task DAGs, generators, series-parallel
//!   decomposition ([`ea_taskgraph`]).
//! * [`linalg`] — the dense linear-algebra kernel ([`ea_linalg`]).
//! * [`lp`] — the two-phase simplex linear-programming solver ([`ea_lp`]).
//! * [`convex`] — the log-barrier convex solver ([`ea_convex`]).
//! * [`core`] — speed models, BI-CRIT and TRI-CRIT solvers ([`ea_core`]).
//! * [`sim`] — the fault-injection discrete-event simulator ([`ea_sim`]).
//! * [`engine`] — the parallel scenario engine: grids of (DAG × model ×
//!   deadline × seed) solved through `bicrit::solve` ([`ea_engine`]).
//! * [`service`] — the solve daemon: NDJSON-over-TCP serving with a
//!   sharded single-flight solution cache ([`ea_service`]).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory; run `cargo run --example quickstart` for a first tour.

pub use ea_convex as convex;
pub use ea_core as core;
pub use ea_engine as engine;
pub use ea_linalg as linalg;
pub use ea_lp as lp;
pub use ea_service as service;
pub use ea_sim as sim;
pub use ea_taskgraph as taskgraph;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use ea_core::bicrit::{Solution, SolveOptions, SpeedProfile};
    pub use ea_core::platform::{Mapping, Platform};
    pub use ea_core::reliability::ReliabilityModel;
    pub use ea_core::schedule::Schedule;
    pub use ea_core::speed::SpeedModel;
    pub use ea_core::Instance;
    pub use ea_engine::{DagSpec, Scenario};
    pub use ea_taskgraph::{Dag, SpTree};
}
