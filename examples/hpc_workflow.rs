//! HPC workflow study: energy vs deadline for a tiled Gaussian-elimination
//! DAG (the dependence pattern of right-looking LU) across speed models,
//! all through the unified `bicrit::solve` dispatcher.
//!
//! This is the kind of workload the paper's introduction motivates:
//! a legacy application with a fixed mapping, where only DVFS is available
//! to reclaim energy.
//!
//! ```text
//! cargo run --release --example hpc_workflow
//! ```

use energy_aware_scheduling::core::bicrit::{self, SolveOptions};
use energy_aware_scheduling::prelude::*;
use energy_aware_scheduling::taskgraph::generators;

fn main() {
    let (fmin, fmax) = (1.0, 2.0);
    let dag = generators::gaussian_elimination(5, 1.0);
    let n = dag.len();
    let inst = Instance::mapped_by_list_scheduling(dag, Platform::new(4), fmax, f64::MAX)
        .expect("valid mapping");
    let base = inst.makespan_at_uniform_speed(fmax);
    println!("Gaussian elimination DAG: {n} tasks on 4 processors");
    println!("fastest makespan (all at fmax): {base:.3}\n");
    println!(
        "{:>8}  {:>12} {:>12} {:>12} {:>10}",
        "D/Dmin", "E_CONTINUOUS", "E_VDD(5)", "E_INCR(δ=.1)", "saved%"
    );

    let models = [
        SpeedModel::continuous(fmin, fmax),
        SpeedModel::vdd_hopping(vec![1.0, 1.25, 1.5, 1.75, 2.0]),
        SpeedModel::incremental(fmin, fmax, 0.1),
    ];
    let opts = SolveOptions::default();
    let all_fmax: f64 = inst.dag.weights().iter().map(|w| w * fmax * fmax).sum();
    for mult in [1.05, 1.2, 1.5, 2.0, 3.0] {
        let d = mult * base;
        let inst_d = inst.with_deadline(d).expect("positive deadline");
        let energies: Vec<f64> = models
            .iter()
            .map(|m| {
                bicrit::solve(&inst_d, m, &opts)
                    .expect("feasible deadline")
                    .energy
            })
            .collect();
        println!(
            "{:>8.2}  {:>12.3} {:>12.3} {:>12.3} {:>9.1}%",
            mult,
            energies[0],
            energies[1],
            energies[2],
            100.0 * (1.0 - energies[0] / all_fmax),
        );
    }

    println!("\nReading: a 3× deadline reclaims most of the dynamic energy;");
    println!("VDD-hopping tracks the continuous optimum closely; the");
    println!("incremental grid pays its (1+δ/fmin)² rounding factor at most.");
}
