//! TRI-CRIT at scale: energy, deadline *and* reliability — re-execution
//! against DVFS-amplified transient faults, verified by fault-injection
//! simulation.
//!
//! The scenario the paper's abstract motivates: on massively parallel
//! platforms, blindly lowering speeds to save energy raises transient
//! fault rates (Eq. (1)); re-executing selected tasks restores the
//! reliability target at a modest energy cost.
//!
//! ```text
//! cargo run --release --example exascale_reliability
//! ```

use energy_aware_scheduling::core::reliability::ReliabilityModel;
use energy_aware_scheduling::core::schedule::Schedule;
use energy_aware_scheduling::core::tricrit;
use energy_aware_scheduling::prelude::*;
use energy_aware_scheduling::sim::run_monte_carlo;
use energy_aware_scheduling::taskgraph::generators;

fn main() {
    // A "hot" fault model so the simulation shows measurable rates.
    let rel = ReliabilityModel::new(0.01, 3.0, 1.0, 2.0, 1.8);
    let w = generators::random_weights(12, 0.5, 1.5, 42);
    let dag = generators::chain(&w);
    let mapping = Mapping::single_processor((0..w.len()).collect());
    let d = 3.0 * w.iter().sum::<f64>() / rel.fmax;

    println!(
        "chain of {} tasks, deadline {d:.2}, f_rel = {}",
        w.len(),
        rel.frel
    );
    println!(
        "worst per-task failure budget: {:.5}\n",
        w.iter().map(|&wi| rel.target(wi)).fold(0.0f64, f64::max)
    );

    // TRI-CRIT: the paper's chain strategy.
    let tri = tricrit::chain::solve_greedy(&w, d, &rel).expect("feasible");
    let n_re = tri.reexecuted.iter().filter(|&&r| r).count();
    println!(
        "TRI-CRIT greedy: energy {:.3}, {} of {} tasks re-executed",
        tri.energy,
        n_re,
        w.len()
    );

    // Baselines.
    let baseline = Schedule::uniform(w.len(), rel.frel);
    let naive = Schedule::uniform(w.len(), (w.iter().sum::<f64>() / d).max(rel.fmin));

    println!(
        "\n{:>28} {:>10} {:>12} {:>12} {:>11}",
        "schedule", "E(worst)", "E(actual)", "worst fail", "app success"
    );
    for (label, sched) in [
        ("single @ f_rel", &baseline),
        ("naive DVFS (fills D)", &naive),
        ("TRI-CRIT (re-execution)", &tri.schedule),
    ] {
        let stats = run_monte_carlo(&dag, &mapping, sched, &rel, 20_000, 7);
        println!(
            "{:>28} {:>10.3} {:>12.3} {:>12.5} {:>11.4}",
            label,
            sched.energy(&dag),
            stats.mean_energy,
            stats.worst_task_failure_rate(),
            stats.app_success_rate
        );
    }

    // Fork variant: the polynomial algorithm on a wide fork.
    let ws = generators::random_weights(8, 0.5, 1.5, 43);
    let fd = 2.5 * (1.0 + 1.5) / rel.fmax;
    let fork = tricrit::fork::solve(1.0, &ws, fd, &rel).expect("feasible");
    println!(
        "\nfork (8 branches): energy {:.3}, re-executed: {:?}",
        fork.energy,
        fork.reexecuted
            .iter()
            .enumerate()
            .filter(|(_, &r)| r)
            .map(|(i, _)| i)
            .collect::<Vec<_>>()
    );
    println!("(the highly-parallel branches get the re-execution slots — the");
    println!(" opposite of the chain strategy, exactly as the paper observes)");
}
