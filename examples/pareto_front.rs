//! Pareto fronts: the energy/deadline trade-off curve of all four speed
//! models on one instance, traced with warm-started deadline sweeps and
//! rendered as an ASCII plot.
//!
//! ```text
//! cargo run --release --example pareto_front
//! ```

use energy_aware_scheduling::core::bicrit::pareto::FrontOptions;
use energy_aware_scheduling::engine::{run_front, DagSpec, FrontBatchOptions, FrontScenario};
use energy_aware_scheduling::prelude::*;

const WIDTH: usize = 68;
const HEIGHT: usize = 18;

fn main() {
    // One DAG family/seed, four models sharing f_max = 2 — so every model
    // maps to the *same* instance (run_front's cache builds it once).
    let dag = DagSpec::parse("layered:4x3").expect("valid spec");
    let models = [
        ("C", SpeedModel::continuous(1.0, 2.0)),
        (
            "V",
            SpeedModel::vdd_hopping(vec![1.0, 1.25, 1.5, 1.75, 2.0]),
        ),
        ("D", SpeedModel::discrete(vec![1.0, 1.25, 1.5, 1.75, 2.0])),
        ("I", SpeedModel::incremental(1.0, 2.0, 0.25)),
    ];
    let scenarios: Vec<FrontScenario> = models
        .iter()
        .map(|(_, m)| FrontScenario {
            dag: dag.clone(),
            model: m.clone(),
            seed: 7,
        })
        .collect();

    let opts = FrontBatchOptions {
        procs: 2,
        front: FrontOptions::default()
            .with_initial_points(11)
            .with_energy_tol(0.01)
            .with_max_points(32),
    };
    let report = run_front(&scenarios, &opts);
    println!(
        "{} on 2 procs: {} fronts traced in {:.0} ms\n",
        dag, report.traced, report.wall_ms
    );

    // Gather the plot range across all fronts.
    let fronts: Vec<_> = report
        .results
        .iter()
        .map(|r| r.front.as_ref().expect("traced"))
        .collect();
    let (mut d_lo, mut d_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut e_lo, mut e_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for f in &fronts {
        for p in &f.points {
            d_lo = d_lo.min(p.deadline);
            d_hi = d_hi.max(p.deadline);
            e_lo = e_lo.min(p.energy);
            e_hi = e_hi.max(p.energy);
        }
    }

    // Rasterise: one letter per model, '*' where models overlap.
    let mut canvas = vec![vec![' '; WIDTH]; HEIGHT];
    for ((tag, _), front) in models.iter().zip(&fronts) {
        for p in &front.points {
            let x = ((p.deadline - d_lo) / (d_hi - d_lo) * (WIDTH - 1) as f64).round() as usize;
            let y = ((e_hi - p.energy) / (e_hi - e_lo) * (HEIGHT - 1) as f64).round() as usize;
            let cell = &mut canvas[y.min(HEIGHT - 1)][x.min(WIDTH - 1)];
            *cell = if *cell == ' ' {
                tag.chars().next().expect("one-char tag")
            } else {
                '*'
            };
        }
    }

    println!("energy {e_hi:>10.2} ┐");
    for row in &canvas {
        let line: String = row.iter().collect();
        println!("                  │{line}");
    }
    println!("energy {e_lo:>10.2} ┘");
    println!(
        "                   deadline {d_lo:.2} {:→<w$} {d_hi:.2}",
        "",
        w = WIDTH - 14
    );
    println!("\n  C continuous   V vdd-hopping   D discrete   I incremental   * overlap\n");

    // The model-refinement ordering the paper proves: at any deadline,
    // E(continuous) ≤ E(vdd) ≤ E(discrete), with incremental within its
    // proven factor of continuous.
    println!(
        "{:<14} {:>7} {:>6} {:>6} {:>9} {:>9} {:>9}",
        "model", "points", "warm", "sat", "E(tight)", "E(loose)", "work"
    );
    for ((_, model), front) in models.iter().zip(&fronts) {
        let s = &front.stats;
        let work = match model {
            SpeedModel::Discrete { .. } => format!("{} nodes", s.bnb_nodes),
            SpeedModel::VddHopping { .. } => format!("{} pivots", s.lp_pivots),
            _ => format!("{} newton", s.newton_steps),
        };
        println!(
            "{:<14} {:>7} {:>6} {:>6} {:>9.2} {:>9.2} {:>9}",
            model.name(),
            front.points.len(),
            s.warm_solves,
            s.saturation_hits,
            front.points.first().expect("non-empty").energy,
            front.points.last().expect("non-empty").energy,
            work,
        );
    }
}
