//! The INCREMENTAL model as a "potentiometer knob": how the grid step δ
//! and the solver accuracy K trade energy against the paper's proven
//! approximation factor `(1 + δ/f_min)²·(1 + 1/K)²`.
//!
//! ```text
//! cargo run --release --example dvfs_knob
//! ```

use energy_aware_scheduling::core::bicrit::{self, SolveOptions};
use energy_aware_scheduling::prelude::*;
use energy_aware_scheduling::taskgraph::generators;

fn main() {
    let (fmin, fmax) = (1.0f64, 2.0f64);
    let dag = generators::stencil_wavefront(6, 6, 1.0);
    let inst = Instance::mapped_by_list_scheduling(dag, Platform::new(3), fmax, f64::MAX)
        .expect("valid mapping");
    let d = 1.7 * inst.makespan_at_uniform_speed(fmax);
    let inst = inst.with_deadline(d).expect("positive deadline");

    println!("6×6 stencil wavefront on 3 processors, deadline ×1.7\n");
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>8} {:>8}",
        "δ", "K", "E_incr", "LB(cont)", "ratio", "bound"
    );
    for delta in [0.5, 0.25, 0.1, 0.05, 0.02] {
        let model = SpeedModel::incremental(fmin, fmax, delta);
        for k in [1usize, 10, 1000] {
            let s = bicrit::solve(&inst, &model, &SolveOptions::default().with_accuracy_k(k))
                .expect("feasible");
            let ratio = s.stats.approx_ratio.expect("measured ratio");
            let bound = s.stats.proven_factor.expect("proven factor");
            println!(
                "{delta:>8} {k:>6} {:>10.4} {:>10.4} {ratio:>8.4} {bound:>8.4}",
                s.energy,
                s.lower_bound.expect("continuous LB"),
            );
            assert!(ratio <= bound + 1e-9, "proven bound violated!");
        }
    }
    println!("\nEvery measured ratio sits beneath the paper's proven factor, and");
    println!("a fine knob (δ → 0) with a tight solve (K → ∞) approaches 1.");
}
