//! Scenario sweep: evaluate a grid of (DAG family × speed model ×
//! deadline tightness × seed) in parallel through the `ea-engine` batch
//! runner, with Monte-Carlo fault injection on every solved schedule.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```

use energy_aware_scheduling::engine::{run_batch, BatchOptions, DagSpec, Scenario};
use energy_aware_scheduling::prelude::*;

fn main() {
    let specs: Vec<DagSpec> = ["chain:12", "fork:8", "layered:4x3", "gauss:3"]
        .iter()
        .map(|s| DagSpec::parse(s).expect("valid spec"))
        .collect();
    let models = [
        SpeedModel::continuous(1.0, 2.0),
        SpeedModel::vdd_hopping(vec![1.0, 1.25, 1.5, 1.75, 2.0]),
        SpeedModel::incremental(1.0, 2.0, 0.1),
    ];
    let scenarios = Scenario::grid(&specs, &models, &[1.2, 1.6, 2.5], &[0, 1, 2]);
    println!(
        "{} scenarios = {} DAG families × {} models × 3 deadlines × 3 seeds",
        scenarios.len(),
        specs.len(),
        models.len()
    );

    let opts = BatchOptions {
        procs: 3,
        reliability: Some(ReliabilityModel::new(0.01, 3.0, 1.0, 2.0, 1.8)),
        mc_runs: 2_000,
        ..BatchOptions::default()
    };
    let report = run_batch(&scenarios, &opts);
    println!(
        "solved {}/{} in {:.0} ms wall-clock (rayon-parallel)\n",
        report.solved, report.scenarios, report.wall_ms
    );

    println!(
        "{:<24} {:>7} {:>10} {:>10} {:>9} {:>8}",
        "scenario", "tasks", "energy", "makespan", "success", "ms"
    );
    for r in report.results.iter().take(12) {
        let label = r.scenario.label();
        match (r.energy, r.makespan) {
            (Some(e), Some(ms)) => {
                let success = r
                    .faults
                    .as_ref()
                    .map(|f| format!("{:.3}", f.app_success_rate))
                    .unwrap_or_else(|| "—".into());
                println!(
                    "{label:<24} {:>7} {e:>10.3} {ms:>10.3} {success:>9} {:>8.1}",
                    r.n_tasks, r.solve_ms
                );
            }
            _ => println!(
                "{label:<24} {:>7} {:>10}",
                r.n_tasks,
                r.error.as_deref().unwrap_or("?")
            ),
        }
    }
    println!(
        "… ({} more rows in the JSON report)",
        report.results.len().saturating_sub(12)
    );
    println!(
        "\ntotal energy across solved scenarios: {:.2}",
        report.total_energy
    );
}
