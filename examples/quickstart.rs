//! Quickstart: minimise the energy of a small mapped workflow under a
//! deadline, under three speed models.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use energy_aware_scheduling::core::bicrit::{continuous, vdd};
use energy_aware_scheduling::core::schedule::Schedule;
use energy_aware_scheduling::core::speed::SpeedModel;
use energy_aware_scheduling::prelude::*;
use energy_aware_scheduling::taskgraph::generators;

fn main() {
    // 1. An application DAG: a fork-join with three branches.
    let dag = generators::fork_join(1.0, &[vec![2.0, 1.0], vec![3.0], vec![1.5, 0.5]], 1.0);
    println!("application: {} tasks, {} edges", dag.len(), dag.edge_count());

    // 2. Map it on 3 processors with the critical-path list scheduler, and
    //    pick a deadline 60% looser than the fastest possible execution.
    let platform = Platform::new(3);
    let fmax = 2.0;
    let fmin = 0.5;
    let inst = Instance::mapped_by_list_scheduling(dag, platform, fmax, f64::MAX)
        .expect("mapping a valid DAG succeeds");
    let deadline = 1.6 * inst.makespan_at_uniform_speed(fmax);
    let inst = inst.with_deadline(deadline).expect("positive deadline");
    println!("deadline D = {deadline:.3} (fmax makespan × 1.6)");

    // 3. CONTINUOUS model: closed form if the augmented DAG is
    //    series-parallel, convex program otherwise.
    let cont = continuous::solve(&inst, fmin, fmax, &Default::default())
        .expect("deadline is feasible");
    let sched = Schedule::from_speeds(&cont.speeds);
    sched
        .validate(&inst.dag, &SpeedModel::continuous(fmin, fmax), &inst.mapping, Some(deadline))
        .expect("solver output is a valid schedule");
    println!("CONTINUOUS   energy = {:.4}", cont.energy);

    // 4. VDD-HOPPING: the paper's polynomial LP, five modes.
    let modes = vec![0.5, 0.875, 1.25, 1.625, 2.0];
    let hop = vdd::solve(inst.augmented_dag(), deadline, &modes).expect("feasible");
    println!(
        "VDD-HOPPING  energy = {:.4}  (max modes per task: {})",
        hop.energy,
        hop.max_modes_per_task()
    );

    // 5. DISCRETE upper bound: round the continuous speeds up to modes.
    let discrete = SpeedModel::discrete(modes.clone());
    let e_disc: f64 = inst
        .dag
        .weights()
        .iter()
        .zip(&cont.speeds)
        .map(|(w, &f)| {
            let fr = discrete.round_up(f).expect("speed within range");
            w * fr * fr
        })
        .sum();
    println!("DISCRETE     energy ≤ {e_disc:.4} (round-up heuristic)");

    println!(
        "\nmodel refinement: E_cont ({:.4}) ≤ E_vdd ({:.4}) ≤ E_disc ({:.4})",
        cont.energy, hop.energy, e_disc
    );
    let all_fmax: f64 = inst.dag.weights().iter().map(|w| w * fmax * fmax).sum();
    println!(
        "energy saved vs all-fmax: {:.1}%",
        100.0 * (1.0 - cont.energy / all_fmax)
    );
}
