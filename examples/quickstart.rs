//! Quickstart: minimise the energy of a small mapped workflow under a
//! deadline, under three speed models — all through the unified
//! `bicrit::solve` dispatcher.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use energy_aware_scheduling::core::bicrit::{self, SolveOptions};
use energy_aware_scheduling::prelude::*;
use energy_aware_scheduling::taskgraph::generators;

fn main() {
    // 1. An application DAG: a fork-join with three branches.
    let dag = generators::fork_join(1.0, &[vec![2.0, 1.0], vec![3.0], vec![1.5, 0.5]], 1.0);
    println!(
        "application: {} tasks, {} edges",
        dag.len(),
        dag.edge_count()
    );

    // 2. Map it on 3 processors with the critical-path list scheduler, and
    //    pick a deadline 60% looser than the fastest possible execution.
    let platform = Platform::new(3);
    let fmax = 2.0;
    let fmin = 0.5;
    let inst = Instance::mapped_by_list_scheduling(dag, platform, fmax, f64::MAX)
        .expect("mapping a valid DAG succeeds");
    let deadline = 1.6 * inst.makespan_at_uniform_speed(fmax);
    let inst = inst.with_deadline(deadline).expect("positive deadline");
    println!("deadline D = {deadline:.3} (fmax makespan × 1.6)");

    // 3. One entry point, three models: build the SpeedModel and let
    //    bicrit::solve route to the right algorithm (closed forms / convex
    //    program, LP, branch-and-bound).
    let opts = SolveOptions::default();
    let modes = vec![0.5, 0.875, 1.25, 1.625, 2.0];
    let models = [
        SpeedModel::continuous(fmin, fmax),
        SpeedModel::vdd_hopping(modes.clone()),
        SpeedModel::discrete(modes),
    ];
    let mut energies = Vec::new();
    for model in &models {
        let sol = bicrit::solve(&inst, model, &opts).expect("deadline is feasible");
        sol.to_schedule()
            .validate(&inst.dag, model, &inst.mapping, Some(deadline))
            .expect("solver output is a valid schedule");
        let name = match model {
            SpeedModel::Continuous { .. } => "CONTINUOUS ",
            SpeedModel::VddHopping { .. } => "VDD-HOPPING",
            SpeedModel::Discrete { .. } => "DISCRETE   ",
            SpeedModel::Incremental { .. } => "INCREMENTAL",
        };
        println!(
            "{name}  energy = {:.4}  (makespan {:.3}, max modes/task {})",
            sol.energy,
            sol.makespan,
            sol.max_modes_per_task()
        );
        energies.push(sol.energy);
    }

    // 4. The paper's refinement hierarchy falls out of the shared API.
    println!(
        "\nmodel refinement: E_cont ({:.4}) ≤ E_vdd ({:.4}) ≤ E_disc ({:.4})",
        energies[0], energies[1], energies[2]
    );
    let all_fmax: f64 = inst.dag.weights().iter().map(|w| w * fmax * fmax).sum();
    println!(
        "energy saved vs all-fmax: {:.1}%",
        100.0 * (1.0 - energies[0] / all_fmax)
    );
}
