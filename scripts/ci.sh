#!/usr/bin/env bash
# Tier-1 verification gate. Run from anywhere; fully offline.
#
#   scripts/ci.sh            # release build + tests + bench/example compile
#   PROPTEST_CASES=16 scripts/ci.sh   # faster property tests
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo build --examples"
cargo build --examples

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "tier-1 gate: OK"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "lint gate: OK"

echo "==> cargo doc --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test --doc --workspace"
cargo test --doc --workspace -q

echo "docs gate: OK"
