#!/usr/bin/env bash
# Tier-1 verification gate. Run from anywhere; fully offline.
#
#   scripts/ci.sh            # release build + tests + bench/example compile
#   PROPTEST_CASES=16 scripts/ci.sh   # faster property tests
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo build --examples"
cargo build --examples

echo "==> cargo bench --no-run"
cargo bench --no-run

# The golden regression suite (tests/golden.rs, a registered test target
# of the root package) already ran inside `cargo test -q` above; verify
# the snapshots are present rather than re-solving all twelve cases.
echo "==> golden snapshots present"
count="$(ls tests/golden/*.json 2>/dev/null | wc -l)"
[ "$count" -eq 12 ] || { echo "expected 12 golden snapshots, found $count"; exit 1; }

echo "==> service smoke test (daemon round-trip on an ephemeral port)"
smoke_out="$(mktemp)"
target/release/easched --serve --port 0 --workers 2 >"$smoke_out" 2>/dev/null &
smoke_pid=$!
trap 'kill "$smoke_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  grep -q '127\.0\.0\.1:' "$smoke_out" && break
  sleep 0.1
done
port="$(grep -oE '127\.0\.0\.1:[0-9]+' "$smoke_out" | head -1 | cut -d: -f2)"
[ -n "$port" ] || { echo "service smoke: daemon printed no address"; exit 1; }
exec 3<>"/dev/tcp/127.0.0.1/$port"
printf '{"cmd":"solve","dag":"chain:6","model":"continuous","mult":1.5,"seed":1}\n' >&3
IFS= read -r reply <&3
case "$reply" in
  *'"status":"ok"'*'"energy"'*) ;;
  *) echo "service smoke: unexpected solve reply: $reply"; exit 1 ;;
esac
printf '{"cmd":"shutdown"}\n' >&3
IFS= read -r ack <&3
case "$ack" in
  *'"shutting_down":true'*) ;;
  *) echo "service smoke: unexpected shutdown ack: $ack"; exit 1 ;;
esac
exec 3<&- 3>&-
wait "$smoke_pid"
trap - EXIT
rm -f "$smoke_out"
echo "service smoke: OK (port $port, clean shutdown)"

echo "tier-1 gate: OK"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "lint gate: OK"

echo "==> cargo doc --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test --doc --workspace"
cargo test --doc --workspace -q

echo "docs gate: OK"
